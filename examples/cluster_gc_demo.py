#!/usr/bin/env python
"""Watching the timestamp-based garbage collector work (paper §4.2, §6).

A fast producer fills a channel at 300 items/s; a slow consumer takes every
third item with STM_LATEST_UNSEEN and consumes-through.  Without GC the
channel would grow without bound — the skipped items are never gotten.  The
distributed GC daemon recomputes the global minimum (producer's virtual
time, consumer's visibility, unconsumed timestamps) and reclaims everything
below it.  The demo samples channel occupancy and the GC horizon while the
pipeline runs, then prints the trace.

Run:  python examples/cluster_gc_demo.py
"""

import time

from repro import Cluster, INFINITY, STM, STM_LATEST_UNSEEN
from repro.runtime import current_thread
from repro.stm import SpaceTimeView

N_ITEMS = 150
ITEM_BYTES = 4096


def producer(cluster):
    me = current_thread()
    out = STM(cluster.space(0)).lookup("stream").attach_output()
    for ts in range(N_ITEMS):
        me.set_virtual_time(ts)
        out.put(ts, bytes(ITEM_BYTES))
        time.sleep(1 / 300)  # stm-ok: STM506 -- demo pacing
    me.set_virtual_time(10**9)
    out.put(10**9, None)
    out.detach()
    me.set_virtual_time(INFINITY)


def slow_consumer(cluster):
    me = current_thread()
    inp = STM(cluster.space(1)).lookup("stream").attach_input()
    me.set_virtual_time(INFINITY)
    processed = 0
    while True:
        item = inp.get(STM_LATEST_UNSEEN)
        if item.value is None:
            inp.consume_until(item.timestamp)
            break
        processed += 1
        # done with the item: consuming-through releases the skipped ones too.
        inp.consume_until(item.timestamp)
        time.sleep(1 / 100)  # stm-ok: STM506 -- 3x slower than the producer
    inp.detach()
    return processed


def main():
    samples = []
    with Cluster(n_spaces=2, gc_period=0.02) as cluster:
        boot = cluster.space(0).adopt_current_thread(virtual_time=0)
        chan = STM(cluster.space(0)).create_channel("stream", home=1)
        threads = [
            cluster.space(1).spawn(slow_consumer, (cluster,), virtual_time=0),
            cluster.space(0).spawn(producer, (cluster,), virtual_time=0),
        ]
        boot.set_virtual_time(INFINITY)
        kernel = cluster.space(1)._channel(chan.channel_id).kernel
        midrun_view = None
        while any(t.os_thread.is_alive() for t in threads):
            samples.append(
                (len(kernel), kernel.gc_horizon, kernel.total_collected)
            )
            if len(samples) == 6:  # one mid-run look at the space-time table
                midrun_view = SpaceTimeView(cluster).render(max_columns=10)
            time.sleep(0.05)
        for t in threads:
            t.join(30.0)
        cluster.gc_once()
        samples.append((len(kernel), kernel.gc_horizon, kernel.total_collected))
        stats = cluster.gc_daemon.stats
        boot.exit()

    if midrun_view:
        print("\n=== mid-run space-time table (Fig. 3 rendered) ===")
        print(midrun_view)
        print()
    print("=== timestamp-based GC trace ===")
    print(f"{'sample':>6} {'stored':>7} {'horizon':>8} {'collected':>10}")
    for i, (stored, horizon, collected) in enumerate(samples):
        print(f"{i:>6} {stored:>7} {str(horizon):>8} {collected:>10}")
    peak = max(s for s, _, _ in samples)
    print(f"\nproducer put {N_ITEMS} items of {ITEM_BYTES} B")
    print(f"peak channel occupancy : {peak} items "
          f"(bounded by GC, not by the stream length)")
    print(f"items reclaimed        : {samples[-1][2]}")
    print(f"GC rounds run          : {stats.epochs}")
    assert samples[-1][0] <= 1, "channel should be (nearly) empty at the end"


if __name__ == "__main__":
    main()
