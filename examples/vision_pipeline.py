#!/usr/bin/env python
"""The Smart Kiosk vision pipeline of the paper's Fig. 2, end to end.

digitizer -> low-fi tracker -> (dynamically spawned) hi-fi tracker
          -> decision module -> GUI

Everything flows through STM channels; the digitizer paces itself with the
real-time API (§4.3); the hi-fi tracker is created on the fly when the
low-fi tracker hypothesizes a customer and *re-analyzes the original frame*
that triggered the hypothesis (§3) — retrievable only because STM indexes
items by timestamp and GC is driven by visibility, not FIFO order.

Run:  python examples/vision_pipeline.py [--frames N] [--fps F] [--spaces K]
                                         [--trace OUT.json]
"""

import argparse
import contextlib

from repro import Cluster
from repro.kiosk import PipelineConfig, run_pipeline
from repro.obs import trace


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=90,
                        help="frames to digitize (default 90)")
    parser.add_argument("--fps", type=float, default=60.0,
                        help="camera rate; the paper's camera runs at 30")
    parser.add_argument("--spaces", type=int, default=1, choices=[1, 3],
                        help="1 = SMP configuration, 3 = clustered stages")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record a Chrome trace_event timeline of the run "
                             "(open in https://ui.perfetto.dev)")
    args = parser.parse_args()

    if args.spaces == 3:
        config = PipelineConfig(
            n_frames=args.frames, fps=args.fps,
            digitizer_space=0, lofi_space=1, hifi_space=1,
            decision_space=2, gui_space=2,
        )
    else:
        config = PipelineConfig(n_frames=args.frames, fps=args.fps)

    tracing = trace(args.trace) if args.trace else contextlib.nullcontext()
    with tracing:
        with Cluster(n_spaces=args.spaces, gc_period=0.02) as cluster:
            result = run_pipeline(cluster, config)

    print(f"\n=== Smart Kiosk pipeline ({args.spaces} address space(s)) ===")
    print(f"frames digitized        : {result.frames_digitized}")
    print(f"low-fi frames analyzed  : {result.frames_analyzed_lofi} "
          f"({result.frames_skipped_lofi} skipped via STM_LATEST_UNSEEN)")
    print(f"hi-fi trackers spawned  : {result.hifi_spawned}")
    print(f"hi-fi frames analyzed   : {result.frames_analyzed_hifi} "
          f"(temporally sparser than the camera, §3)")
    print(f"decisions made          : {len(result.decisions)}")
    print(f"mean tracking error     : {result.mean_tracking_error:.2f} px")
    print(f"digitizer slippages     : {result.digitizer_slips}")
    print(f"wall time               : {result.wall_seconds:.2f} s")
    print("\nkiosk conversation:")
    for event in result.gui.transcript:
        print(f"  [frame {event.timestamp:3d}] kiosk says: {event.utterance}")
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(open in https://ui.perfetto.dev or chrome://tracing)")


if __name__ == "__main__":
    main()
