#!/usr/bin/env python
"""The Smart Kiosk vision pipeline of the paper's Fig. 2, end to end.

digitizer -> low-fi tracker -> (dynamically spawned) hi-fi tracker
          -> decision module -> GUI

Everything flows through STM channels; the digitizer paces itself with the
real-time API (§4.3); the hi-fi tracker is created on the fly when the
low-fi tracker hypothesizes a customer and *re-analyzes the original frame*
that triggered the hypothesis (§3) — retrievable only because STM indexes
items by timestamp and GC is driven by visibility, not FIFO order.

Run:  python examples/vision_pipeline.py [--frames N] [--fps F] [--spaces K]
                                         [--trace OUT.json] [--procs]

``--procs`` runs the pipeline as a *fleet of OS processes* instead: the
digitizer and tracker stages live in their own address-space processes
(:mod:`repro.runtime.procs`), wired by shared-memory rings — same channels,
same timestamps, real protection domains and no shared GIL.
"""

import argparse
import contextlib

from repro import Cluster, ProcCluster
from repro.kiosk import FleetConfig, PipelineConfig, run_fleet, run_pipeline
from repro.obs import trace


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=90,
                        help="frames to digitize (default 90)")
    parser.add_argument("--fps", type=float, default=60.0,
                        help="camera rate; the paper's camera runs at 30")
    parser.add_argument("--spaces", type=int, default=1, choices=[1, 3],
                        help="1 = SMP configuration, 3 = clustered stages")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="record a Chrome trace_event timeline of the run "
                             "(open in https://ui.perfetto.dev)")
    parser.add_argument("--procs", action="store_true",
                        help="run digitizer and tracker as separate OS "
                             "processes over shared-memory rings")
    args = parser.parse_args()

    if args.procs:
        run_procs(args)
        return

    if args.spaces == 3:
        config = PipelineConfig(
            n_frames=args.frames, fps=args.fps,
            digitizer_space=0, lofi_space=1, hifi_space=1,
            decision_space=2, gui_space=2,
        )
    else:
        config = PipelineConfig(n_frames=args.frames, fps=args.fps)

    tracing = trace(args.trace) if args.trace else contextlib.nullcontext()
    with tracing:
        with Cluster(n_spaces=args.spaces, gc_period=0.02) as cluster:
            result = run_pipeline(cluster, config)

    print(f"\n=== Smart Kiosk pipeline ({args.spaces} address space(s)) ===")
    print(f"frames digitized        : {result.frames_digitized}")
    print(f"low-fi frames analyzed  : {result.frames_analyzed_lofi} "
          f"({result.frames_skipped_lofi} skipped via STM_LATEST_UNSEEN)")
    print(f"hi-fi trackers spawned  : {result.hifi_spawned}")
    print(f"hi-fi frames analyzed   : {result.frames_analyzed_hifi} "
          f"(temporally sparser than the camera, §3)")
    print(f"decisions made          : {len(result.decisions)}")
    print(f"mean tracking error     : {result.mean_tracking_error:.2f} px")
    print(f"digitizer slippages     : {result.digitizer_slips}")
    print(f"wall time               : {result.wall_seconds:.2f} s")
    print("\nkiosk conversation:")
    for event in result.gui.transcript:
        print(f"  [frame {event.timestamp:3d}] kiosk says: {event.utterance}")
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(open in https://ui.perfetto.dev or chrome://tracing)")


def run_procs(args):
    """The Fig. 2 pipeline as a fleet of OS processes (repro.kiosk.procfleet)."""
    config = FleetConfig(n_frames=args.frames)
    tracing = trace(args.trace) if args.trace else contextlib.nullcontext()
    with tracing:
        with ProcCluster(n_spaces=3, gc_period=0.02) as cluster:
            result = run_fleet(cluster, config)

    print("\n=== Smart Kiosk fleet (3 address-space processes) ===")
    print(f"frames digitized        : {result.frames_digitized} "
          f"(space {config.digitizer_space}, own process)")
    print(f"frames blob-tracked     : {result.frames_tracked} "
          f"(space {config.tracker_space}, own process)")
    print(f"frames with detections  : {result.frames_detected}")
    print(f"decisions made          : {len(result.decisions)}")
    print(f"mean tracking error     : {result.mean_tracking_error:.2f} px")
    print(f"throughput              : {result.fps:.1f} frames/s "
          f"({result.wall_seconds:.2f} s wall)")
    print("\nkiosk conversation:")
    for event in result.transcript:
        print(f"  [frame {event.timestamp:3d}] kiosk says: {event.utterance}")
    if args.trace:
        print(f"\ntrace written to {args.trace} (parent-process events; "
              f"open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
