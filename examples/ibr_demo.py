#!/usr/bin/env python
"""Image-based rendering on STM: replicated workers, out-of-order puts.

The second Stampede application (paper §5).  Three replicated renderer
threads pull view requests from one channel (partitioned by timestamp
modulo), synthesize views by blending reference images, and put results
into a shared output channel **out of order** — §4.1's replicated-module
scenario.  The display thread reassembles the stream simply by getting
timestamps 0..N-1 in order: STM's timestamp indexing is the resequencing
buffer.

Run:  python examples/ibr_demo.py
"""

from repro import Cluster
from repro.ibr import IbrConfig, run_ibr


def main():
    config = IbrConfig(
        n_requests=30,
        n_workers=3,
        reference_angles=(-10.0, -5.0, 0.0, 5.0, 10.0),
        sweep=(-9.0, 9.0),
        view_size=96,
        worker_space=1,
    )
    with Cluster(n_spaces=2, gc_period=0.02) as cluster:
        result = run_ibr(cluster, config)

    print("=== image-based rendering on STM ===")
    print(f"views synthesized      : {len(result.views)}")
    print(f"workers                : {dict(sorted(result.per_worker.items()))}")
    print(f"out-of-order completions: {result.out_of_order_completions} "
          f"(display still saw 0..{config.n_requests - 1} in order)")
    print(f"mean PSNR vs direct render: {result.mean_psnr:.1f} dB")
    print(f"wall time              : {result.wall_seconds:.2f} s")
    worst = min(result.views.items(), key=lambda kv: kv[1])
    best = max(result.views.items(), key=lambda kv: kv[1])
    print(f"best view  : request {best[0]} at {best[1]:.1f} dB")
    print(f"worst view : request {worst[0]} at {worst[1]:.1f} dB")


if __name__ == "__main__":
    main()
