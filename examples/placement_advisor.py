#!/usr/bin/env python
"""Placement advisor: schedule the kiosk pipeline across a cluster (§9/[12]).

    "It explores optimal latency-reducing schedules for task- and
    data-parallel decompositions."

Given the kiosk pipeline's per-stage compute costs and item sizes, this
example searches every assignment of stages to address spaces with the
analytic model of ``repro.runtime.placement``, prints the latency- and
throughput-optimal schedules, and then *validates* the winner by running
the pipeline in the discrete-event cluster simulator.

Run:  python examples/placement_advisor.py [--spaces K]
"""

import argparse
import itertools

from repro.bench.pipeline_sim import simulate_pipeline_latency_us
from repro.runtime.placement import KIOSK_PIPELINE, optimal_placement, predict
from repro.transport.clf import ClusterTopology


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spaces", type=int, default=3)
    args = parser.parse_args()
    n = args.spaces
    model = KIOSK_PIPELINE
    topology = ClusterTopology(n)

    print(f"=== placement advisor: {len(model.stages)} stages on {n} "
          f"address spaces ({n ** len(model.stages)} candidates) ===\n")
    print("stages:")
    for stage in model.stages:
        print(f"  {stage.name:14s} compute={stage.compute_us:>8.0f}us  "
              f"emits {stage.output_bytes} B/item")

    best_latency = optimal_placement(model, n, "latency",
                                     pinned={"digitizer": 0})
    best_throughput = optimal_placement(model, n, "throughput",
                                        pinned={"digitizer": 0},
                                        cpus_per_space=1)
    print("\nbest for latency     :", best_latency.describe(model))
    print("best for throughput  :", best_throughput.describe(model),
          "(assuming 1 cpu per space)")

    # worst placement, for contrast
    worst = max(
        (
            predict(model, p, topology)
            for p in itertools.product(range(n), repeat=len(model.stages))
            if p[0] == 0
        ),
        key=lambda pred: pred.latency_us,
    )
    print("worst placement      :", worst.describe(model))

    print("\nvalidating against the discrete-event simulator:")
    for label, placement in [
        ("best", best_latency.placement),
        ("worst", worst.placement),
    ]:
        predicted = predict(model, placement, topology).latency_us
        simulated = simulate_pipeline_latency_us(placement, frames=15)
        print(f"  {label:5s} {placement}: predicted {predicted:8.0f}us, "
              f"simulated {simulated:8.0f}us "
              f"({100 * predicted / simulated - 100:+.1f}%)")


if __name__ == "__main__":
    main()
