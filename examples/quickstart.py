#!/usr/bin/env python
"""Quickstart: Space-Time Memory in ~40 lines.

A producer thread puts timestamped items into a channel; a consumer thread
gets the latest unseen item (transparently skipping stale ones), consumes
it, and the distributed GC reclaims dead items — no explicit buffer
management or thread-to-thread synchronization anywhere.

Run:  python examples/quickstart.py
"""

from repro import Cluster, INFINITY, STM, STM_LATEST_UNSEEN
from repro.runtime import current_thread


def producer(cluster):
    import time

    me = current_thread()
    stm = STM(cluster.space(0))
    out = stm.lookup("numbers").attach_output()
    for value in range(10):
        me.set_virtual_time(value)  # the thread's virtual time = item index
        out.put(value, {"square": value * value})
        print(f"producer: put item at t={value}")
        time.sleep(0.01)  # stm-ok: STM506 -- ~100 items/s demo pacing
    me.set_virtual_time(10**9)
    out.put(10**9, None)  # end-of-stream sentinel
    out.detach()
    me.set_virtual_time(INFINITY)  # stop pinning the GC horizon


def consumer(cluster):
    me = current_thread()
    stm = STM(cluster.space(1))  # another address space: location transparent
    inp = stm.lookup("numbers", wait=True).attach_input()
    me.set_virtual_time(INFINITY)
    last = -1
    while True:
        item = inp.get(STM_LATEST_UNSEEN)  # newest item not seen yet
        if item.value is None:
            inp.consume_until(item.timestamp)
            break
        skipped = item.timestamp - last - 1
        note = f" (skipped {skipped} stale items)" if skipped else ""
        print(f"consumer: got t={item.timestamp} -> {item.value}{note}")
        last = item.timestamp
        # done with the item: release it (and everything older) for GC.
        inp.consume_until(item.timestamp)
    inp.detach()


def main():
    with Cluster(n_spaces=2) as cluster:
        boot = cluster.space(0).adopt_current_thread(virtual_time=0)
        STM(cluster.space(0)).create_channel("numbers")
        threads = [
            cluster.space(1).spawn(consumer, (cluster,), virtual_time=0),
            cluster.space(0).spawn(producer, (cluster,), virtual_time=0),
        ]
        boot.set_virtual_time(INFINITY)
        for t in threads:
            t.join(30.0)
        print(f"GC horizon after the run: {cluster.gc_once()!r}")
        boot.exit()


if __name__ == "__main__":
    main()
