#!/usr/bin/env python
"""Stereo vision on STM: temporally correlating two camera streams (§3).

    "Datasets from different sources need to be combined, correlating them
    temporally.  For example, stereo vision combines data from two or more
    cameras..."

Two digitizer threads fill the ``camera.left`` and ``camera.right`` channels
independently (different threads, different real times).  The stereo module
joins the two streams **by timestamp column**: for each frame number it gets
the left and right images with the *same* timestamp — STM's core abstraction
— measures the horizontal disparity of the tracked blob, and estimates its
depth.  There is no message passing and no barrier; the temporal join is
just two specific-timestamp gets.

Run:  python examples/stereo_kiosk.py
"""

import numpy as np

from repro import Cluster, INFINITY, STM
from repro.kiosk import Actor, BlobTracker, SyntheticScene
from repro.runtime import Pacer, current_thread

N_FRAMES = 30
FPS = 120.0
BASELINE_PX = 12.0  # horizontal offset between the two cameras (disparity)
FOCAL_TIMES_BASELINE = 2400.0  # depth = f*B / disparity


def make_scenes():
    """Left/right views of one walking customer, offset by the baseline."""
    actor_left = Actor(color=(210, 50, 50), start=(80.0, 120.0),
                       velocity=(1.8, 0.4))
    actor_right = Actor(color=(210, 50, 50),
                        start=(80.0 - BASELINE_PX, 120.0),
                        velocity=(1.8, 0.4))
    return (
        SyntheticScene(actors=[actor_left], seed=77, noise_sigma=1.0),
        SyntheticScene(actors=[actor_right], seed=77, noise_sigma=1.0),
    )


def digitizer(cluster, name, scene):
    me = current_thread()
    out = STM(cluster.space(0)).lookup(name).attach_output()
    pacer = Pacer(period=1.0 / FPS, handler=lambda r: None)
    for t in range(N_FRAMES):
        pacer.wait_for_tick()
        me.set_virtual_time(t)
        out.put(t, scene.render(t))
    me.set_virtual_time(INFINITY)
    out.detach()


def stereo_module(cluster, scenes, estimates):
    """Joins the two camera channels column by column."""
    me = current_thread()
    stm = STM(cluster.space(0))
    left = stm.lookup("camera.left").attach_input()
    right = stm.lookup("camera.right").attach_input()
    me.set_virtual_time(INFINITY)
    tracker_l = BlobTracker(scenes[0].background)
    tracker_r = BlobTracker(scenes[1].background)
    for t in range(N_FRAMES):
        frame_l = left.get(t)   # the temporal join: same timestamp,
        frame_r = right.get(t)  # two independent streams (§3, Fig. 3)
        rec_l = tracker_l.analyze(t, frame_l.value)
        rec_r = tracker_r.analyze(t, frame_r.value)
        if rec_l.detected and rec_r.detected:
            disparity = rec_l.best()[0].cx - rec_r.best()[0].cx
            if disparity > 0.5:
                estimates.append((t, FOCAL_TIMES_BASELINE / disparity))
        left.consume_until(t)
        right.consume_until(t)
    left.detach()
    right.detach()


def main():
    scenes = make_scenes()
    estimates: list[tuple[int, float]] = []
    with Cluster(n_spaces=1, gc_period=0.02) as cluster:
        boot = cluster.space(0).adopt_current_thread(virtual_time=0)
        stm = STM(cluster.space(0))
        stm.create_channel("camera.left")
        stm.create_channel("camera.right")
        threads = [
            cluster.space(0).spawn(
                stereo_module, (cluster, scenes, estimates), virtual_time=0),
            cluster.space(0).spawn(
                digitizer, (cluster, "camera.left", scenes[0]), virtual_time=0),
            cluster.space(0).spawn(
                digitizer, (cluster, "camera.right", scenes[1]), virtual_time=0),
        ]
        boot.set_virtual_time(INFINITY)
        for t in threads:
            t.join(60.0)
        boot.exit()

    true_depth = FOCAL_TIMES_BASELINE / BASELINE_PX
    print(f"=== stereo kiosk: {len(estimates)} depth estimates ===")
    print(f"true depth: {true_depth:.0f} units")
    depths = np.array([d for _, d in estimates])
    print(f"estimated : {depths.mean():.0f} ± {depths.std():.1f} units")
    for t, depth in estimates[:5]:
        print(f"  frame {t:2d}: depth ≈ {depth:.0f}")
    error = abs(depths.mean() - true_depth) / true_depth
    print(f"mean relative error: {error * 100:.1f}%")


if __name__ == "__main__":
    main()
