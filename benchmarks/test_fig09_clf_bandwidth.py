"""Regenerates paper Fig. 9: maximum CLF bandwidths (incl. the acked column)."""

import pytest

from repro.bench.fig09 import clf_bandwidth_table, measure_clf_stream_mbps
from repro.transport.media import (
    CAMERA_BANDWIDTH_MBPS,
    MEMORY_CHANNEL,
    SHARED_MEMORY,
    UDP_LAN,
)


def test_fig09_simulated(benchmark, record_table):
    table = benchmark(clf_bandwidth_table, "simulated")
    record_table(table)
    assert table.cell(SHARED_MEMORY.name, 8) == pytest.approx(2.3, rel=0.05)
    assert table.cell(UDP_LAN.name, 8) == pytest.approx(0.13, rel=0.05)
    for cells in table.rows.values():
        assert cells["8152*"] < cells[8152]  # ack-per-image column is lower
    # the cluster interconnect sustains the camera stream; FDDI UDP does not
    assert table.cell(MEMORY_CHANNEL.name, 8152) > 5 * CAMERA_BANDWIDTH_MBPS
    assert table.cell(UDP_LAN.name, 8152) < CAMERA_BANDWIDTH_MBPS


def test_fig09_measured_on_this_host(record_table):
    table = clf_bandwidth_table("measured", sizes=[1024, 8152])
    record_table(table)
    (row,) = table.rows.values()
    assert row[8152] > row[1024] * 0.5  # larger packets shouldn't collapse


def test_clf_stream_microbenchmark(benchmark):
    benchmark(measure_clf_stream_mbps, 8152, 230_400)
