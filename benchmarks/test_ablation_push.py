"""Ablation bench: the §9 eager-push optimization, measured on this host.

    "we would like to use information about the current connections to a
    channel to preemptively send data towards consumers, thereby improving
    latency and bandwidth through the channel."
"""

from repro.bench.ablations import push_ablation


def test_ablation_push(benchmark, record_table):
    table = benchmark.pedantic(
        push_ablation, kwargs={"items": 12}, rounds=1, iterations=1
    )
    record_table(table)
    pull = table.rows["pull (data sent at get time)"]
    push = table.rows["push (data sent at put time)"]
    # With the payload pre-positioned, the get path should be faster on
    # average (it moves ~100 header bytes instead of a 230 KB frame).
    assert push["mean_get_us"] < pull["mean_get_us"]
