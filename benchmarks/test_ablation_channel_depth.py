"""Ablation bench: bounded channel depth (paper §4.1) — producer stalls
versus item staleness."""

from repro.bench.ablations import channel_depth_ablation


def test_ablation_channel_depth(benchmark, record_table):
    table = benchmark.pedantic(
        channel_depth_ablation, kwargs={"items": 60}, rounds=1, iterations=1
    )
    record_table(table)
    depths = list(table.rows)
    blocks = [table.rows[d]["producer_block_us"] for d in depths]
    staleness = [table.rows[d]["mean_staleness_frames"] for d in depths]
    # blocking monotonically decreases with capacity; staleness increases
    assert blocks[0] > blocks[-1]
    assert staleness[0] <= staleness[-1]
