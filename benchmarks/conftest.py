"""Shared benchmark fixtures: collect every regenerated table and write the
bundle to ``benchmarks/_output/tables.txt`` at the end of the session, so
EXPERIMENTS.md can be refreshed from one artifact.

``pytest benchmarks/ --trace-out=OUT.json`` arms the :mod:`repro.obs`
tracer for the whole session and writes one Chrome trace covering every
benchmark that ran (load it in https://ui.perfetto.dev).
"""

from __future__ import annotations

import pathlib

import pytest

_TABLES: list = []
_OUTPUT = pathlib.Path(__file__).parent / "_output"


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", default=None, metavar="OUT.json",
        help="write a repro.obs Chrome trace of the benchmark session",
    )


def pytest_configure(config):
    if config.getoption("--trace-out"):
        from repro.obs import events as obs_events

        obs_events.enable()


def pytest_unconfigure(config):
    path = config.getoption("--trace-out")
    if not path:
        return
    from repro.obs import events as obs_events
    from repro.obs.export import write_chrome_trace

    rec = obs_events.disable()
    if rec is not None:
        write_chrome_trace(path, rec)


@pytest.fixture
def record_table():
    """Call with a TableResult to print it and include it in the bundle."""

    def _record(table):
        _TABLES.append(table)
        print()
        print(table.render())
        return table

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _TABLES:
        return
    _OUTPUT.mkdir(exist_ok=True)
    path = _OUTPUT / "tables.txt"
    with path.open("w") as fh:
        for table in _TABLES:
            fh.write(table.render())
            fh.write("\n\n")
