"""Shared benchmark fixtures: collect every regenerated table and write the
bundle to ``benchmarks/_output/tables.txt`` at the end of the session, so
EXPERIMENTS.md can be refreshed from one artifact.
"""

from __future__ import annotations

import pathlib

import pytest

_TABLES: list = []
_OUTPUT = pathlib.Path(__file__).parent / "_output"


@pytest.fixture
def record_table():
    """Call with a TableResult to print it and include it in the bundle."""

    def _record(table):
        _TABLES.append(table)
        print()
        print(table.render())
        return table

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _TABLES:
        return
    _OUTPUT.mkdir(exist_ok=True)
    path = _OUTPUT / "tables.txt"
    with path.open("w") as fh:
        for table in _TABLES:
            fh.write(table.render())
            fh.write("\n\n")
