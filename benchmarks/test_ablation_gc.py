"""Ablation bench: GC strategies — eager refcount vs reachability vs hybrid
(the design choice of paper §6 "Garbage Collection")."""

from repro.bench.ablations import gc_strategy_ablation


def test_ablation_gc_strategy(benchmark, record_table):
    table = benchmark.pedantic(
        gc_strategy_ablation, kwargs={"items": 120, "consumers": 3},
        rounds=1, iterations=1,
    )
    record_table(table)
    ref = table.rows["refcount"]
    reach = table.rows["reachability"]
    hybrid = table.rows["hybrid"]
    assert ref["peak_items"] < reach["peak_items"]
    assert hybrid["peak_items"] <= reach["peak_items"]
    assert ref["collected_refcount"] == 120
    assert reach["collected_reachability"] == 120
