"""Microbenchmarks of individual STM operations on this host.

These are pure pytest-benchmark measurements (no paper table): the per-call
cost of the kernel and of the full local facade path, for profiling
regressions in the hot path.
"""

import pytest

from repro.core import STM_LATEST_UNSEEN
from repro.core.channel_state import ChannelKernel
from repro.runtime import Cluster
from repro.stm import STM


@pytest.fixture
def kernel():
    k = ChannelKernel(1)
    k.attach_output(0)
    k.attach_input(1, visibility=0)
    return k


def test_kernel_put_get_consume_cycle(benchmark, kernel):
    state = {"ts": 0}

    def cycle():
        ts = state["ts"]
        kernel.put(0, ts, b"x" * 64, 64)
        kernel.get(1, ts)
        kernel.consume(1, ts)
        state["ts"] = ts + 1
        if ts % 1000 == 999:
            kernel.collect_below(kernel.unconsumed_min())

    benchmark(cycle)


def test_kernel_latest_unseen_resolution(benchmark, kernel):
    for ts in range(500):
        kernel.put(0, ts, b"", 0)
    kernel.consume_until(1, 498)

    def resolve():
        from repro.core.channel_state import Status

        result = kernel.get(1, STM_LATEST_UNSEEN)
        # reset so the next iteration resolves again
        view = kernel.inputs[1]
        view.open_ts.discard(499)
        view.last_gotten = 0
        return result

    benchmark(resolve)


def test_kernel_unconsumed_min(benchmark, kernel):
    for ts in range(1000):
        kernel.put(0, ts, b"", 0)
    kernel.consume_until(1, 900)
    benchmark(kernel.unconsumed_min)


@pytest.fixture
def local_cluster():
    with Cluster(n_spaces=1, gc_period=None) as cluster:
        me = cluster.space(0).adopt_current_thread(virtual_time=0)
        yield cluster
        me.exit()


def test_facade_local_put_get_consume(benchmark, local_cluster):
    stm = STM(local_cluster.space(0))
    chan = stm.create_channel()
    out, inp = chan.attach_output(), chan.attach_input()
    payload = bytes(1024)
    state = {"ts": 0}

    def cycle():
        ts = state["ts"]
        # refcount=1: the item is eagerly reclaimed at its consume, so the
        # channel stays small across the thousands of benchmark iterations
        # (no GC daemon runs in this fixture).
        out.put(ts, payload, refcount=1)
        inp.get(ts)
        inp.consume(ts)
        state["ts"] = ts + 1

    benchmark(cycle)


def test_facade_serialize_image_payload(benchmark, local_cluster):
    import numpy as np

    stm = STM(local_cluster.space(0))
    chan = stm.create_channel()
    out, inp = chan.attach_output(), chan.attach_input()
    frame = np.zeros((240, 320, 3), dtype=np.uint8)
    state = {"ts": 0}

    def cycle():
        ts = state["ts"]
        out.put(ts, frame, refcount=1)  # eager reclamation: bounded memory
        inp.get_consume(ts)
        state["ts"] = ts + 1

    benchmark(cycle)


# ----------------------------------------------------------------------
# PR-1 hot-path counters: not timings but *counted* costs, asserted so a
# regression in the wakeup / GC / framing machinery fails the bench suite.
# ----------------------------------------------------------------------
def test_counter_wakeups_per_put_is_one():
    from repro.bench.pr1_hotpath import measure_wakeups

    result = measure_wakeups(n_consumers=4)
    assert result["woken_per_put"] <= 1.0, result


def test_counter_gc_epoch_scans_nothing_in_steady_state():
    from repro.bench.pr1_hotpath import measure_gc_epoch

    result = measure_gc_epoch(n_spaces=2, n_channels=8, items_per_channel=64,
                              epochs=3)
    assert result["min_scan_steps_per_epoch"] == 0, result


def test_counter_remote_payload_memcpys_bounded():
    from repro.bench.pr1_hotpath import measure_framing

    result = measure_framing(payload_bytes=1 << 18, iters=5)
    copies = result["payload_copies_per_transfer"]
    # one gather on the send side + one reassembly join on the receive side
    # (the tiny pickle/header overhead rides along in the same packets)
    assert copies <= 2.05, result
