"""Regenerates paper Fig. 11: STM bandwidths for image payloads.

Shape claims (§8.2): column A (1P/1C) is much less than raw CLF because the
synchronization serializes data movement into per-item bursts, yet is
comfortably above the 6.912 MB/s camera rate; column B (2P/2C into one
space) overlaps one pair's data movement with the other's synchronization
and approaches raw CLF bandwidth.
"""

import pytest

from repro.bench.fig11 import (
    measure_stm_bandwidth_mbps,
    simulate_stm_bandwidth_mbps,
    stm_bandwidth_table,
)
from repro.transport.media import CAMERA_BANDWIDTH_MBPS, MEMORY_CHANNEL


def test_fig11_simulated(benchmark, record_table):
    table = benchmark(stm_bandwidth_table, "simulated")
    record_table(table)
    a = table.rows["A: 1 producer / 1 consumer"]["MB/s"]
    b = table.rows["B: 2 producers / 2 consumers"]["MB/s"]
    raw = MEMORY_CHANNEL.wire_bandwidth_mbps
    assert CAMERA_BANDWIDTH_MBPS < a < 0.85 * raw
    assert b > a
    assert b > 0.9 * raw


def test_fig11_measured_on_this_host(record_table):
    table = stm_bandwidth_table("measured", items=8)
    record_table(table)
    a = table.rows["A: 1 producer / 1 consumer"]["MB/s"]
    assert a > 0


def test_stm_image_bandwidth_microbenchmark(benchmark):
    benchmark(measure_stm_bandwidth_mbps, 1, 6)


def test_simulated_bandwidth_point(benchmark):
    benchmark(simulate_stm_bandwidth_mbps, 2, MEMORY_CHANNEL, 20)
