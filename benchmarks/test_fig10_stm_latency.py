"""Regenerates paper Fig. 10: minimum STM one-way latencies.

Producer puts on one address space; the consumer (co-located with the
channel) gets and consumes.  Simulated mode must land within 15 % of the
paper's surviving UDP row; measured mode reports this host's thread runtime.
"""

import pytest

from repro.bench.fig10 import (
    STM_PAYLOAD_SIZES,
    measure_stm_latency_us,
    simulate_stm_latency_us,
    stm_latency_table,
)
from repro.transport.media import MEMORY_CHANNEL, UDP_LAN


def test_fig10_simulated(benchmark, record_table):
    table = benchmark(stm_latency_table, "simulated")
    record_table(table)
    for col, published in table.paper[UDP_LAN.name].items():
        assert table.rows[UDP_LAN.name][col] == pytest.approx(published, rel=0.15)
    for medium in (MEMORY_CHANNEL, UDP_LAN):
        for col in STM_PAYLOAD_SIZES:
            cell = table.rows[medium.name][col]
            assert cell > medium.one_way_latency_us(col)  # STM > raw CLF
            assert cell < 33_333  # well below the frame interval (§8.2)


def test_fig10_measured_on_this_host(record_table):
    table = stm_latency_table("measured", sizes=[8, 8112], items=30)
    record_table(table)
    (row,) = table.rows.values()
    assert all(v > 0 for v in row.values())


def test_stm_put_get_consume_microbenchmark(benchmark):
    benchmark(measure_stm_latency_us, 1024, 20)


def test_simulated_latency_single_point(benchmark):
    benchmark(simulate_stm_latency_us, MEMORY_CHANNEL, 8112, 30)
