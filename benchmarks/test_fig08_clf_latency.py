"""Regenerates paper Fig. 8: minimum one-way CLF latencies.

Run with ``pytest benchmarks/test_fig08_clf_latency.py --benchmark-only -s``
to see the tables.  The *simulated* table reproduces the 1998 hardware
(published 8-byte cells shown in parentheses); the *measured* table reports
this host's in-process CLF software overhead.
"""

import pytest

from repro.bench.fig08 import PACKET_SIZES, clf_latency_table, measure_clf_roundtrip_us
from repro.transport.media import MEMORY_CHANNEL, SHARED_MEMORY, UDP_LAN


def test_fig08_simulated(benchmark, record_table):
    table = benchmark(clf_latency_table, "simulated")
    record_table(table)
    # paper anchors
    assert table.cell(SHARED_MEMORY.name, 8) == pytest.approx(17, rel=0.05)
    assert table.cell(MEMORY_CHANNEL.name, 8) == pytest.approx(19, rel=0.05)
    assert table.cell(UDP_LAN.name, 8) == pytest.approx(227, rel=0.05)
    # latency grows with packet size on every medium
    for cells in table.rows.values():
        values = [cells[c] for c in PACKET_SIZES]
        assert values == sorted(values)


def test_fig08_measured_on_this_host(record_table):
    table = clf_latency_table("measured", sizes=[8, 1024, 8152])
    record_table(table)
    (row,) = table.rows.values()
    assert all(v > 0 for v in row.values())


def test_clf_ping_microbenchmark(benchmark):
    """Raw CLF ping-pong on this host (pytest-benchmark statistics)."""
    benchmark(measure_clf_roundtrip_us, 1024, 20)
