"""Ablation bench: exhaustive placement search for the kiosk pipeline
(the §9 / companion-paper scheduling direction)."""

from repro.bench.tables import TableResult
from repro.runtime.placement import KIOSK_PIPELINE, optimal_placement, predict
from repro.transport.clf import ClusterTopology


def placement_search_table(n_spaces: int = 3) -> TableResult:
    table = TableResult(
        title="Ablation: pipeline placement search (§9 scheduling)",
        row_label="placement (digitizer pinned to space 0)",
        col_label="",
        columns=["latency_us", "throughput_fps"],
    )
    topology = ClusterTopology(n_spaces)
    best_lat = optimal_placement(
        KIOSK_PIPELINE, n_spaces, "latency", pinned={"digitizer": 0}
    )
    best_tp = optimal_placement(
        KIOSK_PIPELINE, n_spaces, "throughput", pinned={"digitizer": 0},
        cpus_per_space=1,
    )
    naive = predict(KIOSK_PIPELINE, tuple(
        i % n_spaces for i in range(len(KIOSK_PIPELINE.stages))
    ), topology)
    for label, pred in [
        ("best for latency", best_lat),
        ("best for throughput (1 cpu/space)", best_tp),
        ("naive round-robin", naive),
    ]:
        table.rows[f"{label}: {pred.placement}"] = {
            "latency_us": pred.latency_us,
            "throughput_fps": pred.throughput_fps,
        }
    return table


def test_ablation_placement_search(benchmark, record_table):
    table = benchmark(placement_search_table)
    record_table(table)
    rows = list(table.rows.values())
    best_lat, _best_tp, naive = rows
    assert best_lat["latency_us"] <= naive["latency_us"]
