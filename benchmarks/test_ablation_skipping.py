"""Ablation bench: STM_LATEST_UNSEEN transparent skipping vs strict
in-order consumption for a consumer slower than the camera (paper §3)."""

from repro.bench.ablations import skipping_ablation


def test_ablation_skipping(benchmark, record_table):
    table = benchmark.pedantic(
        skipping_ablation, kwargs={"items": 90}, rounds=1, iterations=1
    )
    record_table(table)
    skip = table.rows["latest_unseen"]
    strict = table.rows["strict_oldest"]
    assert skip["skipped"] > 0 and strict["skipped"] == 0
    assert skip["mean_staleness_frames"] < strict["mean_staleness_frames"]
