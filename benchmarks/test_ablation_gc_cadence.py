"""Ablation bench: GC recomputation cadence (paper §4.2) — buffered bytes
versus GC traffic."""

from repro.bench.ablations import gc_cadence_ablation


def test_ablation_gc_cadence(benchmark, record_table):
    table = benchmark.pedantic(
        gc_cadence_ablation, kwargs={"items": 60}, rounds=1, iterations=1
    )
    record_table(table)
    periods = list(table.rows)
    rounds = [table.rows[p]["gc_rounds"] for p in periods]
    buffered = [table.rows[p]["peak_buffered_mb"] for p in periods]
    assert rounds == sorted(rounds, reverse=True)
    assert buffered == sorted(buffered)
