"""Bench: simulated kiosk pipeline latency per placement, validating the
placement scheduler's analytic model against the discrete-event cluster."""

from repro.bench.pipeline_sim import pipeline_placement_table


def test_pipeline_placement_sim(benchmark, record_table):
    table = benchmark.pedantic(
        pipeline_placement_table, kwargs={"frames": 15}, rounds=1, iterations=1
    )
    record_table(table)
    for row, cells in table.rows.items():
        sim, pred = cells["simulated_us"], cells["predicted_us"]
        assert 0.4 < pred / sim < 2.5, f"model diverged from sim at {row}"
    # the model and the simulator agree on the ranking of placements
    by_sim = sorted(table.rows, key=lambda r: table.rows[r]["simulated_us"])
    by_pred = sorted(table.rows, key=lambda r: table.rows[r]["predicted_us"])
    assert by_sim[0] == by_pred[0]  # same winner
