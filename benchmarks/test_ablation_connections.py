"""Ablation bench: channel placement — the mechanism behind connection
hints and the §9 "preemptively send data towards consumers" future work."""

from repro.bench.ablations import placement_ablation


def test_ablation_placement(benchmark, record_table):
    table = benchmark.pedantic(placement_ablation, rounds=1, iterations=1)
    record_table(table)
    rows = table.rows
    consumer = rows["consumer space (data pushed early)"]
    producer = rows["producer space (data pulled on get)"]
    third = rows["third space (two hops)"]
    # pushing data toward the consumer beats the two-hop detour...
    assert consumer["latency_us"] < third["latency_us"]
    # ...and no placement beats co-locating data with its consumer
    assert consumer["latency_us"] <= producer["latency_us"] * 1.05
