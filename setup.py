"""Legacy setup shim: the offline environment lacks the `wheel` package, so
`pip install -e .` must use the classic setup.py editable path (metadata
lives in pyproject.toml)."""

from setuptools import setup

setup()
