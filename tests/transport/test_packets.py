"""Unit + property tests for CLF packetization (fragmentation/reassembly)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PacketTooLargeError, TransportError
from repro.transport.media import CLF_MTU
from repro.transport.packets import (
    HEADER_BYTES,
    Reassembler,
    fragment,
    max_payload,
    parse,
)


class TestFragment:
    def test_small_message_single_packet(self):
        packets = list(fragment(1, b"hello"))
        assert len(packets) == 1
        assert len(packets[0]) == HEADER_BYTES + 5

    def test_empty_message_still_one_packet(self):
        packets = list(fragment(1, b""))
        assert len(packets) == 1
        assert len(packets[0]) == HEADER_BYTES

    def test_fragment_count(self):
        chunk = max_payload()
        data = bytes(chunk * 2 + 1)
        assert len(list(fragment(1, data))) == 3

    def test_packets_respect_mtu(self):
        data = bytes(100_000)
        for packet in fragment(1, data):
            assert len(packet) <= CLF_MTU

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            max_payload(HEADER_BYTES)

    def test_parse_roundtrip(self):
        packet = next(fragment(42, b"abc"))
        msgid, index, count, payload = parse(packet)
        assert (msgid, index, count, payload) == (42, 0, 1, b"abc")


class TestReassembler:
    def test_roundtrip_small(self):
        r = Reassembler()
        assert r.feed(next(fragment(1, b"x"))) == b"x"

    def test_roundtrip_multi_fragment(self):
        data = bytes(range(256)) * 200  # ~51 KB, several fragments
        r = Reassembler()
        out = None
        for packet in fragment(7, data):
            result = r.feed(packet)
            if result is not None:
                assert out is None
                out = result
        assert out == data
        assert not r.mid_message

    def test_sequential_messages(self):
        r = Reassembler()
        for msgid in range(5):
            data = bytes([msgid]) * (msgid * 9000 + 1)
            results = [r.feed(p) for p in fragment(msgid, data)]
            assert results[-1] == data
            assert all(x is None for x in results[:-1])

    def test_mid_message_flag(self):
        r = Reassembler()
        packets = list(fragment(1, bytes(20_000)))
        r.feed(packets[0])
        assert r.mid_message

    def test_interleaved_messages_detected(self):
        r = Reassembler()
        a = list(fragment(1, bytes(20_000)))
        b = list(fragment(2, bytes(20_000)))
        r.feed(a[0])
        with pytest.raises(TransportError, match="violation"):
            r.feed(b[0])

    def test_reordered_fragments_detected(self):
        r = Reassembler()
        packets = list(fragment(1, bytes(30_000)))
        r.feed(packets[0])
        with pytest.raises(TransportError, match="violation"):
            r.feed(packets[2])

    def test_message_starting_mid_stream_detected(self):
        r = Reassembler()
        packets = list(fragment(1, bytes(30_000)))
        with pytest.raises(TransportError, match="began at fragment"):
            r.feed(packets[1])

    def test_corrupted_payload_detected(self):
        packet = bytearray(next(fragment(1, b"hello world")))
        packet[-1] ^= 0xFF
        with pytest.raises(TransportError, match="CRC"):
            Reassembler().feed(bytes(packet))

    def test_corrupt_length_detected(self):
        packet = bytearray(next(fragment(1, b"hello")))
        packet[24] = 200  # claim a longer payload than present
        with pytest.raises(TransportError, match="truncated"):
            Reassembler().feed(bytes(packet))

    def test_runt_packet_detected(self):
        with pytest.raises(TransportError, match="runt"):
            Reassembler().feed(b"tiny")

    def test_oversize_packet_detected(self):
        with pytest.raises(PacketTooLargeError):
            Reassembler().feed(bytes(CLF_MTU + 1))


@given(st.binary(max_size=60_000), st.integers(0, 2**40))
def test_roundtrip_property(data, msgid):
    """Any message fragments and reassembles byte-identically."""
    r = Reassembler()
    out = None
    for packet in fragment(msgid, data):
        result = r.feed(packet)
        if result is not None:
            out = result
    assert out == data


@given(st.binary(min_size=1, max_size=5000), st.integers(64, 512))
def test_roundtrip_small_mtu(data, mtu):
    """Fragmentation works for any MTU larger than the header."""
    r = Reassembler(mtu)
    out = None
    for packet in fragment(1, data, mtu):
        assert len(packet) <= mtu
        result = r.feed(packet)
        if result is not None:
            out = result
    assert out == data
