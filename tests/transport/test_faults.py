"""Fault-injection tests: broken transport promises must fail LOUDLY."""

import pytest

from repro.errors import TransportError
from repro.transport.clf import ClfNetwork
from repro.transport.faults import FaultPlan, FaultyNetwork


@pytest.fixture
def net():
    network = ClfNetwork.create(2)
    with FaultyNetwork(network) as faulty:
        yield faulty
    network.close()


def pump(dst, n=1, timeout=2.0):
    """Receive up to n messages; returns (messages, first TransportError)."""
    import queue

    messages, error = [], None
    try:
        for _ in range(n):
            messages.append(dst.recv(timeout=timeout)[1])
    except TransportError as exc:
        error = exc
    except queue.Empty:
        pass
    return messages, error


class TestFaultPlans:
    def test_clean_link_passes_through(self, net):
        a, b = net.network.endpoint(0), net.network.endpoint(1)
        a.send(1, b"untouched")
        messages, error = pump(b)
        assert messages == [b"untouched"] and error is None

    def test_corruption_detected_by_crc(self, net):
        net.fault_link(0, 1, FaultPlan(corrupt=1.0, seed=7))
        a, b = net.network.endpoint(0), net.network.endpoint(1)
        a.send(1, b"these bytes will be flipped")
        _messages, error = pump(b)
        assert error is not None  # CRC or header damage surfaced loudly
        assert net.injected["corrupted"] >= 1

    def test_drop_detected_on_multifragment_message(self, net):
        net.fault_link(0, 1, FaultPlan(drop=0.5, seed=3))
        a, b = net.network.endpoint(0), net.network.endpoint(1)
        a.send(1, bytes(60_000))  # ~8 fragments: some will vanish
        messages, error = pump(b)
        assert net.injected["dropped"] >= 1
        # either the message never completes (missing fragment at the end)
        # or the gap is detected as a stream violation
        assert error is not None or messages == []

    def test_duplicate_detected(self, net):
        net.fault_link(0, 1, FaultPlan(duplicate=1.0, seed=5))
        a, b = net.network.endpoint(0), net.network.endpoint(1)
        a.send(1, bytes(20_000))  # 3 fragments, each duplicated
        _messages, error = pump(b, n=2)
        assert error is not None
        assert "violation" in str(error) or "began at" in str(error)

    def test_reorder_detected(self, net):
        net.fault_link(0, 1, FaultPlan(reorder=1.0, seed=9))
        a, b = net.network.endpoint(0), net.network.endpoint(1)
        a.send(1, bytes(30_000))  # 4 fragments, pairwise swapped
        _messages, error = pump(b)
        assert net.injected["reordered"] >= 1
        assert error is not None

    def test_faults_are_deterministic(self):
        def run_once():
            network = ClfNetwork.create(2)
            with FaultyNetwork(network) as faulty:
                faulty.fault_link(0, 1, FaultPlan(drop=0.3, corrupt=0.2, seed=11))
                a = network.endpoint(0)
                for i in range(5):
                    a.send(1, bytes(9000))
                counts = dict(faulty.injected)
            network.close()
            return counts

        assert run_once() == run_once()

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)

    def test_uninstall_restores_clean_send(self):
        network = ClfNetwork.create(2)
        faulty = FaultyNetwork(network)
        faulty.fault_link(0, 1, FaultPlan(drop=1.0))
        faulty.uninstall()
        a, b = network.endpoint(0), network.endpoint(1)
        a.send(1, b"back to normal")
        assert b.recv(timeout=2)[1] == b"back to normal"
        network.close()


class TestDispatcherResilience:
    def test_dispatcher_survives_corrupt_message(self):
        """A corrupt *decoded message* is dropped; the space keeps serving."""
        from repro.runtime import Cluster
        from repro.stm import STM

        with Cluster(n_spaces=2, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            # inject garbage directly into space 1's inbox:
            cluster.space(0).endpoint.send(1, b"\xff\xffnot-a-message")
            # the dispatcher must shrug it off and still serve RPCs:
            chan = STM(cluster.space(0)).create_channel("resilient", home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            out.put(0, b"still alive")
            assert inp.get_consume(0).value == b"still alive"
            me.exit()
