"""Unit tests for the medium cost models and their paper calibration (§8.1)."""

import pytest

from repro.transport.media import (
    CAMERA_BANDWIDTH_MBPS,
    CLF_MTU,
    FRAME_INTERVAL_US,
    IMAGE_BYTES,
    MEDIA,
    MEMORY_CHANNEL,
    SHARED_MEMORY,
    UDP_LAN,
)


class TestPaperConstants:
    def test_image_bytes(self):
        assert IMAGE_BYTES == 230_400  # 320 x 240 x 3

    def test_camera_bandwidth(self):
        assert CAMERA_BANDWIDTH_MBPS == pytest.approx(6.912)

    def test_frame_interval(self):
        assert FRAME_INTERVAL_US == pytest.approx(33_333.33, rel=1e-4)

    def test_mtu(self):
        assert CLF_MTU == 8152


class TestCalibrationAnchors:
    """The published cells of Figs. 8-9 that the models must reproduce."""

    @pytest.mark.parametrize(
        "medium,expected",
        [(SHARED_MEMORY, 17.0), (MEMORY_CHANNEL, 19.0), (UDP_LAN, 227.0)],
    )
    def test_latency_at_8_bytes(self, medium, expected):
        assert medium.one_way_latency_us(8) == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize(
        "medium,expected",
        [(SHARED_MEMORY, 2.3), (MEMORY_CHANNEL, 2.3), (UDP_LAN, 0.13)],
    )
    def test_bandwidth_at_8_bytes(self, medium, expected):
        assert medium.max_bandwidth_mbps(8) == pytest.approx(expected, rel=0.05)


class TestModelShape:
    @pytest.mark.parametrize("medium", list(MEDIA.values()))
    def test_latency_monotone_in_size(self, medium):
        sizes = [8, 128, 1024, 4096, 8152]
        lats = [medium.one_way_latency_us(s) for s in sizes]
        assert lats == sorted(lats)

    @pytest.mark.parametrize("medium", list(MEDIA.values()))
    def test_bandwidth_monotone_in_packet_size(self, medium):
        sizes = [8, 128, 1024, 4096, 8152]
        bws = [medium.max_bandwidth_mbps(s) for s in sizes]
        assert bws == sorted(bws)

    @pytest.mark.parametrize("medium", list(MEDIA.values()))
    def test_bandwidth_never_exceeds_wire(self, medium):
        for s in [8, 1024, 8152]:
            assert medium.max_bandwidth_mbps(s) <= medium.wire_bandwidth_mbps + 1e-9

    def test_udp_much_slower_than_memory_channel(self):
        for s in [8, 1024, 8152]:
            assert (
                UDP_LAN.one_way_latency_us(s)
                > 3 * MEMORY_CHANNEL.one_way_latency_us(s)
            )

    def test_memory_channel_sustains_camera_rate(self):
        """§8: the platform must comfortably beat 6.912 MB/s; FDDI UDP not."""
        assert MEMORY_CHANNEL.max_bandwidth_mbps(CLF_MTU) > 5 * CAMERA_BANDWIDTH_MBPS
        assert UDP_LAN.max_bandwidth_mbps(CLF_MTU) < CAMERA_BANDWIDTH_MBPS


class TestMessageLatency:
    def test_single_packet_message(self):
        assert MEMORY_CHANNEL.message_latency_us(100) == pytest.approx(
            MEMORY_CHANNEL.one_way_latency_us(100)
        )

    def test_multi_packet_pipelines(self):
        """An image-sized message must beat 29 sequential one-way latencies."""
        n_packets = -(-IMAGE_BYTES // CLF_MTU)
        sequential = n_packets * MEMORY_CHANNEL.one_way_latency_us(CLF_MTU)
        pipelined = MEMORY_CHANNEL.message_latency_us(IMAGE_BYTES)
        assert pipelined < sequential
        # but it can't beat pure wire occupancy:
        assert pipelined > IMAGE_BYTES / MEMORY_CHANNEL.wire_bandwidth_mbps

    def test_exact_multiple_of_mtu(self):
        lat = MEMORY_CHANNEL.message_latency_us(2 * CLF_MTU)
        assert lat > MEMORY_CHANNEL.message_latency_us(CLF_MTU)

    def test_monotone_in_size(self):
        sizes = [1, CLF_MTU, CLF_MTU + 1, 3 * CLF_MTU, IMAGE_BYTES]
        lats = [MEMORY_CHANNEL.message_latency_us(s) for s in sizes]
        assert lats == sorted(lats)


class TestAckedStream:
    def test_ack_reduces_bandwidth(self):
        """Fig. 9's starred column is below the unacked column."""
        for medium in MEDIA.values():
            raw = medium.max_bandwidth_mbps(CLF_MTU)
            acked = medium.acked_stream_bandwidth_mbps(IMAGE_BYTES, IMAGE_BYTES)
            assert acked < raw
            assert acked > 0.5 * raw  # but only "somewhat lower" (paper)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MEMORY_CHANNEL.acked_stream_bandwidth_mbps(100, 0)
        with pytest.raises(ValueError):
            MEMORY_CHANNEL.max_bandwidth_mbps(0)
        with pytest.raises(ValueError):
            MEMORY_CHANNEL.one_way_latency_us(-1)
