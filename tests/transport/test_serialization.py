"""Unit tests for the tagged message codec."""

from dataclasses import dataclass

import pytest

from repro.errors import TransportError
from repro.runtime.messages import GcCollectMsg, RpcReply, RpcRequest
from repro.transport.serialization import (
    decode_message,
    encode_message,
    message_types,
    register_message,
)


class TestRoundtrip:
    def test_rpc_request(self):
        msg = RpcRequest(call_id=7, src_space=1, body={"op": "put"})
        out = decode_message(encode_message(msg))
        assert out == msg

    def test_rpc_reply_with_exception(self):
        msg = RpcReply(call_id=3, error=ValueError("boom"))
        out = decode_message(encode_message(msg))
        assert isinstance(out.error, ValueError)
        assert str(out.error) == "boom"

    def test_gc_collect_with_infinity(self):
        from repro.core.time import INFINITY

        msg = GcCollectMsg(epoch=2, horizon=INFINITY)
        out = decode_message(encode_message(msg))
        assert out.horizon is INFINITY  # singleton preserved across the wire


class TestRegistry:
    def test_registered_types_present(self):
        types = message_types()
        assert types[1] is RpcRequest
        assert types[2] is RpcReply

    def test_unregistered_type_rejected(self):
        @dataclass
        class NotRegistered:
            x: int = 0

        with pytest.raises(TransportError, match="unregistered"):
            encode_message(NotRegistered())

    def test_duplicate_tag_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_message(1)  # tag 1 is RpcRequest
            @dataclass
            class Clash:
                pass

    def test_reregistering_same_class_is_idempotent(self):
        register_message(1)(RpcRequest)  # no error

    def test_tag_range_checked(self):
        with pytest.raises(ValueError, match="16 bits"):

            @register_message(1 << 17)
            @dataclass
            class TooBig:
                pass


class TestDecodeErrors:
    def test_short_message(self):
        with pytest.raises(TransportError, match="too short"):
            decode_message(b"\x01")

    def test_unknown_tag(self):
        with pytest.raises(TransportError, match="unknown message tag"):
            decode_message(b"\xff\xff" + b"junk")

    def test_tag_body_mismatch(self):
        import pickle

        fake = (1).to_bytes(2, "little") + pickle.dumps({"not": "RpcRequest"})
        with pytest.raises(TransportError, match="wraps"):
            decode_message(fake)
