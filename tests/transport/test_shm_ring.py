"""Unit tests for the cross-process SPSC shared-memory rings."""

import threading

import pytest

from repro.errors import TransportError
from repro.transport.shm_ring import RING_HEADER_BYTES, ShmRing


@pytest.fixture
def ring():
    r = ShmRing.create("stm-test-ring", capacity=256)
    yield r
    r.close()
    r.unlink()


class TestBasics:
    def test_create_sizes(self, ring):
        assert ring.capacity == 256
        assert ring.free_bytes() == 256

    def test_write_read_roundtrip(self, ring):
        ring.write([b"hello ", b"world"], 11)
        assert ring.free_bytes() == 256 - 11
        assert bytes(ring.read(11)) == b"hello world"
        assert ring.free_bytes() == 256

    def test_gather_from_memoryviews(self, ring):
        payload = bytes(range(64))
        ring.write([memoryview(payload)[:32], memoryview(payload)[32:]], 64)
        assert bytes(ring.read(64)) == payload

    def test_wraparound(self, ring):
        # Fill-drain repeatedly so writes and reads straddle the ring end.
        for i in range(10):
            chunk = bytes([i]) * 100
            ring.write([chunk], 100)
            assert bytes(ring.read(100)) == chunk

    def test_attach_sees_creator_writes(self, ring):
        other = ShmRing.attach("stm-test-ring")
        try:
            ring.write([b"xyz"], 3)
            assert bytes(other.read(3)) == b"xyz"
        finally:
            other.close()

    def test_zero_invalid_capacity(self):
        with pytest.raises(ValueError):
            ShmRing.create("stm-test-bad", capacity=0)


class TestLimits:
    def test_over_capacity_message_rejected(self, ring):
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.write([bytes(300)], 300)

    def test_full_ring_times_out(self, ring):
        ring.write([bytes(200)], 200)
        with pytest.raises(TransportError, match="full"):
            ring.write([bytes(100)], 100, timeout=0.05)

    def test_blocked_writer_resumes_when_drained(self, ring):
        ring.write([bytes(200)], 200)
        drained = threading.Event()

        def drain():
            drained.wait(5.0)
            ring.read(200)

        t = threading.Thread(target=drain)
        t.start()
        drained.set()
        ring.write([b"a" * 100], 100, timeout=5.0)  # must not time out
        t.join(5.0)
        assert bytes(ring.read(100)) == b"a" * 100

    def test_read_claim_beyond_capacity_rejected(self, ring):
        with pytest.raises(TransportError, match="capacity"):
            ring.read(512)


class TestClose:
    def test_ops_after_close_raise_transport_error(self, ring):
        other = ShmRing.attach("stm-test-ring")
        other.close()
        with pytest.raises(TransportError, match="closed"):
            other.read(1)
        with pytest.raises(TransportError, match="closed"):
            other.write([b"x"], 1)
        with pytest.raises(TransportError, match="closed"):
            other.free_bytes()

    def test_close_is_idempotent(self):
        r = ShmRing.create("stm-test-idem", capacity=64)
        r.close()
        r.close()
        r.unlink()

    def test_header_reserved(self):
        r = ShmRing.create("stm-test-hdr", capacity=64)
        try:
            assert r._shm.size == RING_HEADER_BYTES + 64
        finally:
            r.close()
            r.unlink()
