"""Spawn-safety sweep: every wire message survives a real child process.

The process runtime (:mod:`repro.runtime.procs`) uses the ``spawn`` start
method, so everything that crosses an address-space boundary — every
``@register_message`` envelope, every RPC body it can carry, the
:class:`~repro.transport.serialization.Frame` zero-copy wrapper, and the
:data:`~repro.core.INFINITY` virtual-time sentinel — must pickle under a
*fresh* interpreter with none of the parent's incidental module state.
These tests round-trip the full message bestiary through an actual spawned
child (encode → child decodes and re-encodes → parent decodes) and check
the semantically load-bearing fields, not just "no exception".
"""

import multiprocessing

from repro.core import INFINITY, STM_LATEST_UNSEEN
from repro.runtime.messages import (
    AttachReq,
    CachePushMsg,
    ConsumeReq,
    CreateChannelReq,
    DestroyChannelReq,
    DetachReq,
    EndpointStatsReq,
    GcApplyReq,
    GcCollectMsg,
    GcSummaryReq,
    GetReq,
    LookupNameReq,
    PutReq,
    RegisterNameReq,
    RpcCancel,
    RpcReply,
    RpcRequest,
    ShutdownMsg,
    SpawnReq,
)
from repro.transport.serialization import (
    Frame,
    decode_message,
    encode_message,
    message_types,
)

def _sample_bodies() -> list:
    """One instance of every RPC body the envelopes can carry."""
    from repro.bench.pr6_procs import _spin  # module-level: spawn-picklable

    return [
        CreateChannelReq(name="spawn-safety", capacity=8, push=True),
        DestroyChannelReq(channel_id=7),
        AttachReq(channel_id=7, conn_id=3, is_input=True, visibility=INFINITY),
        DetachReq(channel_id=7, conn_id=3),
        PutReq(channel_id=7, conn_id=3, timestamp=42,
               payload=Frame(b"pixels" * 100), size=600, refcount=2),
        GetReq(channel_id=7, conn_id=3, request=STM_LATEST_UNSEEN,
               cache_ok=True),
        ConsumeReq(channel_id=7, conn_id=3, timestamp=42, until=True),
        RegisterNameReq(name="spawn-safety", handle=("opaque", 1)),
        LookupNameReq(name="spawn-safety", wait=True),
        SpawnReq(fn=_spin, args=(10,), kwargs={}, name="t",
                 virtual_time=INFINITY),
        GcSummaryReq(epoch=3),
        GcApplyReq(epoch=3, horizon=INFINITY),
        EndpointStatsReq(reset_frames=True),
    ]


def _sample_messages() -> list:
    """At least one instance of every registered wire tag."""
    samples = [RpcRequest(call_id=i, src_space=0, body=body)
               for i, body in enumerate(_sample_bodies())]
    samples += [
        RpcReply(call_id=1, value={"clf": {"messages_sent": 3}}),
        RpcReply(call_id=2, error=RuntimeError("remote boom")),
        RpcCancel(call_id=3),
        GcCollectMsg(epoch=9, horizon=17),
        GcCollectMsg(epoch=9, horizon=INFINITY),
        ShutdownMsg(reason="spawn-safety sweep"),
        CachePushMsg(channel_id=7, timestamp=42, payload=Frame(b"\x00" * 64),
                     size=64),
    ]
    return samples


def _echo_child(conn) -> None:
    """Child: decode each message blob and send back its re-encoding."""
    try:
        n = conn.recv()
        for _ in range(n):
            blob = conn.recv_bytes()
            msg = decode_message(blob)
            conn.send_bytes(bytes(encode_message(msg)))
        conn.send("ok")
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        conn.send(f"child failed: {exc!r}")
    finally:
        conn.close()


def _roundtrip_all(samples: list) -> list:
    ctx = multiprocessing.get_context("spawn")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_echo_child, args=(child,), daemon=True)
    proc.start()
    child.close()
    try:
        parent.send(len(samples))
        echoed = []
        for msg in samples:
            parent.send_bytes(bytes(encode_message(msg)))
            echoed.append(decode_message(parent.recv_bytes()))
        status = parent.recv()
        assert status == "ok", status
    finally:
        parent.close()
        proc.join(timeout=30)
        if proc.is_alive():  # pragma: no cover - hung child
            proc.kill()
            proc.join()
    assert proc.exitcode == 0
    return echoed


class TestSpawnSafety:
    def test_every_registered_tag_is_covered(self):
        tags = {type(m) for m in _sample_messages()}
        assert set(message_types().values()) <= tags

    def test_roundtrip_through_spawned_child(self):
        samples = _sample_messages()
        echoed = _roundtrip_all(samples)
        assert len(echoed) == len(samples)
        by_type: dict[type, list] = {}
        for msg in echoed:
            by_type.setdefault(type(msg), []).append(msg)
        assert set(by_type) == {type(m) for m in samples}

        # Load-bearing fields survive, including the INFINITY singleton.
        requests = by_type[RpcRequest]
        put = next(r.body for r in requests if isinstance(r.body, PutReq))
        assert bytes(put.payload.data) == b"pixels" * 100
        assert put.refcount == 2
        attach = next(r.body for r in requests if isinstance(r.body, AttachReq))
        assert attach.visibility is INFINITY
        from repro.bench.pr6_procs import _spin

        spawn = next(r.body for r in requests if isinstance(r.body, SpawnReq))
        assert spawn.virtual_time is INFINITY
        assert spawn.fn(10) == _spin(10)  # resolved back to the same callable
        get = next(r.body for r in requests if isinstance(r.body, GetReq))
        assert get.request is STM_LATEST_UNSEEN

        horizons = {m.horizon for m in by_type[GcCollectMsg]}
        assert 17 in horizons and INFINITY in horizons
        errors = [m.error for m in by_type[RpcReply] if m.error is not None]
        assert len(errors) == 1 and "remote boom" in str(errors[0])
        push = by_type[CachePushMsg][0]
        assert bytes(push.payload.data) == b"\x00" * 64

    def test_frame_roundtrips_large_payload_through_child(self):
        payload = bytes(range(256)) * 4096  # 1 MB
        msg = RpcRequest(
            call_id=0, src_space=0,
            body=PutReq(channel_id=1, conn_id=1, timestamp=0,
                        payload=Frame(payload), size=len(payload)),
        )
        echoed = _roundtrip_all([msg])[0]
        assert bytes(echoed.body.payload.data) == payload
