"""Unit tests for the in-process CLF network (reliable ordered transport)."""

import queue
import threading

import pytest

from repro.errors import TransportClosedError
from repro.transport.clf import ClfNetwork, ClusterTopology
from repro.transport.media import MEMORY_CHANNEL, SHARED_MEMORY, UDP_LAN


@pytest.fixture
def net():
    network = ClfNetwork.create(3)
    yield network
    network.close()


class TestTopology:
    def test_node_assignment(self):
        topo = ClusterTopology(n_spaces=4, spaces_per_node=2)
        assert [topo.node_of(i) for i in range(4)] == [0, 0, 1, 1]

    def test_intra_node_uses_shared_memory(self):
        topo = ClusterTopology(4, spaces_per_node=2)
        assert topo.medium(0, 1) is SHARED_MEMORY
        assert topo.medium(2, 3) is SHARED_MEMORY

    def test_inter_node_uses_configured_medium(self):
        topo = ClusterTopology(4, spaces_per_node=2, inter_node=UDP_LAN)
        assert topo.medium(0, 2) is UDP_LAN
        assert topo.medium(3, 0) is UDP_LAN

    def test_default_inter_node_is_memory_channel(self):
        topo = ClusterTopology(2)
        assert topo.medium(0, 1) is MEMORY_CHANNEL

    def test_bad_args(self):
        with pytest.raises(ValueError):
            ClusterTopology(0)
        with pytest.raises(ValueError):
            ClusterTopology(2, 0)
        with pytest.raises(ValueError):
            ClusterTopology(2).node_of(5)


class TestBasicDelivery:
    def test_send_recv(self, net):
        a, b = net.endpoint(0), net.endpoint(1)
        a.send(1, b"hello")
        src, data = b.recv(timeout=5)
        assert (src, data) == (0, b"hello")

    def test_large_message_fragments_and_reassembles(self, net):
        a, b = net.endpoint(0), net.endpoint(1)
        payload = bytes(range(256)) * 1200  # ~300 KB, ~38 packets
        a.send(1, payload)
        _, data = b.recv(timeout=5)
        assert data == payload
        assert a.stats.packets_sent > 30
        assert b.stats.messages_received == 1

    def test_self_send(self, net):
        a = net.endpoint(0)
        a.send(0, b"loopback")
        assert a.recv(timeout=5) == (0, b"loopback")

    def test_ordering_per_peer(self, net):
        a, b = net.endpoint(0), net.endpoint(1)
        for i in range(100):
            a.send(1, f"m{i}".encode())
        received = [b.recv(timeout=5)[1] for _ in range(100)]
        assert received == [f"m{i}".encode() for i in range(100)]

    def test_interleaved_sources_reassemble_independently(self, net):
        a, b, c = net.endpoint(0), net.endpoint(1), net.endpoint(2)
        big_a = b"A" * 50_000
        big_b = b"B" * 50_000
        # Send from both sources; fragments interleave in c's inbox.
        ta = threading.Thread(target=a.send, args=(2, big_a))
        tb = threading.Thread(target=b.send, args=(2, big_b))
        ta.start(); tb.start(); ta.join(); tb.join()
        got = {c.recv(timeout=5)[1][:1] for _ in range(2)}
        assert got == {b"A", b"B"}

    def test_recv_timeout(self, net):
        with pytest.raises(queue.Empty):
            net.endpoint(0).recv(timeout=0.05)


class TestConcurrentSenders:
    def test_many_threads_one_destination(self, net):
        dst = net.endpoint(2)
        n_threads, n_each = 6, 50

        def sender(space: int, tag: int):
            ep = net.endpoint(space)
            for i in range(n_each):
                ep.send(2, f"{tag}:{i}:".encode() + bytes(9000))

        threads = [
            threading.Thread(target=sender, args=(t % 2, t))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        messages = [dst.recv(timeout=10)[1] for _ in range(n_threads * n_each)]
        for t in threads:
            t.join()
        # per-tag FIFO: sequence numbers of each tag arrive in order
        seen: dict[bytes, int] = {}
        for msg in messages:
            tag, seq, _ = msg.split(b":", 2)
            assert seen.get(tag, -1) < int(seq)
            seen[tag] = int(seq)
        assert len(messages) == n_threads * n_each


class TestClose:
    def test_recv_raises_after_close(self, net):
        a = net.endpoint(0)
        a.close()
        with pytest.raises(TransportClosedError):
            a.recv(timeout=1)

    def test_send_after_close_rejected(self, net):
        a = net.endpoint(0)
        a.close()
        with pytest.raises(TransportClosedError):
            a.send(1, b"x")

    def test_close_wakes_blocked_receiver(self, net):
        a = net.endpoint(0)
        errors = []

        def blocked():
            try:
                a.recv()
            except TransportClosedError:
                errors.append("closed")

        t = threading.Thread(target=blocked)
        t.start()
        a.close()
        t.join(timeout=5)
        assert errors == ["closed"]

    def test_endpoint_out_of_range(self, net):
        with pytest.raises(ValueError):
            net.endpoint(99)


class TestStats:
    def test_counters(self, net):
        a, b = net.endpoint(0), net.endpoint(1)
        a.send(1, b"12345")
        b.recv(timeout=5)
        snap = a.stats.snapshot()
        assert snap["messages_sent"] == 1
        assert snap["bytes_sent"] == 5
        assert b.stats.snapshot()["messages_received"] == 1
        assert a.stats.per_peer_sent[1] == 1
