"""Tests transliterating the paper's code fragments (Figs. 6-7) via spd_*."""

import pytest

from repro.runtime import Cluster
from repro.stm import STM
from repro.stm.spd import (
    SPD_BLOCK,
    SPD_CONSUMED,
    SPD_DUPLICATE,
    SPD_EMPTY,
    SPD_FULL,
    SPD_INFINITY,
    SPD_LATEST_UNSEEN,
    SPD_NONBLOCK,
    SPD_OK,
    SPD_OLDEST,
    SPD_VISIBILITY,
    spd_attach_input_channel,
    spd_attach_output_channel,
    spd_await_tick,
    spd_channel_consume_item,
    spd_channel_consume_until_item,
    spd_channel_get_item,
    spd_channel_put_item,
    spd_detach_channel,
    spd_get_virtual_time,
    spd_init,
    spd_set_virtual_time,
)


@pytest.fixture
def cluster():
    with Cluster(n_spaces=1, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


@pytest.fixture
def stm(cluster, me):
    return STM(cluster.space(0))


class TestFig6Digitizer:
    def test_digitizer_fragment(self, stm, me):
        """Fig. 6, minus the camera: paced puts with frame-count timestamps."""
        video_frame_chan = stm.create_channel("video")
        ocon = spd_attach_output_channel(video_frame_chan)
        # 1 ms ticks for test speed; a generous tolerance so a loaded test
        # machine can't produce a spurious slippage exception.
        pacer = spd_init("TO_DIGITIZE", 1, tolerance_ms=5000)
        for frame_count in range(5):
            spd_await_tick(pacer)
            assert spd_set_virtual_time(frame_count) == SPD_OK
            frame_buf = f"frame-{frame_count}".encode()
            assert spd_channel_put_item(ocon, frame_count, frame_buf) == SPD_OK
        assert spd_detach_channel(ocon) == SPD_OK


class TestFig7Tracker:
    def test_tracker_fragment(self, stm, me, cluster):
        """Fig. 7, faithfully two-threaded: the tracker announces VT=+inf and
        attaches; a separate digitizer thread produces frames afterwards
        (attaching at INFINITY implicitly consumes everything already in
        the channel, §4.2 — so the tracker sees only *new* frames)."""
        import threading

        video_frame_chan = stm.create_channel("video")
        model_location_chan = stm.create_channel("locations")
        tracker_ready = threading.Event()

        def digitizer():
            from repro.runtime import current_thread

            tracker_ready.wait(10)
            out = spd_attach_output_channel(video_frame_chan)
            for ts in range(3):
                current_thread().set_virtual_time(ts)
                assert spd_channel_put_item(out, ts, b"pixels") == SPD_OK

        # Spawn while this thread's visibility is still 0 (child VT rule).
        digitizer_thread = cluster.space(0).spawn(digitizer, virtual_time=0)
        # -- the tracker of Fig. 7 (this thread) --
        assert spd_set_virtual_time(SPD_INFINITY) == SPD_OK
        icon = spd_attach_input_channel(video_frame_chan)
        ocon = spd_attach_output_channel(model_location_chan)
        tracker_ready.set()
        digitizer_thread.join(10)
        code, frame_buf, tk, _rng = spd_channel_get_item(icon, SPD_LATEST_UNSEEN)
        assert code == SPD_OK and frame_buf == b"pixels" and tk == 2
        location_buf = b"location"
        assert spd_channel_put_item(ocon, tk, location_buf) == SPD_OK
        assert spd_channel_consume_item(icon, tk) == SPD_OK

    def test_get_virtual_time(self, me):
        assert spd_get_virtual_time() == 0
        spd_set_virtual_time(SPD_INFINITY)
        assert spd_get_virtual_time() is SPD_INFINITY


class TestErrorCodes:
    def test_empty_nonblocking(self, stm):
        chan = stm.create_channel()
        icon = spd_attach_input_channel(chan)
        code, buf, ts, rng = spd_channel_get_item(icon, SPD_OLDEST, SPD_NONBLOCK)
        assert code == SPD_EMPTY and buf is None and ts is None

    def test_full_nonblocking(self, stm, me):
        chan = stm.create_channel(capacity=1)
        ocon = spd_attach_output_channel(chan)
        assert spd_channel_put_item(ocon, 0, b"a") == SPD_OK
        assert spd_channel_put_item(ocon, 1, b"b", SPD_NONBLOCK) == SPD_FULL

    def test_duplicate(self, stm, me):
        chan = stm.create_channel()
        ocon = spd_attach_output_channel(chan)
        spd_channel_put_item(ocon, 0, b"a")
        assert spd_channel_put_item(ocon, 0, b"b") == SPD_DUPLICATE

    def test_visibility_code(self, stm, me):
        chan = stm.create_channel()
        ocon = spd_attach_output_channel(chan)
        me.set_virtual_time(5)
        assert spd_channel_put_item(ocon, 2, b"late") == SPD_VISIBILITY

    def test_consumed_code_with_timestamp_range(self, stm, me):
        chan = stm.create_channel()
        ocon = spd_attach_output_channel(chan)
        icon = spd_attach_input_channel(chan)
        for ts in range(3):
            me.set_virtual_time(ts)
            spd_channel_put_item(ocon, ts, b"x")
        assert spd_channel_consume_until_item(icon, 1) == SPD_OK
        code, _, _, rng = spd_channel_get_item(icon, 1)
        assert code == SPD_CONSUMED
        assert rng == (None, 2)  # the paper's neighbour report

    def test_bad_virtual_time_code(self, me):
        me.set_virtual_time(10)
        assert spd_set_virtual_time(3) != SPD_OK

    def test_detach_twice_ok(self, stm):
        chan = stm.create_channel()
        icon = spd_attach_input_channel(chan)
        assert spd_detach_channel(icon) == SPD_OK
        assert spd_detach_channel(icon) == SPD_OK  # facade detach idempotent
