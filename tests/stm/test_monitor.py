"""Tests for channel probes and the space-time view (paper §6 monitoring)."""

import pytest

from repro.core import INFINITY
from repro.errors import NoSuchChannelError
from repro.runtime import Cluster
from repro.stm import STM
from repro.stm.monitor import ChannelProbe, SpaceTimeView


@pytest.fixture
def cluster():
    with Cluster(n_spaces=2, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


class TestChannelProbe:
    def test_snapshot_counts(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel("probed", home=1)
        out, inp = chan.attach_output(), chan.attach_input()
        for ts in range(4):
            out.put(ts, bytes(10))
        inp.get(0)
        inp.consume(0)
        snap = ChannelProbe(cluster, chan.channel_id).snapshot()
        assert snap.name == "probed"
        assert snap.home_space == 1
        assert snap.occupancy == 4
        assert snap.stored_bytes >= 40
        assert snap.total_puts == 4
        assert snap.total_gets == 1
        assert snap.total_consumes == 1
        assert snap.n_inputs == 1 and snap.n_outputs == 1

    def test_snapshot_states_per_connection(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=0)
        out, inp = chan.attach_output(), chan.attach_input()
        for ts in range(3):
            out.put(ts, ts)
        inp.get(1)  # OPEN
        inp.consume(0)  # CONSUMED
        snap = ChannelProbe(cluster, chan.channel_id).snapshot()
        (states,) = snap.states.values()
        assert states == {0: "c", 1: "O", 2: "u"}

    def test_probe_does_not_pin_gc(self, cluster, me):
        """A probe is not a connection: GC advances as if it weren't there."""
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=0)
        out, inp = chan.attach_output(), chan.attach_input()
        out.put(0, b"x")
        probe = ChannelProbe(cluster, chan.channel_id)
        assert probe.snapshot().occupancy == 1
        inp.get_consume(0)
        me.set_virtual_time(INFINITY)
        cluster.gc_once()
        assert probe.snapshot().occupancy == 0

    def test_unknown_channel_rejected(self, cluster):
        with pytest.raises(NoSuchChannelError):
            ChannelProbe(cluster, 424242)

    def test_summary_text(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel("summarized", home=0)
        out = chan.attach_output()
        out.put(0, b"x")
        text = ChannelProbe(cluster, chan.channel_id).snapshot().summary()
        assert "summarized" in text
        assert "1 items" in text

    def test_watch_collects_samples(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=0)
        probe = ChannelProbe(cluster, chan.channel_id)
        samples = probe.watch(3, interval_s=0.001)
        assert len(samples) == 3


class TestSpaceTimeView:
    def test_render_shows_channels_and_states(self, cluster, me):
        stm = STM(cluster.space(0))
        video = stm.create_channel("video", home=0)
        tracks = stm.create_channel("tracks", home=1)
        v_out, v_in = video.attach_output(), video.attach_input()
        t_out = tracks.attach_output()
        for ts in range(3):
            v_out.put(ts, bytes(8))
        item = v_in.get(1)
        t_out.put(1, "track-1")
        v_in.consume(0)
        text = SpaceTimeView(cluster).render()
        assert "video" in text and "tracks" in text
        assert "O" in text  # the open frame
        assert "c" in text  # the consumed frame
        lines = text.splitlines()
        assert any("-" in line for line in lines)  # absent cells

    def test_render_caps_columns(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel("wide", home=0)
        out = chan.attach_output()
        for ts in range(40):
            out.put(ts, ts)
        text = SpaceTimeView(cluster).render(max_columns=5)
        header = text.splitlines()[1]
        assert "39" in header  # keeps the newest columns
        assert " 0" not in header.split("channel")[-1][:20]

    def test_empty_cluster_renders(self, cluster):
        text = SpaceTimeView(cluster).render()
        assert "space-time table" in text
