"""Tests for ticker channels — the §6 alternative VT management, realized."""

import pytest

from repro.core import INFINITY, STM_OLDEST_UNSEEN
from repro.runtime import Cluster
from repro.stm import STM
from repro.stm.ticker import Ticker


@pytest.fixture
def cluster():
    with Cluster(n_spaces=1, gc_period=0.02) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


class TestTicker:
    def test_produces_count_ticks_then_sentinel(self, cluster, me):
        stm = STM(cluster.space(0))
        ticker = Ticker.start(stm, "t1", period_s=0.001, count=5)
        inp = ticker.channel.attach_input()
        seen = []
        while True:
            item = inp.get(STM_OLDEST_UNSEEN)
            inp.consume(item.timestamp)
            if item.value is None:
                break
            seen.append((item.timestamp, item.value))
        ticker.join(10)
        inp.detach()
        assert seen == [(t, t) for t in range(5)]

    def test_source_thread_never_manages_vt(self, cluster, me):
        """The §6 demonstration: a producer whose ONLY time source is the
        ticker channel — it never calls set_virtual_time, yet puts legally
        timestamped items (inherited from the open tick)."""
        stm = STM(cluster.space(0))
        ticker = Ticker.start(stm, "t2", period_s=0.001, count=4)
        output = stm.create_channel("t2.out")

        produced = []

        def source():
            from repro.runtime import current_thread

            me_inner = current_thread()  # VT stays at INFINITY throughout
            me_inner.set_virtual_time(INFINITY)
            ticks = ticker.channel.attach_input()
            out = output.attach_output()
            while True:
                tick = ticks.get(STM_OLDEST_UNSEEN)
                if tick.value is None:
                    ticks.consume(tick.timestamp)
                    break
                out.put(tick.timestamp, f"item-{tick.timestamp}")
                produced.append(tick.timestamp)
                ticks.consume(tick.timestamp)
            assert me_inner.virtual_time is INFINITY  # untouched, as §6 wants
            ticks.detach()
            out.detach()

        handle = cluster.space(0).spawn(source, virtual_time=0)
        handle.join(15)
        ticker.join(10)
        assert produced == [0, 1, 2, 3]

    def test_refcounted_ticks_reclaimed_eagerly(self, cluster, me):
        stm = STM(cluster.space(0))
        ticker = Ticker.start(stm, "t3", period_s=0.001, count=4, refcount=1)
        inp = ticker.channel.attach_input()
        while True:
            item = inp.get(STM_OLDEST_UNSEEN)
            inp.consume(item.timestamp)
            if item.value is None:
                break
        ticker.join(10)
        kernel = cluster.space(0)._channel(ticker.channel.channel_id).kernel
        assert kernel.total_refcount_collected == 4
        inp.detach()

    def test_validation(self, cluster, me):
        stm = STM(cluster.space(0))
        with pytest.raises(ValueError):
            Ticker.start(stm, "bad", period_s=0.0, count=3)
        with pytest.raises(ValueError):
            Ticker.start(stm, "bad2", period_s=0.1, count=0)
