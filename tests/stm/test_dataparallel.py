"""Tests for the replicated-stage helper (paper §4.1 / companion [12])."""

import pytest

from repro.core import INFINITY, STM_OLDEST
from repro.runtime import Cluster
from repro.stm import STM
from repro.stm.dataparallel import run_data_parallel


@pytest.fixture
def cluster():
    with Cluster(n_spaces=2, gc_period=0.02) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


def produce(me, chan, n, sentinel=True):
    """Pre-produce items while KEEPING visibility at 0 (§4.2): raising the
    producer's virtual time before any consumer attaches would make every
    item unreachable garbage — exactly what the paper's rules prevent."""
    out = chan.attach_output()
    for ts in range(n):
        out.put(ts, ts * 2)  # legal: ts >= visibility (0)
    if sentinel:
        out.put(n, None)
    out.detach()


class TestRunDataParallel:
    def test_all_items_processed_once(self, cluster, me):
        stm = STM(cluster.space(0))
        src = stm.create_channel("dp.in")
        dst = stm.create_channel("dp.out")
        produce(me, src, 12)
        result = run_data_parallel(
            cluster, src, dst, lambda ts, v: v + 1, n_items=12, n_workers=3,
        )
        assert result.items_processed == 12
        assert result.per_worker == {0: 4, 1: 4, 2: 4}
        assert sorted(result.completion_order) == list(range(12))
        assert not result.errors

    def test_results_reassemble_in_order(self, cluster, me):
        stm = STM(cluster.space(0))
        src = stm.create_channel("dp2.in")
        dst = stm.create_channel("dp2.out")
        produce(me, src, 9)
        run_data_parallel(
            cluster, src, dst, lambda ts, v: (ts, v), n_items=9, n_workers=2,
            sentinel_ts=9,
        )
        inp = dst.attach_input()
        for ts in range(9):
            item = inp.get(ts)  # STM reassembles: blocking per-column gets
            assert item.value == (ts, ts * 2)
            inp.consume(ts)
        assert inp.get(9).value is None  # forwarded sentinel
        inp.consume(9)
        inp.detach()

    def test_worker_errors_recorded_not_raised(self, cluster, me):
        stm = STM(cluster.space(0))
        src = stm.create_channel("dp3.in")
        dst = stm.create_channel("dp3.out")
        produce(me, src, 6)

        def sometimes_fails(ts, value):
            if ts == 3:
                raise RuntimeError("boom")
            return value

        result = run_data_parallel(
            cluster, src, dst, sometimes_fails, n_items=6, n_workers=2,
        )
        assert result.items_processed == 6  # the failure didn't stop the rest
        assert len(result.errors) == 1
        assert result.errors[0][0] == 3

    def test_workers_on_remote_space(self, cluster, me):
        stm = STM(cluster.space(0))
        src = stm.create_channel("dp4.in", home=0)
        dst = stm.create_channel("dp4.out", home=0)
        produce(me, src, 8)
        result = run_data_parallel(
            cluster, src, dst, lambda ts, v: v, n_items=8, n_workers=2,
            worker_space=1,
        )
        assert result.items_processed == 8

    def test_gc_advances_behind_workers(self, cluster, me):
        """consume_until releases sibling columns: the input channel drains."""
        import time

        stm = STM(cluster.space(0))
        src = stm.create_channel("dp5.in")
        dst = stm.create_channel("dp5.out")
        produce(me, src, 10)
        run_data_parallel(
            cluster, src, dst, lambda ts, v: v, n_items=10, n_workers=3,
        )
        # workers have attached and finished: this thread may now release
        # its own claim on the timestamp axis (§4.2 discipline)
        me.set_virtual_time(INFINITY)
        deadline = time.monotonic() + 5
        kernel = cluster.space(0)._channel(src.channel_id).kernel
        while len(kernel.timestamps()) > 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert len(kernel.timestamps()) <= 1  # at most the sentinel survives

    def test_validation(self, cluster, me):
        stm = STM(cluster.space(0))
        src = stm.create_channel("dp6.in")
        dst = stm.create_channel("dp6.out")
        with pytest.raises(ValueError):
            run_data_parallel(cluster, src, dst, lambda t, v: v, 5, n_workers=0)
        with pytest.raises(ValueError):
            run_data_parallel(cluster, src, dst, lambda t, v: v, -1)
