"""Unit tests for the STM facade: channels, connections, copy semantics."""

import numpy as np
import pytest

from repro.core import (
    CopyPolicy,
    INFINITY,
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
)
from repro.errors import (
    AlreadyConsumedError,
    ChannelEmptyError,
    ConnectionClosedError,
    DuplicateTimestampError,
    StampedeError,
    VisibilityError,
)
from repro.runtime import Cluster
from repro.stm import STM


@pytest.fixture
def cluster():
    with Cluster(n_spaces=2, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


@pytest.fixture
def stm(cluster, me):
    return STM(cluster.space(0))


class TestChannelLifecycle:
    def test_create_and_lookup(self, stm):
        chan = stm.create_channel("c1")
        assert stm.lookup("c1").channel_id == chan.channel_id

    def test_anonymous_channel(self, stm):
        chan = stm.create_channel()
        assert chan.name is None

    def test_connection_context_manager(self, stm):
        chan = stm.create_channel()
        with chan.attach_output() as out:
            out.put(0, b"x")
        assert out.closed
        with pytest.raises(ConnectionClosedError):
            out.put(1, b"y")

    def test_detach_idempotent(self, stm):
        chan = stm.create_channel()
        inp = chan.attach_input()
        inp.detach()
        inp.detach()


class TestPutGetConsume:
    def test_roundtrip(self, stm):
        chan = stm.create_channel()
        out, inp = chan.attach_output(), chan.attach_input()
        out.put(0, {"frame": 1})
        item = inp.get(0)
        assert item.value == {"frame": 1}
        assert item.timestamp == 0
        assert item.size > 0
        inp.consume(0)

    def test_get_consume_convenience(self, stm):
        chan = stm.create_channel()
        out, inp = chan.attach_output(), chan.attach_input()
        out.put(0, "a")
        item = inp.get_consume(STM_OLDEST)
        assert item.value == "a"
        with pytest.raises(AlreadyConsumedError):
            inp.get(0)

    def test_nonblocking_miss(self, stm):
        chan = stm.create_channel()
        inp = chan.attach_input()
        with pytest.raises(ChannelEmptyError):
            inp.get(STM_LATEST, block=False)

    def test_timestamp_range_on_specific_miss(self, stm, me):
        chan = stm.create_channel()
        out, inp = chan.attach_output(), chan.attach_input()
        out.put(1, "a")
        me.set_virtual_time(8)
        out.put(8, "b")
        from repro.errors import NoSuchItemError

        try:
            inp.get(4, block=False)
            raise AssertionError("expected a miss")
        except ChannelEmptyError as exc:
            assert "(1, 8)" in str(exc)

    def test_duplicate_put_raises(self, stm):
        chan = stm.create_channel()
        out = chan.attach_output()
        out.put(0, "a")
        with pytest.raises(DuplicateTimestampError):
            out.put(0, "b")


class TestCopySemantics:
    def test_put_copies_in(self, stm):
        """§4.1: the producer may immediately reuse its buffer."""
        chan = stm.create_channel()
        out, inp = chan.attach_output(), chan.attach_input()
        buf = {"pixels": [1, 2, 3]}
        out.put(0, buf)
        buf["pixels"].append(999)  # reuse/mutate the producer's buffer
        assert inp.get(0).value == {"pixels": [1, 2, 3]}

    def test_get_copies_out(self, stm):
        """§4.1: consumers may mutate their copies independently."""
        chan = stm.create_channel()
        out, inp = chan.attach_output(), chan.attach_input()
        out.put(0, [1, 2])
        a = inp.get(0).value
        a.append(3)
        b = inp.get(0).value  # re-get of the open item
        assert b == [1, 2]

    def test_numpy_frames_roundtrip(self, stm):
        chan = stm.create_channel()
        out, inp = chan.attach_output(), chan.attach_input()
        frame = np.arange(24, dtype=np.uint8).reshape(2, 4, 3)
        out.put(0, frame)
        got = inp.get(0).value
        np.testing.assert_array_equal(got, frame)
        got[0, 0, 0] = 255
        assert frame[0, 0, 0] == 0

    def test_reference_policy_shares_object(self, stm):
        chan = stm.create_channel(copy_policy=CopyPolicy.REFERENCE)
        out, inp = chan.attach_output(), chan.attach_input()
        obj = {"shared": True}
        out.put(0, obj)
        assert inp.get(0).value is obj

    def test_reference_policy_rejected_for_remote_home(self, stm):
        with pytest.raises(StampedeError):
            stm.create_channel(home=1, copy_policy=CopyPolicy.REFERENCE)

    def test_deepcopy_policy(self, stm):
        chan = stm.create_channel(copy_policy=CopyPolicy.DEEPCOPY)
        out, inp = chan.attach_output(), chan.attach_input()
        obj = {"n": [1]}
        out.put(0, obj)
        obj["n"].append(2)
        assert inp.get(0).value == {"n": [1]}


class TestVisibilityIntegration:
    def test_put_above_vt_only(self, stm, me):
        chan = stm.create_channel()
        out = chan.attach_output()
        me.set_virtual_time(5)
        with pytest.raises(VisibilityError):
            out.put(4, "late")
        out.put(5, "ok")

    def test_inherited_timestamp_pattern(self, stm, me, cluster):
        """Fig. 7: get opens an item, licensing a put at its timestamp."""
        frames = stm.create_channel()
        tracks = stm.create_channel()
        f_out = frames.attach_output()
        me.set_virtual_time(3)
        f_out.put(3, "frame3")
        # Attach while visibility is still 3 — attaching after jumping to
        # INFINITY would implicitly consume every existing frame (§4.2).
        f_in = frames.attach_input()
        t_out = tracks.attach_output()
        me.set_virtual_time(INFINITY)
        # Before the get, visibility is INFINITY: no put possible.
        with pytest.raises(VisibilityError):
            t_out.put(3, "track3")
        item = f_in.get(STM_LATEST)
        t_out.put(item.timestamp, "track3")  # inheriting is now legal
        f_in.consume(item.timestamp)
        with pytest.raises(VisibilityError):
            t_out.put(3, "too-late")  # consumed: licence expired

    def test_attach_consumes_below_visibility(self, stm, me):
        chan = stm.create_channel()
        out = chan.attach_output()
        for ts in range(4):
            out.put(ts, ts)  # all legal: ts >= visibility (0)
        me.set_virtual_time(2)
        inp = chan.attach_input()  # visibility 2: items 0, 1 invisible
        assert inp.get(STM_OLDEST).timestamp == 2
        with pytest.raises(AlreadyConsumedError):
            inp.get(1)

    def test_consume_until_closes_open_items(self, stm, me):
        chan = stm.create_channel()
        out, inp = chan.attach_output(), chan.attach_input()
        for ts in range(3):
            me.set_virtual_time(ts)
            out.put(ts, ts)
        me.set_virtual_time(INFINITY)
        inp.get(0)
        inp.get(2)
        assert me.visibility() == 0
        inp.consume_until(1)
        assert me.visibility() == 2  # 0 closed, 2 still open
        inp.consume(2)
        assert me.visibility() is INFINITY


class TestCrossSpaceFacade:
    def test_remote_channel_via_facade(self, cluster, me):
        stm0 = STM(cluster.space(0))
        chan = stm0.create_channel("x", home=1)
        out, inp = chan.attach_output(), chan.attach_input()
        out.put(0, np.zeros(1000, dtype=np.uint8))
        item = inp.get(STM_LATEST_UNSEEN)
        assert item.value.shape == (1000,)
        inp.consume(item.timestamp)

    def test_lookup_from_other_space(self, cluster, me):
        STM(cluster.space(0)).create_channel("shared", home=0)
        chan = STM(cluster.space(1)).lookup("shared")
        assert chan.handle.home_space == 0


class TestMultipleConnectionsPerThread:
    """§4.1/§6: 'a thread may have multiple connections to the same channel'
    — e.g. a data connection plus a monitoring connection."""

    def test_two_input_connections_independent_views(self, stm, me):
        chan = stm.create_channel()
        out = chan.attach_output()
        data_conn = chan.attach_input()
        monitor_conn = chan.attach_input()  # the §6 monitoring connection
        for ts in range(3):
            out.put(ts, ts)
        # the data connection consumes as it processes:
        item = data_conn.get(STM_OLDEST)
        data_conn.consume(item.timestamp)
        # the monitor still sees everything, including the consumed column:
        assert monitor_conn.get(0).value == 0
        assert monitor_conn.get(STM_LATEST).timestamp == 2
        # LATEST_UNSEEN state is per connection:
        assert data_conn.get(STM_LATEST_UNSEEN).timestamp == 2
        monitor_conn.consume_until(2)
        data_conn.consume_until(2)

    def test_two_output_connections_same_thread(self, stm, me):
        chan = stm.create_channel()
        out_a = chan.attach_output()
        out_b = chan.attach_output()
        out_a.put(0, "from-a")
        out_b.put(1, "from-b")
        inp = chan.attach_input()
        assert inp.get(0).value == "from-a"
        assert inp.get(1).value == "from-b"

    def test_detaching_one_keeps_the_other(self, stm, me):
        chan = stm.create_channel()
        out = chan.attach_output()
        first = chan.attach_input()
        second = chan.attach_input()
        first.detach()
        out.put(0, "still-flowing")
        assert second.get(0).value == "still-flowing"
        second.consume(0)


class TestHandlesThroughChannels:
    def test_channel_handle_passed_as_item(self, stm, cluster, me):
        """§4.1: 'an application can still pass a datum by reference — it
        merely passes a reference to the object through STM.'  Channel
        handles are such references: dynamic channel discovery without the
        name registry."""
        directory = stm.create_channel("directory")
        hidden = stm.create_channel()  # anonymous: only reachable by handle
        h_out = hidden.attach_output()
        h_out.put(0, "treasure")

        d_out = directory.attach_output()
        d_out.put(0, hidden.handle)  # the reference travels through STM

        received = {}

        def finder():
            stm1 = STM(cluster.space(1))
            d_in = stm1.lookup("directory").attach_input()
            item = d_in.get(0)
            found = stm1.channel(item.value)  # wrap the received handle
            f_in = found.attach_input()
            received["value"] = f_in.get(0).value
            f_in.consume(0)
            f_in.detach()
            d_in.consume(0)
            d_in.detach()

        cluster.space(1).spawn(finder, virtual_time=0).join(15)
        assert received["value"] == "treasure"
