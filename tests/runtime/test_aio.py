"""Unit tests of the asyncio runtime driver (AioEvent, AioAddressSpace,
AioCluster, and the async STM facade).

Cross-runtime *semantics* live in tests/conformance; this file covers the
asyncio-only machinery: the dual-sided event, task identity binding, crash
propagation through ajoin, async context-manager attachments, and
thread/task interop on one cluster.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core import INFINITY, STM_OLDEST
from repro.errors import StampedeError
from repro.runtime.aio import AioCluster, AioEvent
from repro.runtime.threads import current_thread
from repro.stm.aio import AioSTM


def run(coro):
    return asyncio.run(coro)


class TestAioEvent:
    def test_set_on_loop_wakes_async_waiter(self):
        async def main():
            event = AioEvent(asyncio.get_running_loop())

            async def setter():
                event.set()

            waiter = asyncio.create_task(event.wait_async(5.0))
            await setter()
            assert await waiter is True
            assert event.is_set()

        run(main())

    def test_set_from_foreign_thread_wakes_async_waiter(self):
        """The GC daemon / dispatcher path: set() off-loop must wake an
        awaiting task via call_soon_threadsafe."""

        async def main():
            event = AioEvent(asyncio.get_running_loop())
            threading.Timer(0.01, event.set).start()
            assert await event.wait_async(5.0) is True

        run(main())

    def test_sync_wait_sees_set_from_loop(self):
        async def main():
            event = AioEvent(asyncio.get_running_loop())
            seen = {}

            def blocker():
                seen["woke"] = event.wait(5.0)

            thread = threading.Thread(target=blocker)
            thread.start()
            event.set()
            await asyncio.get_running_loop().run_in_executor(
                None, thread.join
            )
            assert seen["woke"] is True

        run(main())

    def test_wait_async_timeout_returns_false(self):
        async def main():
            event = AioEvent(asyncio.get_running_loop())
            assert await event.wait_async(0.01) is False

        run(main())

    def test_threading_side_is_authoritative_on_timeout_race(self):
        """A completion that lands on the threading side but whose asyncio
        mirror has not run yet must still be honoured."""

        async def main():
            event = AioEvent(asyncio.get_running_loop())
            event._tevent.set()  # as if a foreign thread just set it
            assert await event.wait_async(0.0) is True

        run(main())


class TestSpawnAndIdentity:
    def test_spawn_task_binds_stampede_identity(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                names = []

                async def body():
                    names.append(current_thread().name)

                t1 = space.spawn_task(body, name="one")
                t2 = space.spawn_task(body, name="two")
                await space.ajoin(t1, timeout=10.0)
                await space.ajoin(t2, timeout=10.0)
                assert sorted(names) == ["one", "two"]
                # the driver itself is not bound
                assert current_thread() is None

        run(main())

    def test_concurrent_tasks_have_independent_identities(self):
        """Tasks interleave on one OS thread; the contextvar binding must
        never leak across an await."""

        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                observed = {}

                async def body(key):
                    me = current_thread()
                    await asyncio.sleep(0)   # force an interleave
                    observed[key] = current_thread() is me

                tasks = [
                    space.spawn_task(body, (k,), name=f"task-{k}")
                    for k in range(4)
                ]
                for t in tasks:
                    await space.ajoin(t, timeout=10.0)
                assert all(observed.values())

        run(main())

    def test_child_inherits_parent_visibility(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task(virtual_time=7)
                vts = []

                async def child():
                    vts.append(current_thread().virtual_time)

                task = space.spawn_task(child)
                await space.ajoin(task, timeout=10.0)
                me.exit()
                assert vts == [7]

        run(main())

    def test_duplicate_task_name_rejected(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)

                async def body():
                    pass

                t = space.spawn_task(body, name="dup")
                with pytest.raises(StampedeError):
                    space.spawn_task(body, name="dup")
                await space.ajoin(t, timeout=10.0)

        run(main())

    def test_ajoin_propagates_crash(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)

                async def doomed():
                    raise ValueError("task exploded")

                task = space.spawn_task(doomed)
                with pytest.raises(ValueError, match="task exploded"):
                    await space.ajoin(task, timeout=10.0)

        run(main())

    def test_ajoin_times_out_on_stuck_task(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                release = asyncio.Event()

                async def stuck():
                    await release.wait()

                task = space.spawn_task(stuck)
                with pytest.raises(TimeoutError):
                    await space.ajoin(task, timeout=0.05)
                release.set()
                await space.ajoin(task, timeout=10.0)

        run(main())


class TestAsyncFacade:
    def test_async_with_attach(self):
        """TUTORIAL spelling: ``async with chan.attach_output() as out``."""

        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task()
                stm = AioSTM(space)
                chan = await stm.create_channel("aio.ctx")
                async with chan.attach_output() as out:
                    await out.put(0, b"frame")
                    assert not out.closed
                assert out.closed
                async with chan.attach_input() as inp:
                    item = await inp.get(STM_OLDEST)
                    assert (item.timestamp, item.value) == (0, b"frame")
                    await inp.consume(0)
                assert inp.closed
                me.exit()

        run(main())

    def test_lookup_wait_woken_by_later_create(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task()
                stm = AioSTM(space)

                async def late_creator():
                    await asyncio.sleep(0.01)
                    await stm.create_channel("aio.late", home=0)

                creator = asyncio.create_task(late_creator())
                chan = await stm.lookup("aio.late", wait=True, timeout=10.0)
                assert chan.name == "aio.late"
                await creator
                me.exit()

        run(main())

    def test_lookup_wait_timeout(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task()
                stm = AioSTM(space)
                with pytest.raises(TimeoutError):
                    await stm.lookup("aio.never", wait=True, timeout=0.05)
                me.exit()

        run(main())

    def test_get_timeout_withdraws_waiter(self):
        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task()
                stm = AioSTM(space)
                chan = await stm.create_channel()
                inp = await chan.attach_input()
                out = await chan.attach_output()
                with pytest.raises(TimeoutError):
                    await inp.get(5, timeout=0.05)
                # The parked waiter must be gone: a later put at another
                # timestamp should not complete (or crash into) it.
                await out.put(6, "v6")
                item = await inp.get(6)
                assert item.value == "v6"
                await inp.detach()
                await out.detach()
                me.exit()

        run(main())

    def test_remote_space_ops_and_gc(self):
        """Two spaces: puts/gets traverse the dispatcher from a task, and
        an explicit agc_once advances the horizon."""

        async def main():
            async with AioCluster(n_spaces=2, gc_period=None) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task(virtual_time=0)
                stm = AioSTM(space)
                chan = await stm.create_channel("aio.remote", home=1)
                out = await chan.attach_output()
                inp = await chan.attach_input()
                await out.put(0, b"abc")
                item = await inp.get(0)
                assert item.value == b"abc"
                await inp.consume(0)
                me.set_virtual_time(INFINITY)
                horizon = await cluster.agc_once()
                assert horizon is INFINITY
                await inp.detach()
                await out.detach()
                me.exit()

        run(main())


class TestThreadTaskInterop:
    def test_os_thread_and_task_share_a_channel(self):
        """A synchronous producer on a spawned OS thread feeds an awaiting
        task — the AioEvent's dual nature end-to-end."""

        async def main():
            async with AioCluster(n_spaces=1, gc_period=None) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task()
                stm = AioSTM(space)
                chan = await stm.create_channel("interop")
                inp = await chan.attach_input()

                def producer():
                    from repro.stm import STM

                    sync_chan = STM(space).lookup("interop")
                    out = sync_chan.attach_output()
                    out.put(0, "from-thread")
                    out.detach()

                thread = space.spawn(producer, (), virtual_time=0)
                item = await inp.get(0)   # parks as a task, woken by thread
                assert item.value == "from-thread"
                await inp.consume(0)
                await space.ajoin(thread, timeout=10.0)
                await inp.detach()
                me.exit()

        run(main())

    def test_periodic_gc_task_drains_bounded_put(self):
        """The asyncio GC daemon must reclaim consumed-unknown-refcount
        items and wake a parked bounded put without any manual gc call."""

        async def main():
            async with AioCluster(n_spaces=1, gc_period=0.01) as cluster:
                space = cluster.space(0)
                me = space.adopt_current_task(virtual_time=0)
                stm = AioSTM(space)
                chan = await stm.create_channel(capacity=1)
                out = await chan.attach_output()
                inp = await chan.attach_input()
                await out.put(0, "v0")
                item = await inp.get(0)
                assert item.value == "v0"
                await inp.consume(0)
                me.set_virtual_time(1)
                # capacity=1 and ts=0 consumed: only a GC round (horizon 1)
                # reclaims the slot and completes this parked put.
                await out.put(1, "v1", timeout=10.0)
                await inp.get_consume(1)
                await inp.detach()
                await out.detach()
                me.exit()

        run(main())
