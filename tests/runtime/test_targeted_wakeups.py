"""Stress tests for the targeted-wakeup waiting machinery.

The runtime completes blocked operations *from the thread that changed
channel state* and wakes exactly the threads whose operations finished
(separate put-waiter and get-waiter sets per channel, keyed by block
reason) instead of ``notify_all`` on a per-channel condition.  These tests
hammer the scheme where it is easiest to lose a wakeup: wildcard gets
(LATEST_UNSEEN / OLDEST_UNSEEN) racing puts, consumes, GC epochs, and
attach/detach churn on a bounded remote channel.
"""

import threading
import time

import pytest

from repro.core import INFINITY, STM_LATEST_UNSEEN, STM_OLDEST_UNSEEN
from repro.errors import ChannelEmptyError, StampedeError
from repro.runtime import Cluster
from repro.stm import STM

N_ITEMS = 120  # per producer


@pytest.fixture
def cluster():
    with Cluster(n_spaces=2, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


class TestWildcardStress:
    """Producers, wildcard consumers, GC epochs, and churn on one channel.

    The channel is homed on the *other* space, so every operation is an RPC
    and every blocked operation is a remotely parked waiter.  Wildcard
    consumers park on NO_MATCHING_ITEM between puts while GC collects the
    consumed prefix behind them.  A lost wakeup deadlocks the test (the
    driver loop times out); a mis-delivered one surfaces in ``errors``.
    """

    def test_wildcards_gc_and_detach(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel("stress", home=1)
        total = 2 * N_ITEMS
        errors: list[BaseException] = []
        oldest_seen: dict[int, list[int]] = {0: [], 1: []}
        done = threading.Event()

        def producer(lo: int, hi: int) -> None:
            try:
                from repro.runtime.threads import require_current_thread

                thread = require_current_thread()
                out = stm.lookup("stress").attach_output()
                for ts in range(lo, hi):
                    thread.set_virtual_time(ts)
                    out.put(ts, ts.to_bytes(4, "little"))
                out.detach()
                thread.set_virtual_time(INFINITY)
            except BaseException as exc:  # noqa: BLE001 - surfaced in main
                errors.append(exc)

        def oldest_consumer(idx: int) -> None:
            try:
                from repro.runtime.threads import require_current_thread

                thread = require_current_thread()
                inp = stm.lookup("stress").attach_input()
                seen = oldest_seen[idx]
                high = 0
                while len(seen) < total:
                    item = inp.get(STM_OLDEST_UNSEEN)
                    inp.consume(item.timestamp)
                    seen.append(item.timestamp)
                    if item.timestamp > high:
                        high = item.timestamp
                        thread.set_virtual_time(high)
                inp.detach()
                thread.set_virtual_time(INFINITY)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def latest_consumer() -> None:
            try:
                from repro.runtime.threads import require_current_thread

                thread = require_current_thread()
                inp = stm.lookup("stress").attach_input()
                while True:
                    item = inp.get(STM_LATEST_UNSEEN)
                    inp.consume_until(item.timestamp)
                    thread.set_virtual_time(item.timestamp)
                    if item.timestamp == total - 1:
                        break
                inp.detach()
                thread.set_virtual_time(INFINITY)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def churn() -> None:
            # Attach/detach under load: each detach runs the drain path that
            # retries parked operations; each INFINITY-visibility attach
            # implicitly consumes everything present.
            try:
                from repro.runtime.threads import require_current_thread

                require_current_thread().set_virtual_time(INFINITY)
                while not done.is_set():
                    inp = stm.lookup("stress").attach_input()
                    try:
                        inp.get(STM_LATEST_UNSEEN, block=False)
                    except ChannelEmptyError:
                        pass
                    inp.detach()
                    time.sleep(0.002)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        space = cluster.space(0)
        threads = [
            space.spawn(producer, (0, N_ITEMS), virtual_time=0),
            space.spawn(producer, (N_ITEMS, total), virtual_time=N_ITEMS),
            space.spawn(oldest_consumer, (0,), virtual_time=0),
            space.spawn(oldest_consumer, (1,), virtual_time=0),
            space.spawn(latest_consumer, virtual_time=0),
        ]
        churn_thread = space.spawn(churn, virtual_time=0)
        # Unpin the GC horizon from this (adopted) thread, then drive GC
        # epochs concurrently so items are collected out from under the
        # racing wildcard gets (never past an unconsumed claim).
        me.set_virtual_time(INFINITY)
        deadline = time.monotonic() + 60.0
        while any(t.alive for t in threads):
            cluster.gc_once()
            assert not errors, errors
            assert time.monotonic() < deadline, (
                "stress run wedged: lost wakeup or stalled GC"
            )
            time.sleep(0.002)
        done.set()
        for t in threads:
            t.join(timeout=10.0)
        churn_thread.join(timeout=10.0)
        assert not errors, errors

        # No lost items and no double delivery on the exact-delivery path.
        for idx in (0, 1):
            assert sorted(oldest_seen[idx]) == list(range(total))
        # Everything was consumed and every pin is gone: a final epoch
        # collects the channel down to empty.
        cluster.gc_once()
        kernel = cluster.space(1)._channel(chan.channel_id).kernel
        assert kernel.timestamps() == []

    def test_bounded_channel_storm(self, cluster, me):
        """Two producers hammer a capacity-2 remote channel (put parking).

        ``refcount=1`` makes every consume reclaim its slot eagerly, so each
        consume must unpark exactly the putter waiting on CHANNEL_FULL — a
        lost put wakeup wedges the run immediately at this capacity.
        """
        stm = STM(cluster.space(0))
        stm.create_channel("storm", capacity=2, home=1)
        total = 2 * N_ITEMS
        errors: list[BaseException] = []
        seen: list[int] = []

        def producer(start: int) -> None:
            try:
                from repro.runtime.threads import require_current_thread

                thread = require_current_thread()
                out = stm.lookup("storm").attach_output()
                for ts in range(start, total, 2):
                    thread.set_virtual_time(ts)
                    out.put(ts, b"", refcount=1)
                out.detach()
                thread.set_virtual_time(INFINITY)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def consumer() -> None:
            try:
                inp = stm.lookup("storm").attach_input()
                while len(seen) < total:
                    item = inp.get(STM_OLDEST_UNSEEN)
                    inp.consume(item.timestamp)
                    seen.append(item.timestamp)
                inp.detach()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        space = cluster.space(0)
        threads = [
            space.spawn(producer, (0,), virtual_time=0),
            space.spawn(producer, (1,), virtual_time=0),
            space.spawn(consumer, virtual_time=0),
        ]
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, errors
        assert sorted(seen) == list(range(total))


class TestWakeupPrecision:
    def test_one_wakeup_per_satisfying_put(self, cluster, me):
        """Each put wakes exactly the getter it satisfies, not the herd."""
        stm = STM(cluster.space(0))
        stm.create_channel("precise")
        local = cluster.space(0)._channel(stm.lookup("precise").channel_id)
        n = 6
        started = threading.Barrier(n + 1)
        results: list[int] = []

        def getter(ts: int) -> None:
            inp = stm.lookup("precise").attach_input()
            started.wait()
            item = inp.get(ts)
            results.append(item.timestamp)
            inp.consume(ts)
            inp.detach()

        threads = [
            cluster.space(0).spawn(getter, (ts,), virtual_time=0)
            for ts in range(n)
        ]
        started.wait()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with local.lock:
                if len(local.get_waiters) == n:
                    break
            time.sleep(0.005)
        out = stm.lookup("precise").attach_output()
        before = local.waiters_woken
        for ts in range(n):
            out.put(ts, b"x", refcount=1)
            time.sleep(0.02)  # let the woken getter finish before the next put
        for t in threads:
            t.join(timeout=10.0)
        assert sorted(results) == list(range(n))
        assert local.waiters_woken - before == n
        out.detach()

    def test_consume_wakes_blocked_putter(self, cluster, me):
        """Freeing a slot (eager reclamation at consume) unparks a putter."""
        stm = STM(cluster.space(0))
        stm.create_channel("tight", capacity=1, home=1)
        out = stm.lookup("tight").attach_output()
        inp = stm.lookup("tight").attach_input()
        out.put(0, b"a", refcount=1)
        unblocked = threading.Event()

        def putter() -> None:
            out.put(1, b"b", refcount=1)
            unblocked.set()

        t = cluster.space(0).spawn(putter, virtual_time=0)
        time.sleep(0.05)
        assert not unblocked.is_set()  # parked on CHANNEL_FULL
        inp.get_consume(0)  # refcount satisfied: slot reclaimed eagerly
        t.join(timeout=10.0)
        assert unblocked.is_set()
        inp.get_consume(1)
        inp.detach()
        out.detach()

    def test_detach_of_blocked_getter_thread_is_clean(self, cluster, me):
        """A waiter that times out removes itself; later puts still work."""
        stm = STM(cluster.space(0))
        stm.create_channel("timeouts", home=1)
        inp = stm.lookup("timeouts").attach_input()
        with pytest.raises((TimeoutError, StampedeError)):
            inp.get(7, timeout=0.1)
        out = stm.lookup("timeouts").attach_output()
        out.put(7, b"late", refcount=1)
        assert inp.get_consume(7).value == b"late"
        inp.detach()
        out.detach()
