"""Edge cases of the runtime: destroy-with-waiters, registry placement,
multi-space-per-node topologies, auto-detach, and error surfaces."""

import threading
import time

import pytest

from repro.core import INFINITY, STM_OLDEST
from repro.errors import (
    NoSuchChannelError,
    StampedeError,
)
from repro.runtime import Cluster
from repro.stm import STM


class TestChannelDestroy:
    def test_destroy_fails_blocked_remote_get(self):
        with Cluster(n_spaces=2, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("doomed", home=1)
            inp = chan.attach_input()
            outcome = {}

            def blocked_get():
                t = cluster.space(0).adopt_current_thread(virtual_time=1)
                try:
                    cluster.space(0).get(chan.handle, inp.conn_id, 5)
                except StampedeError as exc:
                    outcome["error"] = type(exc).__name__
                t.exit()

            thread = threading.Thread(target=blocked_get)
            thread.start()
            time.sleep(0.05)
            chan.destroy()
            thread.join(timeout=10)
            assert "error" in outcome  # surfaced, not hung
            me.exit()

    def test_ops_after_destroy_raise(self):
        with Cluster(n_spaces=1, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel()
            out = chan.attach_output()
            chan.destroy()
            with pytest.raises(StampedeError):
                out.put(0, b"x")
            me.exit()


class TestRegistryPlacement:
    def test_registry_on_non_zero_space(self):
        with Cluster(n_spaces=3, gc_period=None, registry_space=2) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            chan = STM(cluster.space(0)).create_channel("elsewhere", home=1)
            found = STM(cluster.space(1)).lookup("elsewhere")
            assert found.channel_id == chan.channel_id
            assert cluster.space(2).is_registry
            assert not cluster.space(0).is_registry
            me.exit()

    def test_invalid_registry_space_rejected(self):
        with pytest.raises(ValueError):
            Cluster(n_spaces=2, registry_space=5)


class TestMultiSpacePerNode:
    def test_same_node_spaces_work_end_to_end(self):
        """Two address spaces on one SMP node (shared-memory medium)."""
        with Cluster(n_spaces=2, spaces_per_node=2, gc_period=None) as cluster:
            assert cluster.network.topology.medium(0, 1).intra_node
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            chan = STM(cluster.space(0)).create_channel("samenode", home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            out.put(0, b"over-shared-memory")
            assert inp.get_consume(0).value == b"over-shared-memory"
            me.exit()

    def test_mixed_topology(self):
        """Four spaces on two nodes: 0-1 share memory, 0-2 cross the wire."""
        with Cluster(n_spaces=4, spaces_per_node=2, gc_period=None) as cluster:
            topo = cluster.network.topology
            assert topo.medium(0, 1).intra_node
            assert not topo.medium(0, 2).intra_node
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            chan = STM(cluster.space(0)).create_channel(home=3)
            out, inp = chan.attach_output(), chan.attach_input()
            out.put(0, b"cross-node")
            assert inp.get_consume(0).value == b"cross-node"
            me.exit()


class TestAutoDetach:
    def test_thread_exit_releases_connections_for_gc(self):
        with Cluster(n_spaces=1, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("leaky")
            out = chan.attach_output()
            out.put(0, b"x")

            def sloppy_consumer():
                # attaches but neither consumes nor detaches
                stm.lookup("leaky").attach_input()

            handle = cluster.space(0).spawn(sloppy_consumer, virtual_time=0)
            handle.join(10)
            me.set_virtual_time(INFINITY)
            # the exited thread's connection no longer pins the minimum:
            assert cluster.gc_once() is INFINITY
            kernel = cluster.space(0)._channel(chan.channel_id).kernel
            assert kernel.timestamps() == []
            me.exit()

    def test_adopted_exit_releases_connections(self):
        with Cluster(n_spaces=1, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel()
            out = chan.attach_output()
            out.put(0, b"x")
            inp = chan.attach_input()  # unconsumed claim
            me.exit()  # auto-detaches both
            kernel = cluster.space(0)._channel(chan.channel_id).kernel
            assert not kernel.inputs and not kernel.outputs


class TestAdoptConflicts:
    def test_adopting_second_space_of_same_cluster_rejected(self):
        with Cluster(n_spaces=2, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            with pytest.raises(StampedeError, match="already adopted"):
                cluster.space(1).adopt_current_thread()
            me.exit()

    def test_stale_binding_from_dead_cluster_rebinds(self):
        old = Cluster(n_spaces=1, gc_period=None)
        stale = old.space(0).adopt_current_thread(virtual_time=0)
        old.shutdown()
        with Cluster(n_spaces=1, gc_period=None) as fresh:
            adopted = fresh.space(0).adopt_current_thread(virtual_time=0)
            assert adopted is not stale
            assert adopted.space is fresh.space(0)
            adopted.exit()


class TestWildcardOverRpc:
    def test_oldest_unseen_across_spaces(self):
        from repro.core import STM_OLDEST_UNSEEN

        with Cluster(n_spaces=2, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            chan = STM(cluster.space(0)).create_channel(home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            for ts in [4, 1, 9]:
                out.put(ts, ts)
            walked = [
                inp.get(STM_OLDEST_UNSEEN).timestamp for _ in range(3)
            ]
            assert walked == [1, 4, 9]
            me.exit()


class TestLookupErrors:
    def test_probe_requires_existing_channel(self):
        from repro.stm import ChannelProbe

        with Cluster(n_spaces=1, gc_period=None) as cluster:
            with pytest.raises(NoSuchChannelError):
                ChannelProbe(cluster, 12345)

    def test_lookup_cached_after_first_hit(self):
        with Cluster(n_spaces=2, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            STM(cluster.space(0)).create_channel("cached", home=1)
            first = cluster.space(1).lookup_channel("cached")
            second = cluster.space(1).lookup_channel("cached")
            assert first.channel_id == second.channel_id
            assert cluster._named_handle("cached") is not None
            me.exit()


class TestSmallMtuCluster:
    def test_every_rpc_fragments_and_still_works(self):
        """A 256-byte MTU forces multi-packet fragmentation on every RPC;
        semantics must be unchanged."""
        with Cluster(n_spaces=2, gc_period=0.02, mtu=256) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            chan = STM(cluster.space(0)).create_channel("tiny-mtu", home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            payload = bytes(range(256)) * 40  # ~10 KB -> ~45 packets
            out.put(0, payload)
            item = inp.get_consume(0)
            assert item.value == payload
            # fragmentation actually happened:
            assert cluster.space(0).endpoint.stats.packets_sent > 40
            me.exit()

    def test_image_payload_over_tiny_mtu(self):
        import numpy as np

        with Cluster(n_spaces=2, gc_period=None, mtu=512) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            chan = STM(cluster.space(0)).create_channel(home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            frame = np.arange(230_400, dtype=np.uint8).reshape(240, 320, 3)
            out.put(0, frame)
            got = inp.get_consume(0).value
            np.testing.assert_array_equal(got, frame)
            me.exit()


class TestDocstringExample:
    def test_package_docstring_doctest(self):
        """The quickstart in repro/__init__ must actually run."""
        import doctest

        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1
