"""Integration tests for cluster management, naming, and cross-space RPC."""

import threading
import time

import pytest

from repro.core import STM_OLDEST, UNKNOWN_REFCOUNT
from repro.core.flags import GetWildcard
from repro.errors import (
    ChannelEmptyError,
    ChannelFullError,
    NameInUseError,
    NoSuchChannelError,
)
from repro.runtime import Cluster
from repro.runtime.messages import GetReq, PutReq


@pytest.fixture
def cluster():
    with Cluster(n_spaces=3, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    t.exit()


class TestChannels:
    def test_create_local(self, cluster, me):
        handle = cluster.space(0).create_channel("a")
        assert handle.home_space == 0
        assert handle.name == "a"

    def test_create_remotely_homed(self, cluster, me):
        handle = cluster.space(0).create_channel("b", home=2)
        assert handle.home_space == 2
        assert cluster.space(2)._channel(handle.channel_id) is not None

    def test_channel_ids_unique_across_spaces(self, cluster, me):
        ids = {
            cluster.space(0).create_channel(home=s).channel_id
            for s in range(3)
            for _ in range(5)
        }
        assert len(ids) == 15

    def test_lookup_from_any_space(self, cluster, me):
        created = cluster.space(0).create_channel("shared", home=1)
        found = cluster.space(2).lookup_channel("shared")
        assert found.channel_id == created.channel_id
        assert found.home_space == 1

    def test_lookup_unknown_raises(self, cluster):
        with pytest.raises(NoSuchChannelError):
            cluster.space(1).lookup_channel("nope")

    def test_duplicate_name_rejected(self, cluster, me):
        cluster.space(0).create_channel("dup")
        with pytest.raises(NameInUseError):
            cluster.space(1).create_channel("dup")

    def test_lookup_wait_blocks_until_created(self, cluster, me):
        found = {}

        def late_consumer():
            found["handle"] = cluster.space(2).lookup_channel(
                "late", wait=True, timeout=10
            )

        t = threading.Thread(target=late_consumer)
        t.start()
        time.sleep(0.05)
        cluster.space(0).create_channel("late")
        t.join(timeout=10)
        assert found["handle"].name == "late"

    def test_lookup_wait_timeout(self, cluster):
        with pytest.raises(TimeoutError):
            cluster.space(1).lookup_channel("never", wait=True, timeout=0.1)


class TestRemoteOps:
    def put(self, space, handle, conn, ts, data=b"x", **kw):
        space.put(handle, conn, ts, data, len(data), **kw)

    def test_put_get_consume_roundtrip(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=2)
        out = space0.attach(handle, is_input=False, thread=me)
        inp = space0.attach(handle, is_input=True, thread=me)
        self.put(space0, handle, out, 0, b"payload")
        payload, ts, size = space0.get(handle, inp, 0)
        assert (payload, ts, size) == (b"payload", 0, 7)
        space0.consume(handle, inp, 0)
        assert cluster.space(2)._channel(handle.channel_id).kernel.unconsumed_min().__repr__() == "INFINITY"

    def test_blocking_remote_get_parks_until_put(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=1)
        inp = space0.attach(handle, is_input=True, thread=me)
        out = space0.attach(handle, is_input=False, thread=me)
        result = {}

        def getter():
            t = cluster.space(0).adopt_current_thread(virtual_time=0)
            result["got"] = space0.get(handle, inp, 5)
            t.exit()

        thread = threading.Thread(target=getter)
        thread.start()
        time.sleep(0.05)
        assert "got" not in result
        self.put(space0, handle, out, 5, b"late")
        thread.join(timeout=10)
        assert result["got"][0] == b"late"

    def test_nonblocking_remote_get_raises_empty(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=1)
        inp = space0.attach(handle, is_input=True, thread=me)
        with pytest.raises(ChannelEmptyError):
            space0.get(handle, inp, 5, block=False)

    def test_remote_get_timeout_cancels(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=1)
        inp = space0.attach(handle, is_input=True, thread=me)
        with pytest.raises(TimeoutError):
            space0.get(handle, inp, 5, timeout=0.1)
        # the parked request is gone: a later put is not consumed by it
        channel = cluster.space(1)._channel(handle.channel_id)
        assert not channel.parked

    def test_bounded_remote_put_parks_until_space(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=1, capacity=1)
        out = space0.attach(handle, is_input=False, thread=me)
        inp = space0.attach(handle, is_input=True, thread=me)
        self.put(space0, handle, out, 0)
        unblocked = {}

        def second_put():
            # VT=1, not 0: a VT-0 thread would itself pin the GC horizon at
            # 0 and keep the slot occupied forever (§4.2 discipline).
            t = cluster.space(0).adopt_current_thread(virtual_time=1)
            self.put(space0, handle, out, 1)
            unblocked["done"] = True
            t.exit()

        thread = threading.Thread(target=second_put)
        thread.start()
        time.sleep(0.05)
        assert "done" not in unblocked
        # Unknown refcount: only the reachability GC can free the slot, and
        # it can't until this thread's virtual time moves past 0 (§4.2).
        space0.consume(handle, inp, 0)
        me.set_virtual_time(1)
        cluster.gc_once()
        thread.join(timeout=10)
        assert unblocked.get("done")

    def test_nonblocking_bounded_put_raises_full(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=1, capacity=1)
        out = space0.attach(handle, is_input=False, thread=me)
        self.put(space0, handle, out, 0)
        with pytest.raises(ChannelFullError):
            self.put(space0, handle, out, 1, block=False)

    def test_wildcard_get_over_rpc(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=2)
        out = space0.attach(handle, is_input=False, thread=me)
        inp = space0.attach(handle, is_input=True, thread=me)
        for ts in [3, 9, 6]:
            self.put(space0, handle, out, ts)
        _, ts, _ = space0.get(handle, inp, GetWildcard.LATEST)
        assert ts == 9
        _, ts, _ = space0.get(handle, inp, STM_OLDEST)
        assert ts == 3

    def test_detach_over_rpc(self, cluster, me):
        space0 = cluster.space(0)
        handle = space0.create_channel(home=1)
        inp = space0.attach(handle, is_input=True, thread=me)
        space0.detach(handle, inp)
        kernel = cluster.space(1)._channel(handle.channel_id).kernel
        assert not kernel.inputs


class TestSpawn:
    def test_remote_spawn_and_join(self, cluster, me):
        _EVIDENCE.clear()
        handle = cluster.space(0).spawn(
            _remote_probe, on_space=2, virtual_time=5
        )
        handle.join(timeout=10)
        assert _EVIDENCE and _EVIDENCE[0][0] == 2  # ran on space 2
        assert _EVIDENCE[0][1] == 5  # with the requested virtual time

    def test_join_already_exited_thread(self, cluster, me):
        handle = cluster.space(0).spawn(_remote_probe, on_space=1)
        time.sleep(0.2)
        handle.join(timeout=5)  # immediate: thread long gone


#: spawn RPC pickles args, so mutations to passed lists would be lost —
#: cross-space evidence goes through module state instead (one process).
_EVIDENCE: list = []


def _remote_probe():
    """Module-level so it pickles for cross-space spawn."""
    from repro.runtime.threads import current_thread

    t = current_thread()
    _EVIDENCE.append((t.space.space_id, t.virtual_time))


class TestShutdown:
    def test_shutdown_idempotent(self):
        cluster = Cluster(n_spaces=2, gc_period=None)
        cluster.shutdown()
        cluster.shutdown()

    def test_outstanding_call_fails_on_shutdown(self):
        cluster = Cluster(n_spaces=2, gc_period=None)
        me = cluster.space(0).adopt_current_thread(virtual_time=0)
        handle = cluster.space(0).create_channel(home=1)
        inp = cluster.space(0).attach(handle, is_input=True, thread=me)
        failures = []

        def blocked_get():
            t = cluster.space(0).adopt_current_thread(virtual_time=0)
            try:
                cluster.space(0).get(handle, inp, 5)
            except Exception as exc:  # noqa: BLE001
                failures.append(type(exc).__name__)

        thread = threading.Thread(target=blocked_get)
        thread.start()
        time.sleep(0.05)
        me.exit()
        cluster.shutdown()
        thread.join(timeout=10)
        assert failures  # the blocked call surfaced an error, not a hang
