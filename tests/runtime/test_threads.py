"""Unit tests for Stampede thread virtual-time state (paper §4.2)."""

import pytest

from repro.core.time import INFINITY
from repro.errors import StampedeError, VirtualTimeError, VisibilityError
from repro.runtime import Cluster, current_thread
from repro.runtime.threads import require_current_thread


@pytest.fixture
def cluster():
    with Cluster(n_spaces=1, gc_period=None) as c:
        yield c


@pytest.fixture
def thread(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0, name="t0")
    yield t
    if t.alive:
        t.exit()


class TestVirtualTime:
    def test_initial_vt(self, thread):
        assert thread.virtual_time == 0
        assert thread.visibility() == 0

    def test_advance(self, thread):
        thread.set_virtual_time(10)
        assert thread.virtual_time == 10
        thread.advance_virtual_time(INFINITY)
        assert thread.virtual_time is INFINITY

    def test_cannot_go_below_visibility(self, thread):
        thread.set_virtual_time(10)
        with pytest.raises(VirtualTimeError):
            thread.set_virtual_time(5)

    def test_infinity_is_a_trap(self, thread):
        """Once at INFINITY with nothing open, VT can never come back down."""
        thread.set_virtual_time(INFINITY)
        with pytest.raises(VirtualTimeError):
            thread.set_virtual_time(1_000_000)

    def test_open_item_lowers_visibility_allowing_vt_moves(self, thread):
        thread.set_virtual_time(10)
        thread.note_open(1, 1, 3)  # open item at ts 3
        assert thread.visibility() == 3
        thread.set_virtual_time(5)  # legal: >= visibility 3
        assert thread.virtual_time == 5
        thread.note_closed(1, 1, 3)
        assert thread.visibility() == 5


class TestVisibilityChecks:
    def test_put_at_or_above_visibility_ok(self, thread):
        thread.set_virtual_time(5)
        thread.check_put_timestamp(5)
        thread.check_put_timestamp(100)

    def test_put_below_visibility_rejected(self, thread):
        thread.set_virtual_time(5)
        with pytest.raises(VisibilityError):
            thread.check_put_timestamp(4)

    def test_put_at_infinity_visibility_always_rejected(self, thread):
        thread.set_virtual_time(INFINITY)
        with pytest.raises(VisibilityError):
            thread.check_put_timestamp(10**9)

    def test_open_item_licenses_inherited_timestamp(self, thread):
        """The Fig. 7 pattern: put at the timestamp of an open input item."""
        thread.set_virtual_time(INFINITY)
        thread.note_open(1, 1, 7)
        thread.check_put_timestamp(7)  # inheriting is legal
        with pytest.raises(VisibilityError):
            thread.check_put_timestamp(6)


class TestOpenTracking:
    def test_open_close(self, thread):
        thread.note_open(1, 2, 5)
        thread.note_open(1, 2, 9)
        assert thread.open_items() == {(1, 2, 5), (1, 2, 9)}
        thread.note_closed(1, 2, 5)
        assert thread.open_items() == {(1, 2, 9)}

    def test_conn_close_drops_all(self, thread):
        thread.note_open(1, 2, 5)
        thread.note_open(1, 3, 6)
        thread.note_conn_closed(1, 2)
        assert thread.open_items() == {(1, 3, 6)}

    def test_close_is_idempotent(self, thread):
        thread.note_closed(1, 2, 99)  # never opened: no error


class TestSpawnRules:
    def test_child_vt_defaults_to_parent_visibility(self, cluster, thread):
        thread.set_virtual_time(7)
        seen = {}

        def child():
            seen["vt"] = current_thread().virtual_time

        handle = cluster.space(0).spawn(child)
        handle.join(5)
        assert seen["vt"] == 7

    def test_child_vt_below_parent_visibility_rejected(self, cluster, thread):
        thread.set_virtual_time(7)
        with pytest.raises(VirtualTimeError):
            cluster.space(0).spawn(lambda: None, virtual_time=3)

    def test_child_vt_above_parent_ok(self, cluster, thread):
        thread.set_virtual_time(7)
        handle = cluster.space(0).spawn(lambda: None, virtual_time=INFINITY)
        handle.join(5)

    def test_root_spawn_defaults_to_zero(self, cluster):
        seen = {}

        def probe():
            seen["vt"] = current_thread().virtual_time

        # spawned from a non-Stampede context (this test's raw OS thread
        # has no current thread after the fixture's adopt... so simulate
        # by spawning from within a spawned thread without parent state).
        handle = cluster.space(0).spawn(probe)
        handle.join(5)
        assert seen["vt"] in (0, 7)  # 0 when no parent bound to this thread


class TestBinding:
    def test_current_thread_inside_spawn(self, cluster):
        seen = {}

        def probe():
            seen["t"] = current_thread()

        handle = cluster.space(0).spawn(probe, name="probe")
        handle.join(5)
        assert seen["t"].name == "probe"
        assert not seen["t"].alive  # exited

    def test_require_current_thread_raises_unbound(self):
        import threading

        errors = []

        def unbound():
            try:
                require_current_thread()
            except StampedeError:
                errors.append("raised")

        t = threading.Thread(target=unbound)
        t.start()
        t.join()
        assert errors == ["raised"]

    def test_adopt_twice_returns_same(self, cluster):
        t1 = cluster.space(0).adopt_current_thread(name="main")
        t2 = cluster.space(0).adopt_current_thread()
        assert t1 is t2
        t1.exit()

    def test_duplicate_thread_name_rejected(self, cluster):
        import threading

        release = threading.Event()
        h = cluster.space(0).spawn(release.wait, (10,), name="dup")
        try:
            with pytest.raises(StampedeError):
                cluster.space(0).spawn(lambda: None, name="dup")
        finally:
            release.set()
            h.join(5)
