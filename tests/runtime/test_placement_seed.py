"""Statically seeded placement: stmgraph topology -> placement search.

The whole-program analyzer extracts a thread/channel dataflow graph;
``ChannelGraph.placement_model()`` turns its longest stage chain into a
:class:`repro.runtime.placement.PipelineModel` the exhaustive search can
optimize.  These tests pin that bridge end-to-end on a synthetic
pipeline source: extraction order, the model's cost conventions (only
the terminal stage emits nothing), and that the seeded model is
actually searchable and pinnable.
"""

from __future__ import annotations

import pytest

from repro.analysis.source import load_sources
from repro.analysis.stmgraph import extract_graph
from repro.runtime.placement import optimal_placement, predict

PIPELINE_SRC = '''\
"""Three-stage linear pipeline plus an off-chain logger."""

RAW = "seed.raw"
COOKED = "seed.cooked"
LOG = "seed.log"


def digitize(space):
    out = space.lookup(RAW).attach_output()
    out.put(0, b"frame")
    out.detach()


def track(space):
    inp = space.lookup(RAW).attach_input()
    out = space.lookup(COOKED).attach_output()
    item = inp.get(0)
    out.put(0, item)
    inp.consume(0)
    inp.detach()
    out.detach()


def display(space):
    inp = space.lookup(COOKED).attach_input()
    log = space.lookup(LOG).attach_output()
    inp.get_consume(0)
    log.put(0, b"shown")
    inp.detach()
    log.detach()


def audit(space):
    inp = space.lookup(LOG).attach_input()
    inp.get_consume(0)
    inp.detach()


def main(space):
    space.spawn(digitize, (space,))
    space.spawn(track, (space,))
    space.spawn(display, (space,))
    space.spawn(audit, (space,))
'''


@pytest.fixture(scope="module")
def graph(tmp_path_factory):
    path = tmp_path_factory.mktemp("seed") / "pipeline.py"
    path.write_text(PIPELINE_SRC)
    sources = load_sources([str(path)], root=path.parent)
    return extract_graph(sources)


def test_main_chain_follows_the_dataflow(graph):
    # digitize -> track -> display -> audit is the longest put/get path;
    # the spawn edges from main() must not enter the chain.
    assert graph.main_chain() == ["digitize", "track", "display", "audit"]


def test_seeded_model_stage_costs(graph):
    model = graph.placement_model(compute_us=500.0, output_bytes=4096)
    assert model.names == ["digitize", "track", "display", "audit"]
    assert all(s.compute_us == 500.0 for s in model.stages)
    # every stage feeds its successor except the terminal one
    assert [s.output_bytes for s in model.stages] == [4096, 4096, 4096, 0]


def test_seeded_model_is_searchable(graph):
    model = graph.placement_model()
    colocated = predict(model, (0,) * len(model.stages))
    best = optimal_placement(model, n_spaces=2, objective="latency")
    assert len(best.placement) == len(model.stages)
    # the search can never do worse than a placement it enumerates
    assert best.latency_us <= colocated.latency_us
    # uniform placeholder costs make colocation latency-optimal
    assert len(set(best.placement)) == 1


def test_seeded_model_respects_pins(graph):
    model = graph.placement_model()
    best = optimal_placement(
        model, n_spaces=3, pinned={"digitize": 2, "audit": 1}
    )
    by_name = dict(zip(model.names, best.placement, strict=True))
    assert by_name["digitize"] == 2
    assert by_name["audit"] == 1


def test_lone_producer_seeds_a_single_stage(tmp_path):
    # a lone producer is a degenerate but placeable one-stage pipeline
    path = tmp_path / "solo.py"
    path.write_text(
        "def solo(space):\n"
        "    out = space.lookup('solo.out').attach_output()\n"
        "    out.put(0, b'x')\n"
        "    out.detach()\n"
    )
    graph = extract_graph(load_sources([str(path)], root=tmp_path))
    model = graph.placement_model()
    assert model.names == ["solo"]
    assert model.stages[0].output_bytes == 0  # terminal stage emits nothing


def test_chainless_graph_refuses_to_seed(tmp_path):
    # no scanned function touches STM: no threads, nothing to place
    path = tmp_path / "plain.py"
    path.write_text("def helper(x):\n    return x + 1\n")
    graph = extract_graph(load_sources([str(path)], root=tmp_path))
    with pytest.raises(ValueError, match="no thread-to-thread dataflow"):
        graph.placement_model()
