"""Tests for the latency-aware placement model (paper §9 / companion [12])."""

import pytest

from repro.core import STM_OLDEST
from repro.runtime.placement import (
    KIOSK_PIPELINE,
    PipelineModel,
    Stage,
    optimal_placement,
    predict,
)
from repro.sim import SimStampede
from repro.transport.clf import ClusterTopology
from repro.transport.media import UDP_LAN


def two_stage(nbytes=230_400, c0=500.0, c1=8_000.0):
    return PipelineModel(
        stages=(Stage("a", c0, nbytes), Stage("b", c1, 0))
    )


class TestPredict:
    def test_colocated_cheaper_than_split(self):
        model = two_stage()
        local = predict(model, (0, 0), ClusterTopology(2))
        split = predict(model, (0, 1), ClusterTopology(2))
        assert local.latency_us < split.latency_us

    def test_split_improves_throughput_when_cpu_bound(self):
        """Two heavy stages on one space halve the rate one CPU... with the
        SMP model, splitting across spaces always at least matches."""
        model = PipelineModel(
            stages=(Stage("a", 30_000.0, 64), Stage("b", 30_000.0, 0))
        )
        together = predict(model, (0, 0), ClusterTopology(2), cpus_per_space=1)
        split = predict(model, (0, 1), ClusterTopology(2), cpus_per_space=1)
        assert split.throughput_fps > together.throughput_fps

    def test_udp_edges_cost_more(self):
        model = two_stage()
        mc = predict(model, (0, 1), ClusterTopology(2))
        udp = predict(model, (0, 1), ClusterTopology(2, inter_node=UDP_LAN))
        assert udp.latency_us > 2 * mc.latency_us

    def test_edge_breakdown_sums_into_latency(self):
        model = KIOSK_PIPELINE
        pred = predict(model, (0, 1, 1, 0), ClusterTopology(2))
        compute = sum(s.compute_us for s in model.stages)
        assert pred.latency_us == pytest.approx(
            compute + sum(pred.edge_costs_us)
        )

    def test_placement_length_checked(self):
        with pytest.raises(ValueError):
            predict(two_stage(), (0,), ClusterTopology(2))

    def test_space_range_checked(self):
        with pytest.raises(ValueError):
            predict(two_stage(), (0, 7), ClusterTopology(2))

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            Stage("bad", -1.0, 0)
        with pytest.raises(ValueError):
            Stage("bad", 1.0, -1)
        with pytest.raises(ValueError):
            PipelineModel(stages=())


class TestOptimalPlacement:
    def test_latency_optimum_is_all_colocated(self):
        """With latency as the objective and light compute, everything on
        one space wins (no wire crossings)."""
        best = optimal_placement(KIOSK_PIPELINE, n_spaces=3,
                                 objective="latency")
        assert len(set(best.placement)) == 1

    def test_pinning_respected(self):
        best = optimal_placement(
            KIOSK_PIPELINE, n_spaces=3, objective="latency",
            pinned={"digitizer": 2},
        )
        assert best.placement[0] == 2
        # ...and the rest follows the digitizer to avoid the frame hop
        assert set(best.placement) == {2}

    def test_throughput_objective_spreads_heavy_stages(self):
        model = PipelineModel(
            stages=(
                Stage("s0", 40_000.0, 1024),
                Stage("s1", 40_000.0, 1024),
                Stage("s2", 40_000.0, 0),
            )
        )
        best = optimal_placement(model, n_spaces=3, objective="throughput",
                                 cpus_per_space=1)
        assert len(set(best.placement)) == 3

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            optimal_placement(KIOSK_PIPELINE, 2, objective="magic")

    def test_unknown_pinned_stage_rejected(self):
        with pytest.raises(ValueError):
            optimal_placement(KIOSK_PIPELINE, 2, pinned={"nope": 0})

    def test_describe(self):
        best = optimal_placement(KIOSK_PIPELINE, 2)
        text = best.describe(KIOSK_PIPELINE)
        assert "digitizer@" in text and "latency=" in text


class TestPredictionsMatchSimulator:
    """The model must agree with the simulator about placement *ordering*."""

    @staticmethod
    def simulate(placement, items=20, nbytes=230_400, c0=500.0, c1=8_000.0):
        n_spaces = max(placement) + 1 if max(placement) > 0 else 2
        sim = SimStampede(n_spaces=n_spaces)
        chan = sim.create_channel(home=placement[1])

        def producer(t):
            out = yield from t.attach_output(chan)
            for i in range(items):
                t.set_virtual_time(i)
                yield from t.delay(c0)
                yield from t.put(out, i, nbytes=nbytes)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            for _ in range(items):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.delay(c1)
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=placement[0])
        sim.spawn(consumer, space=placement[1])
        sim.run()
        return sim.now / items

    def test_ordering_preserved(self):
        model = two_stage()
        placements = [(0, 0), (0, 1)]
        predicted = [
            predict(model, p, ClusterTopology(2)).latency_us
            for p in placements
        ]
        simulated = [self.simulate(p) for p in placements]
        # both agree: co-located beats split
        assert (predicted[0] < predicted[1]) == (simulated[0] < simulated[1])

    def test_magnitudes_within_factor_two(self):
        model = two_stage()
        pred = predict(model, (0, 1), ClusterTopology(2)).latency_us
        sim = self.simulate((0, 1))
        assert 0.5 < pred / sim < 2.0
