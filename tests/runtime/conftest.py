"""Watchdog for the runtime driver tests.

These tests spawn real threads and asyncio loops that block on STM
waits; a missed wakeup should fail the one test, not wedge the suite.
pytest-timeout is not a dependency; see tests/_timeout_guard.py.
"""

from __future__ import annotations

from tests._timeout_guard import install_timeout_guard

TIMEOUT_S = 120

install_timeout_guard(globals(), TIMEOUT_S)
