"""Tests for the cluster-wide statistics report."""

import pytest

from repro.core import INFINITY
from repro.runtime import Cluster
from repro.runtime.stats import cluster_report
from repro.stm import STM


@pytest.fixture
def cluster():
    with Cluster(n_spaces=2, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


class TestClusterReport:
    def test_counts_ops(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel("counted", home=1)
        out, inp = chan.attach_output(), chan.attach_input()
        for ts in range(3):
            out.put(ts, bytes(50))
        inp.get_consume(0)
        report = cluster_report(cluster)
        assert report.total_puts == 3
        assert report.total_gets == 1
        assert report.stored_items == 3
        assert report.total_bytes_on_wire > 150  # payloads crossed the wire

    def test_space_breakdown(self, cluster, me):
        STM(cluster.space(0)).create_channel("a", home=0)
        STM(cluster.space(0)).create_channel("b", home=1)
        report = cluster_report(cluster)
        assert len(report.spaces) == 2
        assert report.spaces[0].n_channels == 1
        assert report.spaces[1].n_channels == 1
        assert report.spaces[0].n_threads >= 1  # the adopted thread

    def test_gc_stats_included(self, me):
        with Cluster(n_spaces=1, gc_period=0.01) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel()
            out, inp = chan.attach_output(), chan.attach_input()
            out.put(0, b"x")
            inp.get_consume(0)
            boot.set_virtual_time(INFINITY)
            cluster.gc_once()
            report = cluster_report(cluster)
            assert report.gc_epochs >= 1
            assert report.total_collected >= 1
            boot.exit()

    def test_render(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel("pretty")
        out = chan.attach_output()
        out.put(0, b"payload")
        text = cluster_report(cluster).render()
        assert "cluster report" in text
        assert "space 0" in text and "space 1" in text
        assert "pretty" in text
        assert "totals:" in text
