"""Integration tests for the distributed GC daemon (paper §4.2, §6)."""

import time

import pytest

from repro.core import INFINITY, STM_OLDEST
from repro.runtime import Cluster
from repro.stm import STM


@pytest.fixture
def cluster():
    with Cluster(n_spaces=2, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


def kernel_of(cluster, channel):
    return cluster.space(channel.handle.home_space)._channel(
        channel.handle.channel_id
    ).kernel


class TestGlobalMinimum:
    def test_thread_visibility_pins_horizon(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=1)
        out = chan.attach_output()
        inp = chan.attach_input()
        me.set_virtual_time(5)
        out.put(5, b"five")
        inp.get_consume(5)
        horizon = cluster.gc_once()
        assert horizon == 5  # my VT holds the horizon at 5
        # collection is strictly below the horizon: ts 5 survives
        time.sleep(0.1)
        assert kernel_of(cluster, chan).timestamps() == [5]
        me.set_virtual_time(6)
        assert cluster.gc_once() == 6

    def test_unconsumed_item_pins_horizon(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=1)
        out = chan.attach_output()
        inp = chan.attach_input()
        for ts in range(4):
            me.set_virtual_time(ts)
            out.put(ts, bytes([ts]))
        me.set_virtual_time(INFINITY)
        horizon = cluster.gc_once()
        assert horizon == 0  # everything unconsumed on inp
        inp.get_consume(0)
        inp.get_consume(1)
        assert cluster.gc_once() == 2
        assert kernel_of(cluster, chan).timestamps() == [2, 3]

    def test_open_item_pins_horizon(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=1)
        out = chan.attach_output()
        inp = chan.attach_input()
        me.set_virtual_time(3)
        out.put(3, b"x")
        me.set_virtual_time(INFINITY)
        item = inp.get(3)  # OPEN, not consumed
        assert cluster.gc_once() == 3
        assert kernel_of(cluster, chan).timestamps() == [3]
        inp.consume(item.timestamp)
        assert cluster.gc_once() is INFINITY
        assert kernel_of(cluster, chan).timestamps() == []

    def test_horizon_infinity_when_idle(self, cluster, me):
        me.set_virtual_time(INFINITY)
        assert cluster.gc_once() is INFINITY

    def test_collection_happens_on_remote_spaces(self, cluster, me):
        """Items live at the channel home; the broadcast must reach it."""
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=1)  # homed remotely
        out = chan.attach_output()
        inp = chan.attach_input()
        me.set_virtual_time(0)
        out.put(0, b"dead")
        inp.get_consume(0)
        me.set_virtual_time(INFINITY)
        cluster.gc_once()
        deadline = time.monotonic() + 5
        while kernel_of(cluster, chan).timestamps() and time.monotonic() < deadline:
            time.sleep(0.01)  # broadcast to space 1 is asynchronous
        assert kernel_of(cluster, chan).timestamps() == []

    def test_detach_releases_for_gc(self, cluster, me):
        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=0)
        out = chan.attach_output()
        inp = chan.attach_input()
        me.set_virtual_time(0)
        out.put(0, b"x")
        me.set_virtual_time(INFINITY)
        assert cluster.gc_once() == 0
        inp.detach()
        assert cluster.gc_once() is INFINITY


class TestDaemonThread:
    def test_periodic_collection(self):
        with Cluster(n_spaces=2, gc_period=0.01) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel(home=1)
            out = chan.attach_output()
            inp = chan.attach_input()
            for ts in range(10):
                me.set_virtual_time(ts)
                out.put(ts, bytes(100))
                inp.get_consume(ts)
            me.set_virtual_time(INFINITY)
            deadline = time.monotonic() + 5
            kernel = kernel_of(cluster, chan)
            while kernel.timestamps() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert kernel.timestamps() == []
            assert cluster.gc_daemon.stats.epochs > 0
            me.exit()

    def test_stats_track_horizons(self, cluster, me):
        me.set_virtual_time(17)
        assert cluster.gc_once() == 17


class TestGcUnblocksBoundedPuts:
    def test_blocked_put_proceeds_after_collection(self, cluster, me):
        import threading

        stm = STM(cluster.space(0))
        chan = stm.create_channel(home=1, capacity=1)
        out = chan.attach_output()
        inp = chan.attach_input()
        me.set_virtual_time(0)
        out.put(0, b"first")
        inp.get_consume(0)
        me.set_virtual_time(1)
        done = {}

        def blocked_put():
            t = cluster.space(0).adopt_current_thread(virtual_time=1)
            conn = chan.attach_output(thread=t)
            conn.put(1, b"second")
            done["ok"] = True
            conn.detach()
            t.exit()

        thread = threading.Thread(target=blocked_put)
        thread.start()
        time.sleep(0.05)
        assert "ok" not in done
        cluster.gc_once()  # horizon 1: frees the slot at the home space
        thread.join(timeout=10)
        assert done.get("ok")
