"""Unit tests for loose temporal synchrony (paper §4.3) with a fake clock."""

import pytest

from repro.errors import RealTimeSlippageError
from repro.runtime.realtime import Pacer, TickStatus


class FakeClock:
    """Deterministic clock + sleep for driving the pacer."""

    def __init__(self):
        self.now = 100.0
        self.slept: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_pacer(clock, **kw):
    kw.setdefault("period", 0.1)
    return Pacer(clock=clock, sleep_fn=clock.sleep, **kw)


class TestOnTime:
    def test_early_thread_waits_until_tick(self, clock):
        pacer = make_pacer(clock)
        report = pacer.wait_for_tick()
        assert report.status is TickStatus.ON_TIME
        assert clock.slept == [pytest.approx(0.1)]
        assert report.tick == 1

    def test_successive_ticks_keep_schedule(self, clock):
        pacer = make_pacer(clock)
        for i in range(5):
            pacer.wait_for_tick()
        # after 5 ticks exactly 0.5 s have passed — no drift accumulation
        assert clock.now == pytest.approx(100.5)
        assert pacer.n_waits == 5

    def test_work_time_subtracted_from_wait(self, clock):
        pacer = make_pacer(clock)
        pacer.start()
        clock.now += 0.07  # thread worked 70 ms
        pacer.wait_for_tick()
        assert clock.slept == [pytest.approx(0.03)]


class TestLateness:
    def test_late_within_tolerance_proceeds(self, clock):
        pacer = make_pacer(clock, tolerance=0.05)
        pacer.start()
        clock.now += 0.13  # 30 ms late
        report = pacer.wait_for_tick()
        assert report.status is TickStatus.LATE_OK
        assert report.lateness == pytest.approx(0.03)
        assert not clock.slept
        assert pacer.n_late == 1

    def test_slip_without_handler_raises(self, clock):
        pacer = make_pacer(clock, tolerance=0.05)
        pacer.start()
        clock.now += 0.5
        with pytest.raises(RealTimeSlippageError) as exc_info:
            pacer.wait_for_tick()
        assert exc_info.value.lateness == pytest.approx(0.4)

    def test_slip_handler_reanchors_when_returning_none(self, clock):
        seen = []
        pacer = make_pacer(clock, tolerance=0.05, handler=lambda r: seen.append(r))
        pacer.start()
        clock.now += 0.5
        report = pacer.wait_for_tick()
        assert report.status is TickStatus.SLIPPED
        assert len(seen) == 1
        # Re-anchored: next tick is one period from "now".
        report2 = pacer.wait_for_tick()
        assert report2.status is TickStatus.ON_TIME
        assert clock.slept == [pytest.approx(0.1)]

    def test_slip_handler_can_skip_ticks(self, clock):
        """The frame-dropping recovery the paper's digitizer would use."""
        pacer = make_pacer(clock, tolerance=0.05, handler=lambda r: 4)
        pacer.start()
        clock.now += 0.55  # 4.5 periods late
        pacer.wait_for_tick()
        assert pacer.n_skipped_ticks == 4
        assert pacer.tick == 5
        report = pacer.wait_for_tick()  # tick 6 at t0+0.6: 50 ms ahead
        assert report.status is TickStatus.ON_TIME

    def test_negative_skip_rejected(self, clock):
        pacer = make_pacer(clock, tolerance=0.0, handler=lambda r: -1)
        pacer.start()
        clock.now += 0.2
        with pytest.raises(ValueError):
            pacer.wait_for_tick()


class TestValidation:
    def test_bad_period(self, clock):
        with pytest.raises(ValueError):
            make_pacer(clock, period=0)

    def test_bad_tolerance(self, clock):
        with pytest.raises(ValueError):
            make_pacer(clock, tolerance=-1)

    def test_default_tolerance_is_period(self, clock):
        pacer = make_pacer(clock, period=0.25)
        assert pacer.tolerance == 0.25

    def test_reports_accumulate(self, clock):
        pacer = make_pacer(clock)
        pacer.wait_for_tick()
        pacer.wait_for_tick()
        assert len(pacer.reports) == 2
        assert [r.tick for r in pacer.reports] == [1, 2]


def test_realtime_pacing_against_wall_clock():
    """One real-time smoke check: 5 ticks of 20 ms ≈ 100 ms of wall time."""
    import time

    pacer = Pacer(period=0.02)
    t0 = time.monotonic()
    for _ in range(5):
        pacer.wait_for_tick()
    elapsed = time.monotonic() - t0
    assert 0.08 <= elapsed < 1.0
