"""Tests for the eager-push optimization (paper §9 future work).

    "we would like to use information about the current connections to a
    channel to preemptively send data towards consumers, thereby improving
    latency and bandwidth through the channel."
"""

import time

import pytest

from repro.core import INFINITY, STM_LATEST_UNSEEN, STM_OLDEST
from repro.runtime import Cluster
from repro.stm import STM


@pytest.fixture
def cluster():
    with Cluster(n_spaces=3, gc_period=None) as c:
        yield c


@pytest.fixture
def me(cluster):
    t = cluster.space(0).adopt_current_thread(virtual_time=0)
    yield t
    if t.alive:
        t.exit()


def wait_for_cache(space, key, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with space._push_cache_lock:
            if key in space._push_cache:
                return True
        time.sleep(0.005)
    return False


class TestPushMechanics:
    def test_put_populates_consumer_cache(self, cluster, me):
        import threading

        chan = STM(cluster.space(0)).create_channel("p", home=0, push=True)
        release = threading.Event()
        attached = threading.Event()

        # The consumer thread must stay alive: thread exit auto-detaches
        # its connections, which would remove the push target.
        def consumer():
            STM(cluster.space(1)).lookup("p").attach_input()
            attached.set()
            release.wait(20)

        handle = cluster.space(1).spawn(consumer, virtual_time=0)
        assert attached.wait(10)
        out = chan.attach_output()
        out.put(0, b"pushed-data")
        pushed = wait_for_cache(cluster.space(1), (chan.channel_id, 0))
        release.set()
        handle.join(10)
        assert pushed, "payload was not pushed to the consumer space"

    def test_get_resolves_from_cache(self, cluster, me):
        chan = STM(cluster.space(0)).create_channel("q", home=0, push=True)
        result = {}

        def consumer():
            stm = STM(cluster.space(1))
            conn = stm.lookup("q").attach_input()
            item = conn.get(0)
            result["value"] = item.value
            conn.consume(0)
            conn.detach()

        handle = cluster.space(1).spawn(consumer, virtual_time=0)
        out = chan.attach_output()
        out.put(0, {"frame": 42})
        handle.join(15)
        assert result["value"] == {"frame": 42}

    def test_wildcard_get_uses_cache(self, cluster, me):
        chan = STM(cluster.space(0)).create_channel("w", home=0, push=True)
        out = chan.attach_output()
        for ts in range(3):
            out.put(ts, f"item-{ts}")  # all legal at visibility 0
        got = {}

        def consumer():
            stm = STM(cluster.space(1))
            conn = stm.lookup("w").attach_input()
            item = conn.get(STM_OLDEST)
            got["v"] = (item.timestamp, item.value)
            conn.consume(item.timestamp)
            conn.detach()

        # consumer attaches AFTER the puts: those items were never pushed
        # to space 1, so the reply must carry the payload (no-cache path).
        cluster.space(1).spawn(consumer, virtual_time=0).join(15)
        assert got["v"] == (0, "item-0")

    def test_items_put_after_attach_are_pushed(self, cluster, me):
        chan = STM(cluster.space(0)).create_channel("x", home=0, push=True)
        got = {}

        def consumer():
            stm = STM(cluster.space(1))
            conn = stm.lookup("x").attach_input()
            got["ready"] = True
            item = conn.get(STM_LATEST_UNSEEN)
            got["v"] = item.value
            # the payload must have come through the push cache:
            with cluster.space(1)._push_cache_lock:
                got["cached"] = (
                    (chan.channel_id, item.timestamp)
                    in cluster.space(1)._push_cache
                )
            conn.consume(item.timestamp)
            conn.detach()

        handle = cluster.space(1).spawn(consumer, virtual_time=0)
        while not got.get("ready"):
            time.sleep(0.005)
        time.sleep(0.05)  # let the attach RPC settle at the home
        out = chan.attach_output()
        out.put(5, b"fresh")
        handle.join(15)
        assert got["v"] == b"fresh"
        assert got["cached"]

    def test_multiple_consumer_spaces_each_get_push(self, cluster, me):
        import threading

        chan = STM(cluster.space(0)).create_channel("m", home=0, push=True)
        release = threading.Event()
        handles = []
        for space_id in (1, 2):
            attached = threading.Event()

            def attach(space_id=space_id, attached=attached):
                STM(cluster.space(space_id)).lookup("m").attach_input()
                attached.set()
                release.wait(20)

            handles.append(cluster.space(space_id).spawn(attach, virtual_time=0))
            assert attached.wait(10)
        out = chan.attach_output()
        out.put(0, b"broadcast")
        pushed = [
            wait_for_cache(cluster.space(space_id), (chan.channel_id, 0))
            for space_id in (1, 2)
        ]
        release.set()
        for h in handles:
            h.join(10)
        assert all(pushed)

    def test_gc_purges_push_cache(self, cluster, me):
        chan = STM(cluster.space(0)).create_channel("g", home=0, push=True)

        def attach_and_consume():
            from repro.runtime import current_thread

            stm = STM(cluster.space(1))
            conn = stm.lookup("g").attach_input()
            current_thread().set_virtual_time(INFINITY)
            item = conn.get(0)
            conn.consume(0)
            conn.detach()

        handle = cluster.space(1).spawn(attach_and_consume, virtual_time=0)
        out = chan.attach_output()
        out.put(0, b"ephemeral")
        handle.join(15)
        me.set_virtual_time(INFINITY)
        cluster.gc_once()
        with cluster.space(1)._push_cache_lock:
            assert (chan.channel_id, 0) not in cluster.space(1)._push_cache

    def test_push_requires_serialize_policy(self, cluster, me):
        from repro.core import CopyPolicy
        from repro.errors import StampedeError

        with pytest.raises(StampedeError):
            cluster.space(0).create_channel(
                copy_policy=CopyPolicy.REFERENCE, push=True
            )

    def test_local_gets_unaffected_by_push(self, cluster, me):
        chan = STM(cluster.space(0)).create_channel("local", home=0, push=True)
        out, inp = chan.attach_output(), chan.attach_input()
        out.put(0, b"same-space")
        assert inp.get(0).value == b"same-space"


class TestPushEndToEnd:
    def test_stream_with_push_delivers_identically(self, cluster, me):
        """Functional equivalence: push only changes *where* bytes travel."""
        results = {}
        for push in (False, True):
            name = f"stream-{push}"
            STM(cluster.space(0)).create_channel(name, home=0, push=push)
            received = []

            def consumer(name=name, received=received):
                from repro.runtime import current_thread

                stm = STM(cluster.space(2))
                conn = stm.lookup(name).attach_input()
                current_thread().set_virtual_time(INFINITY)
                for ts in range(20):
                    item = conn.get(ts)
                    received.append((ts, item.value))
                    conn.consume_until(ts)
                conn.detach()

            def producer(name=name):
                from repro.runtime import current_thread

                out = STM(cluster.space(0)).lookup(name).attach_output()
                for ts in range(20):
                    current_thread().set_virtual_time(ts)
                    out.put(ts, bytes([ts]) * 100)
                out.detach()

            threads = [
                cluster.space(2).spawn(consumer, virtual_time=0),
                cluster.space(0).spawn(producer, virtual_time=0),
            ]
            for t in threads:
                t.join(30)
            results[push] = received
        assert results[False] == results[True]
        assert len(results[True]) == 20
