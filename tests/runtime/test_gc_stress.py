"""Real-thread sanitizer stress: GC epochs racing consume/detach.

Runs ``GcDaemon.run_once`` in a tight loop on one thread while worker
threads put/get/consume and detach/re-attach connections on real
(preemptive) OS threads, with the runtime sanitizer *and* the vector-clock
race detector armed.  The assertion is threefold: no worker raises (no
live item is ever reclaimed out from under a consumer), the sanitizer
records nothing (lock discipline holds on every interleaving hit), and
the race detector finds no unordered kernel access.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import racecheck, sanitizer
from repro.core import INFINITY
from repro.runtime import Cluster
from repro.runtime.threads import StampedeThread

PAIRS = 2
ITEMS = 60
GC_ROUNDS = 200


@pytest.fixture
def armed():
    """Sanitizer + race detector on, pristine on both sides."""
    was_san = sanitizer.enabled()
    racecheck.enable()
    sanitizer.reset()
    racecheck.reset()
    try:
        yield
    finally:
        racecheck.disable()
        racecheck.reset()
        if not was_san:
            sanitizer.disable()
        sanitizer.reset()


def test_gc_epochs_race_consume_and_detach(armed):
    errors: list[BaseException] = []
    stop = threading.Event()

    def trap(fn):
        def body():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        return body

    with Cluster(n_spaces=1, gc_period=None) as cluster:
        space = cluster.space(0)
        workers: list[threading.Thread] = []
        plans = []
        for i in range(PAIRS):
            handle = space.create_channel(capacity=16)
            producer = StampedeThread(space, f"gcs-prod-{i}", 0)
            consumer = StampedeThread(space, f"gcs-cons-{i}", 0)
            space._threads[producer.name] = producer
            space._threads[consumer.name] = consumer
            out = space.attach(handle, is_input=False, thread=producer)
            inp = space.attach(handle, is_input=True, thread=consumer)
            plans.append((handle, producer, consumer, out, inp))

        def produce(handle, thread, out):
            def body():
                for ts in range(ITEMS):
                    space.put(handle, out, ts, b"p" * 16, 16)
                    thread.set_virtual_time(ts + 1)
                space.detach(handle, out)
                thread.set_virtual_time(INFINITY)

            return body

        def consume(handle, thread, inp):
            def body():
                # Detach and re-attach mid-stream: the re-attach marks
                # items below the thread's visibility consumed (§4.2), so
                # the stream continues seamlessly while GC races the gap.
                conn = inp
                for ts in range(ITEMS):
                    space.get(handle, conn, ts)
                    space.consume(handle, conn, ts)
                    thread.set_virtual_time(ts + 1)
                    if ts == ITEMS // 2:
                        space.detach(handle, conn)
                        conn = space.attach(
                            handle, is_input=True, thread=thread
                        )
                space.detach(handle, conn)
                thread.set_virtual_time(INFINITY)

            return body

        def gc_hammer():
            while not stop.is_set():
                cluster.gc_once()
            cluster.gc_once()  # one final epoch after every worker is done

        for handle, producer, consumer, out, inp in plans:
            workers.append(threading.Thread(target=trap(produce(handle, producer, out))))
            workers.append(threading.Thread(target=trap(consume(handle, consumer, inp))))
        gc_thread = threading.Thread(target=trap(gc_hammer))
        gc_thread.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60.0)
        stop.set()
        gc_thread.join(timeout=60.0)
        assert not gc_thread.is_alive(), "gc hammer wedged"

    assert errors == [], f"worker raised: {errors[0]!r}"
    assert sanitizer.findings() == [], "\n".join(
        f.render() for f in sanitizer.findings()
    )
    assert racecheck.findings() == [], "\n".join(
        f.render() for f in racecheck.findings()
    )


def test_run_once_is_serialized_under_concurrent_callers(armed):
    """Two threads driving gc_once concurrently must serialize on the
    daemon lock and keep the horizon monotone (the PR's
    ``_gc_horizon_applied`` lost-update regression, on real threads)."""
    with Cluster(n_spaces=1, gc_period=None) as cluster:
        space = cluster.space(0)
        me = StampedeThread(space, "gcs-driver", 0)
        space._threads[me.name] = me
        horizons: list[list[int]] = [[], []]
        errors: list[BaseException] = []
        barrier = threading.Barrier(2)

        def driver(slot):
            try:
                barrier.wait()
                for _ in range(50):
                    horizons[slot].append(space._gc_horizon_applied)
                    cluster.gc_once()
            except BaseException as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        threads = [
            threading.Thread(target=driver, args=(slot,)) for slot in (0, 1)
        ]
        for t in threads:
            t.start()
        for slot, t in enumerate(threads):
            me.set_virtual_time(slot + 1)  # let the horizon move mid-race
            t.join(timeout=60.0)
        assert errors == []
        for seen in horizons:
            assert seen == sorted(seen), "gc horizon watermark went backwards"
    assert sanitizer.findings() == []
    assert racecheck.findings() == []