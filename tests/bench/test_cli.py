"""Tests for the ``python -m repro.bench`` command-line harness."""

import pytest

from repro.bench.cli import EXPERIMENTS, main, run


class TestRun:
    def test_single_experiment(self):
        tables = run(["fig08"], mode="simulated")
        assert len(tables) == 1
        assert tables[0].title.startswith("Fig. 8")

    def test_both_modes_doubles_tables(self):
        tables = run(["fig08"], mode="both")
        assert len(tables) == 2

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            run(["not-an-experiment"])

    def test_registry_covers_every_paper_table(self):
        for fig in ("fig08", "fig09", "fig10", "fig11"):
            assert fig in EXPERIMENTS

    def test_registry_covers_ablations(self):
        ablations = [k for k in EXPERIMENTS if k.startswith("ablation-")]
        assert len(ablations) >= 6


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "ablation-gc" in out

    def test_prints_table(self, capsys):
        assert main(["--only", "fig08"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out
        assert "(17)" in out  # paper reference cell

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "tables.txt"
        assert main(["--only", "fig09", "--out", str(target)]) == 0
        assert "Fig. 9" in target.read_text()
