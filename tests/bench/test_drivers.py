"""Tests for the table drivers: structure and paper-shape assertions.

These are the *correctness* tests of the reproduction harness — the actual
regeneration runs live in ``benchmarks/``.  Each test asserts the shape
properties §8 claims, on reduced workloads so the suite stays fast.
"""

import pytest

from repro.bench import (
    clf_bandwidth_table,
    clf_latency_table,
    channel_depth_ablation,
    gc_cadence_ablation,
    gc_strategy_ablation,
    placement_ablation,
    skipping_ablation,
    stm_bandwidth_table,
    stm_latency_table,
)
from repro.transport.media import CAMERA_BANDWIDTH_MBPS, MEMORY_CHANNEL, UDP_LAN


class TestFig08:
    @pytest.fixture(scope="class")
    def table(self):
        return clf_latency_table("simulated")

    def test_rows_and_columns(self, table):
        assert len(table.rows) == 3
        assert table.columns == [8, 128, 1024, 4096, 8152]

    def test_matches_published_8byte_cells(self, table):
        for row, cells in table.paper.items():
            for col, published in cells.items():
                assert table.cell(row, col) == pytest.approx(published, rel=0.05)

    def test_rows_monotone(self, table):
        for cells in table.rows.values():
            values = [cells[c] for c in table.columns]
            assert values == sorted(values)

    def test_udp_dominates(self, table):
        udp = table.rows[UDP_LAN.name]
        mc = table.rows[MEMORY_CHANNEL.name]
        for col in table.columns:
            assert udp[col] > mc[col]

    def test_render_includes_paper_refs(self, table):
        text = table.render()
        assert "(17)" in text and "(227)" in text

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            clf_latency_table("nope")


class TestFig09:
    @pytest.fixture(scope="class")
    def table(self):
        return clf_bandwidth_table("simulated")

    def test_ack_column_present_and_lower(self, table):
        for cells in table.rows.values():
            assert cells["8152*"] < cells[8152]

    def test_published_cells(self, table):
        for row, cells in table.paper.items():
            for col, published in cells.items():
                assert table.cell(row, col) == pytest.approx(published, rel=0.05)

    def test_memory_channel_beats_camera_rate(self, table):
        assert table.rows[MEMORY_CHANNEL.name][8152] > CAMERA_BANDWIDTH_MBPS


class TestFig10:
    @pytest.fixture(scope="class")
    def table(self):
        return stm_latency_table("simulated", items=30)

    def test_udp_row_within_15pct_of_paper(self, table):
        """The paper's surviving UDP row: 449/487/691/1357/2075 µs."""
        udp = table.rows[UDP_LAN.name]
        for col, published in table.paper[UDP_LAN.name].items():
            assert udp[col] == pytest.approx(published, rel=0.15)

    def test_stm_latency_exceeds_raw_clf(self, table):
        """STM adds round trips on top of raw CLF (§8.2)."""
        for medium in (MEMORY_CHANNEL, UDP_LAN):
            for col in table.columns:
                assert table.rows[medium.name][col] > medium.one_way_latency_us(col)

    def test_well_below_frame_interval(self, table):
        """'these latencies are still well below the 33 msec frame rate'."""
        for cells in table.rows.values():
            for value in cells.values():
                assert value < 33_333 / 2


class TestFig11:
    @pytest.fixture(scope="class")
    def table(self):
        return stm_bandwidth_table("simulated", items=20)

    def test_column_a_below_raw_but_above_camera(self, table):
        a = table.rows["A: 1 producer / 1 consumer"]["MB/s"]
        raw = MEMORY_CHANNEL.wire_bandwidth_mbps
        assert CAMERA_BANDWIDTH_MBPS < a < 0.85 * raw

    def test_column_b_approaches_raw(self, table):
        b = table.rows["B: 2 producers / 2 consumers"]["MB/s"]
        a = table.rows["A: 1 producer / 1 consumer"]["MB/s"]
        raw = MEMORY_CHANNEL.wire_bandwidth_mbps
        assert b > a
        assert b > 0.9 * raw


class TestAblations:
    def test_gc_strategy_tradeoff(self):
        table = gc_strategy_ablation(items=40, consumers=2,
                                     gc_period_us=50_000.0)
        ref = table.rows["refcount"]
        reach = table.rows["reachability"]
        hybrid = table.rows["hybrid"]
        # eager refcounting keeps occupancy minimal; reachability buffers
        assert ref["peak_items"] < reach["peak_items"]
        assert ref["collected_refcount"] == 40
        assert reach["collected_reachability"] == 40
        assert hybrid["collected_refcount"] == 20
        assert hybrid["collected_reachability"] == 20

    def test_placement_consumer_home_is_fastest(self):
        table = placement_ablation(items=10)
        rows = table.rows
        consumer = rows["consumer space (data pushed early)"]["latency_us"]
        third = rows["third space (two hops)"]["latency_us"]
        assert consumer < third  # two hops always lose

    def test_channel_depth_tradeoff(self):
        table = channel_depth_ablation(depths=[1, 8, None], items=30)
        d1 = table.rows["1"]
        unbounded = table.rows["unbounded"]
        assert d1["producer_block_us"] > unbounded["producer_block_us"]
        assert d1["mean_staleness_frames"] <= unbounded["mean_staleness_frames"]

    def test_skipping_keeps_data_fresh(self):
        table = skipping_ablation(items=45)
        skip = table.rows["latest_unseen"]
        strict = table.rows["strict_oldest"]
        assert skip["skipped"] > 0
        assert strict["skipped"] == 0
        assert skip["mean_staleness_frames"] < strict["mean_staleness_frames"]

    def test_gc_cadence_tradeoff(self):
        table = gc_cadence_ablation(periods_us=[16_000.0, 256_000.0], items=30)
        fast = table.rows["16.0 ms"]
        slow = table.rows["256.0 ms"]
        assert fast["gc_rounds"] > slow["gc_rounds"]
        assert fast["peak_buffered_mb"] <= slow["peak_buffered_mb"]


class TestTableResult:
    def test_as_dict(self):
        table = clf_latency_table("simulated")
        d = table.as_dict()
        assert d["title"].startswith("Fig. 8")
        assert d["columns"] == [8, 128, 1024, 4096, 8152]
