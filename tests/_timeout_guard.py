"""A dependency-free per-test timeout guard.

``pytest-timeout`` is not part of this project's pinned environment, so
test packages that exercise blocking runtimes (tests/conformance,
tests/procs, tests/runtime) install this guard from their ``conftest.py``
instead::

    from tests._timeout_guard import install_timeout_guard
    install_timeout_guard(globals(), 120)

When the real ``pytest-timeout`` plugin is available it takes precedence —
the guard steps aside so its richer per-test ``@pytest.mark.timeout``
marks and configuration work unchanged.  Otherwise a ``SIGALRM``-based
watchdog interrupts any test that exceeds the budget with a plain
``Failed`` carrying the elapsed time, rather than hanging CI until the job
ceiling kills the whole run.

The SIGALRM fallback is main-thread only and POSIX only — exactly the
environment CI provides; elsewhere the guard degrades to a no-op.
"""

from __future__ import annotations

import signal
import threading

import pytest

__all__ = ["install_timeout_guard"]


def _have_pytest_timeout() -> bool:
    try:
        import pytest_timeout  # noqa: F401
    except ImportError:
        return False
    return True


def _alarm_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def install_timeout_guard(conftest_globals: dict, seconds: int) -> None:
    """Install a per-test timeout into a ``conftest.py``'s namespace.

    With pytest-timeout present, defers to it by injecting the equivalent
    ``timeout`` marker; otherwise arms SIGALRM around each test call.
    """
    if _have_pytest_timeout():

        def pytest_collection_modifyitems(items):
            for item in items:
                if item.get_closest_marker("timeout") is None:
                    item.add_marker(pytest.mark.timeout(seconds))

        conftest_globals["pytest_collection_modifyitems"] = (
            pytest_collection_modifyitems
        )
        return

    @pytest.fixture(autouse=True)
    def _sigalrm_test_timeout(request):
        if not _alarm_usable():
            yield
            return

        def on_alarm(signum, frame):
            raise pytest.fail.Exception(
                f"test exceeded the {seconds}s conformance timeout "
                f"(blocked STM program?)"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(seconds)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)

    conftest_globals["_sigalrm_test_timeout"] = _sigalrm_test_timeout
