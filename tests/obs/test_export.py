"""Exporter tests: golden Chrome trace, schema validation, lag math."""

import json

import pytest

from repro.obs.events import Recorder
from repro.obs.export import (
    lag_report,
    lag_report_from_doc,
    render_lag_report,
    render_trace_summary,
    summarize_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def stepping_clock(step_ns=1000):
    state = {"t": 0}

    def clock():
        state["t"] += step_ns
        return state["t"]

    return clock


def golden_recorder() -> Recorder:
    """A deterministic single-thread recording: put, get, wakeup, vt ticks."""
    rec = Recorder(clock=stepping_clock())  # t0_ns = 1000
    t0 = rec.now()  # 2000
    rec.complete("stm", "put", t0, 0, channel="frames", timestamp=1, size=64)
    rec.instant("stm", "wakeup", 1, channel=7)  # ts 4000
    rec.counter("vt", "vt digitizer", 1, 0, series="virtual_time")  # 5000
    rec.counter("vt", "vt digitizer", 4, 0, series="virtual_time")  # 6000
    t1 = rec.now()  # 7000
    rec.complete("gc", "gc.epoch", t1, 0, epoch=1, horizon="3", collected=2)
    return rec


class TestChromeExport:
    def test_golden_document(self):
        doc = to_chrome_trace(golden_recorder())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"
        assert doc["otherData"]["overwritten_events"] == 0

        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        data = [ev for ev in doc["traceEvents"] if ev["ph"] != "M"]
        # processes 0 and 1 appeared; each carries a name
        proc_names = {
            ev["pid"]: ev["args"]["name"]
            for ev in meta if ev["name"] == "process_name"
        }
        assert proc_names == {0: "address space 0", 1: "address space 1"}
        assert any(ev["name"] == "thread_name" for ev in meta)

        put = next(ev for ev in data if ev["name"] == "put")
        # ts/dur are microseconds relative to the recorder origin (1000 ns)
        assert put["ts"] == pytest.approx(1.0)   # (2000 - 1000) / 1000
        assert put["dur"] == pytest.approx(1.0)  # one 1000 ns step
        assert put["ph"] == "X"
        assert put["cname"] == "thread_state_running"
        assert put["args"] == {"channel": "frames", "timestamp": 1, "size": 64}

        wakeup = next(ev for ev in data if ev["name"] == "wakeup")
        assert wakeup["ph"] == "i"
        assert wakeup["s"] == "t"
        assert wakeup["pid"] == 1

        vt = [ev for ev in data if ev["ph"] == "C"]
        assert [ev["args"]["virtual_time"] for ev in vt] == [1, 4]

        gc = next(ev for ev in data if ev["name"] == "gc.epoch")
        assert gc["cname"] == "cq_build_running"

        # globally sorted by timestamp
        ts = [ev["ts"] for ev in data]
        assert ts == sorted(ts)

    def test_write_is_valid_json_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(path, golden_recorder())
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert len(loaded["traceEvents"]) == len(doc["traceEvents"])

    def test_negative_pid_mapped_to_zero(self):
        rec = Recorder(clock=stepping_clock())
        rec.instant("t", "orphan")  # default pid=-1
        doc = to_chrome_trace(rec)
        ev = next(e for e in doc["traceEvents"] if e["name"] == "orphan")
        assert ev["pid"] == 0
        assert validate_chrome_trace(doc) == []


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_rejects_bad_events(self):
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": -1, "dur": 1},
            {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0},   # no dur
            {"ph": "C", "name": "x", "pid": 0, "tid": 0, "ts": 0,
             "args": {}},                                            # empty
            {"ph": "C", "name": "x", "pid": 0, "tid": 0, "ts": 0,
             "args": {"v": "NaN?"}},                                 # non-num
            {"ph": "M", "name": "made_up_meta", "pid": 0, "args": {}},
            {"ph": "i", "name": 7, "pid": 0, "tid": 0, "ts": 0},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 7

    def test_accepts_golden(self):
        assert validate_chrome_trace(to_chrome_trace(golden_recorder())) == []


class TestLagReport:
    def make_recorder(self):
        # vt ticks 10..30 over 2 seconds of fake time -> 10 Hz
        rec = Recorder(clock=stepping_clock(step_ns=100_000_000))
        for v in range(10, 31):
            rec.counter("vt", "vt cam", v, 2, series="virtual_time")
        return rec

    def test_rate_and_lag_math(self):
        report = lag_report(self.make_recorder(), fps=30.0)
        (entry,) = report
        assert entry["space"] == 2
        assert entry["ticks"] == 21
        assert entry["first_vt"] == 10 and entry["last_vt"] == 30
        assert entry["wall_seconds"] == pytest.approx(2.0)
        assert entry["rate_hz"] == pytest.approx(10.0)
        # at 30 fps the wall clock "owes" 60 items; 20 were delivered
        assert entry["lag_items"] == pytest.approx(40.0)
        assert entry["lag_seconds"] == pytest.approx(2.0 - 20 / 30.0)

    def test_without_fps_no_lag_fields(self):
        (entry,) = lag_report(self.make_recorder())
        assert "lag_items" not in entry
        assert "lag_seconds" not in entry

    def test_from_doc_matches_live(self):
        rec = self.make_recorder()
        live = lag_report(rec, fps=30.0)
        from_doc = lag_report_from_doc(to_chrome_trace(rec), fps=30.0)
        assert len(from_doc) == len(live) == 1
        for key in ("space", "ticks", "first_vt", "last_vt"):
            assert from_doc[0][key] == live[0][key]
        assert from_doc[0]["wall_seconds"] == pytest.approx(
            live[0]["wall_seconds"]
        )
        assert from_doc[0]["lag_seconds"] == pytest.approx(
            live[0]["lag_seconds"]
        )

    def test_empty_report_renders(self):
        assert "no virtual-time ticks" in render_lag_report([])

    def test_render_mentions_rate_and_lag(self):
        text = render_lag_report(lag_report(self.make_recorder(), fps=30.0))
        assert "10.0 Hz" in text
        assert "lag" in text


class TestSummary:
    def test_summarize_counts(self):
        doc = to_chrome_trace(golden_recorder())
        summary = summarize_trace(doc)
        assert summary["spans"]["put"]["count"] == 1
        assert summary["spans"]["gc.epoch"]["count"] == 1
        assert summary["instants"]["wakeup"] == 1
        assert summary["counters"]["vt digitizer"] == 2
        text = render_trace_summary(summary)
        assert "put" in text and "gc.epoch" in text


class TestFlowEvents:
    def make_instants(self):
        return [
            {"name": "clf.send", "cat": "clf", "ph": "i", "ts": 10.0,
             "pid": 0, "tid": 11, "s": "t", "args": {"flow": 42}},
            {"name": "clf.recv", "cat": "clf", "ph": "i", "ts": 25.0,
             "pid": 1, "tid": 22, "s": "t", "args": {"flow": 42}},
        ]

    def test_pairs_send_and_recv(self):
        from repro.obs.export import add_flow_events

        events = self.make_instants()
        assert add_flow_events(events) == 1
        start = next(ev for ev in events if ev["ph"] == "s")
        finish = next(ev for ev in events if ev["ph"] == "f")
        # The arrow starts at the send instant, ends at the receive.
        assert start["id"] == finish["id"] == "42"
        assert (start["ts"], start["pid"], start["tid"]) == (10.0, 0, 11)
        assert (finish["ts"], finish["pid"], finish["tid"]) == (25.0, 1, 22)
        assert finish["bp"] == "e"
        assert start["name"] == finish["name"] == "clf.flow"
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_unmatched_and_foreign_instants_skipped(self):
        from repro.obs.export import add_flow_events

        events = [
            # send still in flight: no recv with this id
            {"name": "clf.send", "cat": "clf", "ph": "i", "ts": 1.0,
             "pid": 0, "tid": 1, "s": "t", "args": {"flow": "0>1#9"}},
            # recv whose send was overwritten in the ring
            {"name": "clf.recv", "cat": "clf", "ph": "i", "ts": 2.0,
             "pid": 1, "tid": 2, "s": "t", "args": {"flow": "1>0#3"}},
            # non-clf instant, and a clf instant without a flow id
            {"name": "wakeup", "cat": "stm", "ph": "i", "ts": 3.0,
             "pid": 0, "tid": 1, "s": "t", "args": {"flow": 5}},
            {"name": "clf.send", "cat": "clf", "ph": "i", "ts": 4.0,
             "pid": 0, "tid": 1, "s": "t", "args": {"dst": 1}},
        ]
        before = len(events)
        assert add_flow_events(events) == 0
        assert len(events) == before  # nothing half-drawn

    def test_string_and_int_flow_ids_match(self):
        from repro.obs.export import add_flow_events

        events = self.make_instants()
        events[1]["args"]["flow"] = "42"  # receiver stamped a string
        assert add_flow_events(events) == 1

    def test_validator_requires_flow_id(self):
        bad = {"traceEvents": [
            {"name": "flow", "cat": "c", "ph": "s", "ts": 0.0,
             "pid": 0, "tid": 0},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 1 and "id" in problems[0]

    def test_validator_rejects_bad_binding_point(self):
        bad = {"traceEvents": [
            {"name": "flow", "cat": "c", "ph": "f", "ts": 0.0,
             "pid": 0, "tid": 0, "id": "x", "bp": "q"},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 1 and "bp" in problems[0]

    def test_flow_count_in_summary(self):
        from repro.obs.export import add_flow_events

        events = self.make_instants()
        add_flow_events(events)
        summary = summarize_trace({"traceEvents": events})
        assert summary["flows"] == 1
        assert "cross-track flows: 1" in render_trace_summary(summary)
