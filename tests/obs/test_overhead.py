"""The overhead guard: disabled-mode tracing must be noise on the hot path.

The hard acceptance criterion (<5% put/get overhead with STMOBS unset) is
enforced through the analytic bound of :mod:`repro.bench.obs_overhead`:
a disabled cycle pays GUARDS_PER_CYCLE module-global reads, so
``guards * guard_cost / cycle_time`` bounds the added cost — robustly
measurable even on noisy CI hosts, unlike a direct A/B of two timing runs.
"""

from repro.bench.obs_overhead import (
    GUARDS_PER_CYCLE,
    check,
    measure_cycle_us,
    measure_guard_ns,
    run,
)
from repro.obs import events as obs_events


class TestDisabledOverhead:
    def test_guard_bound_is_under_five_percent(self):
        report = run(items=400, guard_reps=50_000)
        assert check(report) == [], report
        assert report["disabled_overhead_bound_pct"] < 5.0

    def test_guard_is_nanoseconds_not_microseconds(self):
        guard_ns = measure_guard_ns(reps=50_000)
        # One global read + None check: if this ever costs a microsecond,
        # something catastrophic happened to the disabled path.
        assert guard_ns < 1000.0

    def test_guard_contribution_vs_cycle(self):
        guard_ns = measure_guard_ns(reps=50_000)
        cycle_ns = measure_cycle_us(items=400) * 1000.0
        assert GUARDS_PER_CYCLE * guard_ns < 0.05 * cycle_ns


class TestEnabledMode:
    def test_enabled_cycle_actually_records(self):
        obs_events.enable(capacity=1 << 14)
        try:
            measure_cycle_us(items=50)
            rec = obs_events.get_recorder()
            assert len(rec.spans("put")) >= 50
            assert len(rec.spans("get")) >= 50
        finally:
            obs_events.disable()

    def test_disabled_cycle_records_nothing(self):
        measure_cycle_us(items=20)
        assert obs_events.recorder is None

    def test_check_flags_pathological_reports(self):
        bad = {
            "cycle_disabled_us": 10.0,
            "cycle_enabled_us": 50.0,
            "guard_ns": 500.0,
            "guards_per_cycle": GUARDS_PER_CYCLE,
            "disabled_overhead_bound_pct": 20.0,
            "enabled_overhead_pct": 400.0,
        }
        problems = check(bad)
        assert len(problems) == 2
