"""Observability test hygiene: every test starts and ends disarmed (the
recorder is a process-wide global, like the STMSAN sanitizer).  The metrics
REGISTRY is *not* auto-reset — tests that assert on it reset it themselves
(class-scoped traced runs need their registry state to survive across the
test methods that share the recording)."""

import pytest

from repro.obs import events as obs_events


@pytest.fixture(autouse=True)
def disarmed_tracing():
    obs_events.disable()
    yield
    obs_events.disable()
