"""End-to-end tracing through the real runtime: clusters, the kiosk, CLI.

These are the acceptance tests of the observability PR: a traced run must
yield a *valid* Chrome trace containing put/get/consume spans, GC-epoch
spans, CLF packet events, and per-thread virtual-time counters.
"""

import json

import pytest

from repro.obs import events as obs_events
from repro.obs.export import (
    lag_report,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.metrics import REGISTRY
from repro.runtime import Cluster
from repro.runtime.threads import require_current_thread
from repro.stm import STM


def run_traced_pipeline(n_items=15):
    """Producer on space 0, consumer on space 1, one GC round; traced."""
    with obs_events.trace() as rec:
        with Cluster(n_spaces=2, gc_period=10.0) as cluster:
            def producer():
                thread = require_current_thread()
                stm = STM(thread.space)
                chan = stm.create_channel(name="frames", capacity=4)
                with chan.attach_output(thread) as out:
                    for i in range(1, n_items + 1):
                        thread.set_virtual_time(i)
                        out.put(i, b"x" * 256)

            def consumer():
                thread = require_current_thread()
                stm = STM(thread.space)
                chan = stm.lookup("frames", wait=True)
                with chan.attach_input(thread) as inp:
                    for i in range(1, n_items + 1):
                        item = inp.get(i)
                        inp.consume(item.timestamp)
                        thread.set_virtual_time(i + 1)

            t1 = cluster.space(0).spawn(producer, name="producer")
            t2 = cluster.space(1).spawn(consumer, name="consumer")
            t1.join()
            t2.join()
            cluster.gc_daemon.run_once()
    return rec


class TestClusterTracing:
    @pytest.fixture(scope="class")
    def recording(self):
        # Class-scoped: one traced cluster run feeds every assertion below.
        obs_events.disable()
        REGISTRY.reset()
        rec = run_traced_pipeline()
        yield rec, to_chrome_trace(rec)
        REGISTRY.reset()

    def test_trace_is_valid(self, recording):
        _, doc = recording
        assert validate_chrome_trace(doc) == []

    def test_op_spans_present(self, recording):
        rec, _ = recording
        assert len(rec.spans("put")) == 15
        assert len(rec.spans("get")) == 15
        assert len(rec.spans("consume")) == 15
        # the bounded (capacity 4) channel must have blocked the producer
        assert rec.spans("block(put)")

    def test_gc_epoch_spans_present(self, recording):
        rec, _ = recording
        assert rec.spans("gc.epoch")
        assert rec.spans("gc.scatter")
        assert rec.spans("gc.collect")
        apply_spans = rec.spans("gc.apply")
        assert apply_spans
        assert sum(s[6]["collected"] for s in apply_spans) >= 15

    def test_clf_packet_events_present(self, recording):
        rec, _ = recording
        events = rec.events()
        sends = [ev for ev in events if ev[2] == "clf.send"]
        recvs = [ev for ev in events if ev[2] == "clf.recv"]
        assert sends and recvs
        assert all(ev[6]["bytes"] > 0 for ev in sends)
        assert all(ev[6]["bytes"] > 0 for ev in recvs)
        # conservation: everything sent was received (in-process transport)
        assert sum(ev[6]["bytes"] for ev in sends) == sum(
            ev[6]["bytes"] for ev in recvs
        )

    def test_virtual_time_counters_per_thread(self, recording):
        rec, doc = recording
        report = {e["thread"]: e for e in lag_report(rec)}
        assert report["producer"]["last_vt"] == 15
        assert report["consumer"]["last_vt"] == 16
        assert report["producer"]["space"] == 0
        assert report["consumer"]["space"] == 1
        counter_names = {
            ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "C"
        }
        assert counter_names == {"vt producer", "vt consumer"}

    def test_tracks_are_per_thread_per_space(self, recording):
        _, doc = recording
        puts = [ev for ev in doc["traceEvents"] if ev.get("name") == "put"]
        gets = [ev for ev in doc["traceEvents"] if ev.get("name") == "get"]
        assert {ev["pid"] for ev in puts} == {0}
        assert {ev["pid"] for ev in gets} == {1}
        assert {ev["tid"] for ev in puts}.isdisjoint(
            ev["tid"] for ev in gets
        )

    def test_registry_latency_histograms(self, recording):
        put_h = REGISTRY.find("stm_put_ns", channel="frames")
        get_h = REGISTRY.find("stm_get_ns", channel="frames")
        assert put_h is not None and put_h.count == 15
        assert get_h is not None and get_h.count == 15
        assert put_h.as_dict()["p95"] > 0
        gc_h = REGISTRY.find("gc_epoch_seconds")
        assert gc_h is not None and gc_h.count >= 1

    def test_disabled_run_records_nothing(self):
        assert obs_events.recorder is None
        with Cluster(n_spaces=1) as cluster:
            def worker():
                thread = require_current_thread()
                stm = STM(thread.space)
                chan = stm.create_channel(name="quiet")
                with chan.attach_output(thread) as out:
                    out.put(1, b"x")

            cluster.space(0).spawn(worker, name="w").join()
        assert obs_events.recorder is None


class TestClusterReportIntegration:
    def test_gc_timing_and_wire_bytes_in_render(self):
        from repro.runtime.stats import cluster_report

        REGISTRY.reset()
        with Cluster(n_spaces=2, gc_period=10.0) as cluster:
            def worker():
                thread = require_current_thread()
                stm = STM(thread.space)
                chan = stm.create_channel(name="c", home=1)
                with chan.attach_output(thread) as out:
                    thread.set_virtual_time(1)
                    out.put(1, b"y" * 128)

            cluster.space(0).spawn(worker, name="w").join()
            cluster.gc_daemon.run_once()
            report = cluster_report(cluster)
        assert report.gc_epoch_timing is not None
        assert report.gc_epoch_timing["count"] >= 1
        text = report.render()
        assert "cluster report" in text
        assert "gc timing:" in text
        assert "wire=" in text
        # per-space bytes in and out are both shown
        assert "msgs in (" in text


class TestKioskTracing:
    def test_kiosk_trace_flag_end_to_end(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.kiosk import PipelineConfig, run_pipeline

        out = tmp_path / "kiosk.json"
        with obs_events.trace(out) as rec:
            with Cluster(n_spaces=1, gc_period=0.02) as cluster:
                result = run_pipeline(
                    cluster, PipelineConfig(n_frames=12, fps=200.0)
                )
        assert result.frames_digitized == 12
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {ev.get("name") for ev in doc["traceEvents"]}
        assert {"put", "get", "consume"} <= names
        assert any(n and n.startswith("vt ") for n in names)
        assert rec.spans("put")

    def test_example_script_trace_flag(self, tmp_path):
        pytest.importorskip("numpy")
        import os
        import pathlib
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parents[2]
        out = tmp_path / "example.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.run(
            [sys.executable, str(repo / "examples" / "vision_pipeline.py"),
             "--frames", "10", "--fps", "200", "--trace", str(out)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "trace written to" in proc.stdout
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []

    def test_obs_cli_kiosk_and_inspection(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        from repro.obs.cli import main

        out = tmp_path / "cli.json"
        assert main(["kiosk", "--frames", "10", "--fps", "200",
                     "--trace", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace written to" in text
        assert "trace summary" in text

        assert main(["validate", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(out), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert "spans" in summary and summary["spans"]
        assert main(["lag", str(out)]) == 0

    def test_obs_cli_validate_rejects_garbage(self, tmp_path):
        from repro.obs.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        assert main(["validate", str(bad)]) == 1
