"""Property tests for metric merging: sharded-then-merged == pooled.

The telemetry plane's correctness hinges on one algebraic fact — dumping
per-process metrics, shipping them over the control RPC, and merging on
the collector must give the same answer as if every observation had hit
one registry.  Hypothesis drives that equivalence over arbitrary sample
streams and arbitrary shardings.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    OnlineStats,
    dump_as_snapshot,
    merge_dumps,
)

import pytest

#: Latency-like sample values: non-negative, spanning the bucket range.
samples = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    max_size=200,
)
#: How many shards to scatter the stream over (processes in a cluster).
n_shards = st.integers(min_value=1, max_value=5)

BOUNDS = (10.0, 100.0, 1e3, 1e4, 1e5, 1e6)


def shard(values, n):
    """Round-robin scatter, like frames landing in different spaces."""
    out = [[] for _ in range(n)]
    for i, v in enumerate(values):
        out[i % n].append(v)
    return out


class TestHistogramMerge:
    @given(values=samples, n=n_shards)
    @settings(max_examples=60, deadline=None)
    def test_merged_shards_equal_pooled(self, values, n):
        pooled = Histogram("h", buckets=BOUNDS)
        for v in values:
            pooled.observe(v)
        shards = []
        for chunk in shard(values, n):
            h = Histogram("h", buckets=BOUNDS)
            for v in chunk:
                h.observe(v)
            shards.append(h)
        merged = shards[0]
        for h in shards[1:]:
            merged = merged.merge(h)
        assert merged.counts == pooled.counts
        assert merged.count == pooled.count
        assert merged.min == pooled.min
        assert merged.max == pooled.max
        # Sum is the one field where float addition order differs between
        # the pooled and the per-shard paths.
        assert math.isclose(merged.sum, pooled.sum,
                            rel_tol=1e-9, abs_tol=1e-9)
        if pooled.count:
            for q in (50, 95, 99):
                assert math.isclose(
                    merged.percentile(q), pooled.percentile(q),
                    rel_tol=1e-9, abs_tol=1e-6,
                )

    @given(values=samples)
    @settings(max_examples=40, deadline=None)
    def test_dump_roundtrip_preserves_stats(self, values):
        h = Histogram("h", buckets=BOUNDS)
        for v in values:
            h.observe(v)
        clone = Histogram.from_dump(h.dump(), name="h")
        assert clone.counts == h.counts
        assert clone.count == h.count
        assert clone.as_dict() == h.as_dict()

    def test_mismatched_buckets_raise(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_with_empty_is_identity(self):
        a = Histogram("h", buckets=BOUNDS)
        a.observe(42.0)
        merged = a.merge(Histogram("h", buckets=BOUNDS))
        assert merged.as_dict() == a.as_dict()


class TestScalarMerge:
    @given(values=st.lists(st.integers(min_value=0, max_value=10**9),
                           max_size=50),
           n=n_shards)
    @settings(max_examples=40, deadline=None)
    def test_counter_shards_sum(self, values, n):
        shards = []
        for chunk in shard(values, n):
            c = Counter("c")
            for v in chunk:
                c.inc(v)
            shards.append(c)
        merged = shards[0]
        for c in shards[1:]:
            merged = merged.merge(c)
        assert merged.value == sum(values)

    def test_gauge_last_non_none_wins(self):
        a, b, c = Gauge("g"), Gauge("g"), Gauge("g")
        a.set(1)
        b.set(2)
        assert a.merge(b).value == 2
        assert b.merge(c).value == 2   # unset right side keeps the reading
        assert c.merge(a).value == 1


class TestOnlineStatsMerge:
    @given(values=samples, n=n_shards)
    @settings(max_examples=60, deadline=None)
    def test_merged_shards_match_pooled(self, values, n):
        pooled = OnlineStats()
        pooled.extend(values)
        shards = []
        for chunk in shard(values, n):
            s = OnlineStats()
            s.extend(chunk)
            shards.append(s)
        merged = shards[0]
        for s in shards[1:]:
            merged = merged.merge(s)
        assert merged.count == pooled.count
        if pooled.count:
            assert merged.min == pooled.min
            assert merged.max == pooled.max
            assert math.isclose(merged.mean, pooled.mean,
                                rel_tol=1e-9, abs_tol=1e-6)
            assert math.isclose(merged.variance, pooled.variance,
                                rel_tol=1e-6, abs_tol=1e-3)


class TestDumpMerging:
    @given(values=samples, n=n_shards)
    @settings(max_examples=30, deadline=None)
    def test_merge_dumps_matches_single_registry(self, values, n):
        from repro.obs.metrics import MetricsRegistry

        pooled = MetricsRegistry()
        shard_regs = [MetricsRegistry() for _ in range(n)]
        for i, chunk in enumerate(shard(values, n)):
            for v in chunk:
                pooled.histogram("lat", buckets=BOUNDS,
                                 channel="video").observe(v)
                pooled.counter("n_total", channel="video").inc()
                shard_regs[i].histogram("lat", buckets=BOUNDS,
                                        channel="video").observe(v)
                shard_regs[i].counter("n_total", channel="video").inc()
        merged = merge_dumps([reg.dump() for reg in shard_regs])
        expect = pooled.dump()
        if not values:
            assert merged == expect == {}
            return
        assert merged["n_total"] == expect["n_total"]
        m, e = merged["lat"][0], expect["lat"][0]
        assert m["bucket_counts"] == e["bucket_counts"]
        assert m["count"] == e["count"]
        assert math.isclose(m["sum"], e["sum"], rel_tol=1e-9, abs_tol=1e-9)

    def test_disjoint_series_pass_through(self):
        from repro.obs.metrics import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only_a").inc(1)
        b.counter("only_b").inc(2)
        merged = merge_dumps([a.dump(), b.dump()])
        assert merged["only_a"][0]["value"] == 1
        assert merged["only_b"][0]["value"] == 2

    def test_dump_as_snapshot_matches_live_snapshot(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        for v in (5.0, 50.0, 5000.0):
            reg.histogram("lat", buckets=BOUNDS, channel="x").observe(v)
        reg.counter("n_total").inc(3)
        reg.gauge("vt", thread="t").set(7)
        via_dump = dump_as_snapshot(reg.dump())
        live = reg.snapshot()
        assert via_dump == live

    def test_merge_result_is_mergeable_again(self):
        from repro.obs.metrics import MetricsRegistry

        regs = []
        for _ in range(3):
            reg = MetricsRegistry()
            reg.histogram("lat", buckets=BOUNDS).observe(10.0)
            regs.append(reg)
        once = merge_dumps([regs[0].dump(), regs[1].dump()])
        twice = merge_dumps([once, regs[2].dump()])
        assert twice["lat"][0]["count"] == 3
