"""Unit tests for the metrics registry and the util.stats fold-in."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OnlineStats,
    REGISTRY,
    percentile,
    summarize,
)


class TestCounter:
    def test_inc(self):
        c = Counter("ops")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.as_dict() == {"value": 42}

    def test_concurrent_inc_is_exact(self):
        c = Counter("ops")

        def bump():
            for _ in range(10_000):
                c.inc()

        workers = [threading.Thread(target=bump) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("occupancy")
        assert g.value is None
        g.set(5)
        assert g.value == 5
        g.inc(-2)
        assert g.value == 3


class TestHistogram:
    def test_bucket_series_shape(self):
        # 1-2-5 series: strictly increasing, spanning the requested range
        assert DEFAULT_LATENCY_BUCKETS_NS[0] == 1e3
        assert DEFAULT_LATENCY_BUCKETS_NS[-1] == 1e10
        assert list(DEFAULT_LATENCY_BUCKETS_NS) == sorted(
            DEFAULT_LATENCY_BUCKETS_NS
        )
        assert DEFAULT_SECONDS_BUCKETS[0] == pytest.approx(1e-6)

    def test_exact_extremes_and_mean(self):
        h = Histogram("lat", buckets=(10.0, 100.0, 1000.0))
        for v in (5.0, 50.0, 500.0, 5000.0):  # last one overflows
            h.observe(v)
        assert h.count == 4
        assert h.min == 5.0
        assert h.max == 5000.0
        assert h.mean == pytest.approx(1388.75)

    def test_single_sample_reports_itself(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(42.0)
        assert h.percentile(50) == pytest.approx(42.0)
        assert h.percentile(99) == pytest.approx(42.0)

    def test_percentiles_monotone_and_clamped(self):
        h = Histogram("lat")
        for v in range(1, 1001):
            h.observe(float(v) * 1000)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert h.min <= p50 <= p95 <= p99 <= h.max
        # bucket-resolution accuracy: within one 1-2-5 step of the truth
        assert p50 == pytest.approx(500_000, rel=0.6)
        assert p99 == pytest.approx(990_000, rel=0.6)

    def test_empty_percentile_rejected(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(50)
        assert h.as_dict() == {"count": 0}

    def test_as_dict_has_quantiles(self):
        h = Histogram("lat")
        h.observe(10_000.0)
        h.observe(20_000.0)
        d = h.as_dict()
        assert set(d) >= {"count", "sum", "mean", "min", "max",
                          "p50", "p95", "p99"}

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("puts", channel="frames")
        b = reg.counter("puts", channel="frames")
        assert a is b
        # label order must not matter
        h1 = reg.histogram("lat", channel="c", space=0)
        h2 = reg.histogram("lat", space=0, channel="c")
        assert h1 is h2

    def test_distinct_labels_distinct_metrics(self):
        reg = MetricsRegistry()
        assert reg.counter("puts", channel="a") is not reg.counter(
            "puts", channel="b"
        )

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_find_and_collect(self):
        reg = MetricsRegistry()
        assert reg.find("nope") is None
        c = reg.counter("ops", space=1)
        assert reg.find("ops", space=1) is c
        reg.counter("other")
        assert [m.name for m in reg.collect("ops")] == ["ops"]
        assert len(reg.collect()) == 2

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("ops", space=1).inc(3)
        reg.histogram("lat").observe(5000.0)
        snap = reg.snapshot()
        assert snap["ops"] == [
            {"labels": {"space": 1}, "kind": "counter", "value": 3}
        ]
        assert snap["lat"][0]["kind"] == "histogram"
        reg.reset()
        assert reg.snapshot() == {}

    def test_global_registry_exists(self):
        REGISTRY.counter("smoke").inc()
        assert REGISTRY.find("smoke").value == 1


class TestUtilStatsShim:
    def test_shim_is_gone(self):
        # The repro.util.stats deprecation shim (PR 5) was removed once the
        # last importers migrated to repro.obs.metrics.
        import importlib
        import sys

        sys.modules.pop("repro.util.stats", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.util.stats")

    def test_package_reexports(self):
        import repro.util

        assert repro.util.OnlineStats is OnlineStats
        assert repro.util.percentile is percentile
        assert repro.util.summarize is summarize


class TestMovedStreamingStats:
    """Spot checks that the moved helpers behave identically (the full
    suite lives in tests/util/test_stats.py)."""

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_online_stats_merge(self):
        a, b = OnlineStats(), OnlineStats()
        for x in (1.0, 2.0, 3.0):
            a.add(x)
        for x in (10.0, 20.0):
            b.add(x)
        m = a.merge(b)
        assert m.count == 5
        assert m.mean == pytest.approx(7.2)
        assert m.min == 1.0 and m.max == 20.0

    def test_summarize(self):
        s = summarize([3.0, 1.0, 2.0])
        assert s.count == 3
        assert s.pctl(50) == 2.0
