"""Prometheus exposition tests: golden text format, escaping, HTTP routes."""

import json
import math
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (
    CONTENT_TYPE,
    ExpositionServer,
    _escape_label_value,
    _format_value,
    render_prometheus,
    render_top,
)


def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("frames_total", space=0, stage="digitizer").inc(30)
    reg.counter("frames_total", space=1, stage="tracker").inc(29)
    reg.gauge("stm_virtual_time", space=0, thread="driver").set(12)
    reg.histogram("stm_put_ns", buckets=(10.0, 100.0, 1000.0),
                  channel="video").observe(5)
    reg.histogram("stm_put_ns", buckets=(10.0, 100.0, 1000.0),
                  channel="video").observe(50)
    reg.histogram("stm_put_ns", buckets=(10.0, 100.0, 1000.0),
                  channel="video").observe(5000)
    return reg


class TestRendering:
    def test_golden_document(self):
        text = render_prometheus(sample_registry())
        lines = text.splitlines()
        # One TYPE header per metric, names sorted.
        types = [line for line in lines if line.startswith("# TYPE")]
        assert types == [
            "# TYPE frames_total counter",
            "# TYPE stm_put_ns histogram",
            "# TYPE stm_virtual_time gauge",
        ]
        assert 'frames_total{space="0",stage="digitizer"} 30' in lines
        assert 'frames_total{space="1",stage="tracker"} 29' in lines
        assert 'stm_virtual_time{space="0",thread="driver"} 12' in lines
        # Histogram: cumulative buckets up to +Inf, then _sum and _count.
        assert 'stm_put_ns_bucket{channel="video",le="10"} 1' in lines
        assert 'stm_put_ns_bucket{channel="video",le="100"} 2' in lines
        assert 'stm_put_ns_bucket{channel="video",le="1000"} 2' in lines
        assert 'stm_put_ns_bucket{channel="video",le="+Inf"} 3' in lines
        assert 'stm_put_ns_sum{channel="video"} 5055' in lines
        assert 'stm_put_ns_count{channel="video"} 3' in lines
        assert text.endswith("\n")

    def test_accepts_dump_and_is_deterministic(self):
        reg = sample_registry()
        assert render_prometheus(reg.dump()) == render_prometheus(reg)
        assert render_prometheus(reg) == render_prometheus(reg)

    def test_label_keys_sorted_regardless_of_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m", zulu=1, alpha=2).inc()
        b.counter("m", alpha=2, zulu=1).inc()
        line = 'm{alpha="2",zulu="1"} 1'
        assert line in render_prometheus(a)
        assert render_prometheus(a) == render_prometheus(b)

    def test_label_value_escaping(self):
        assert _escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        reg = MetricsRegistry()
        reg.counter("m", path='C:\\tmp "x"\nend').inc(2)
        text = render_prometheus(reg)
        assert 'm{path="C:\\\\tmp \\"x\\"\\nend"} 2' in text
        # The rendered document itself still has one sample per line.
        sample_lines = [ln for ln in text.splitlines()
                        if not ln.startswith("#")]
        assert sample_lines == ['m{path="C:\\\\tmp \\"x\\"\\nend"} 2']

    def test_value_formatting(self):
        assert _format_value(42) == "42"
        assert _format_value(42.0) == "42"          # float collapse
        assert _format_value(0.25) == "0.25"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(None) == "NaN"

    def test_unset_gauge_is_skipped_but_inf_is_exposed(self):
        reg = MetricsRegistry()
        reg.gauge("never_set", space=0)
        reg.gauge("vt", thread="interior").set(float("inf"))
        text = render_prometheus(reg)
        assert "never_set{" not in text
        assert 'vt{thread="interior"} +Inf' in text

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with spaces").inc()
        text = render_prometheus(reg)
        assert "# TYPE weird_name_with_spaces counter" in text

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_series_sorted_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("m", space=2).inc()
        reg.counter("m", space=0).inc()
        reg.counter("m", space=1).inc()
        lines = render_prometheus(reg).splitlines()
        assert lines == [
            "# TYPE m counter",
            'm{space="0"} 1', 'm{space="1"} 1', 'm{space="2"} 1',
        ]


class TestExpositionServer:
    @pytest.fixture()
    def server(self):
        reg = sample_registry()
        server = ExpositionServer(source=reg.dump).start()
        yield server
        server.stop()

    def _get(self, server, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}{path}", timeout=10
        ) as resp:
            return resp.status, resp.headers, resp.read()

    def test_metrics_route_content_type_and_body(self, server):
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        text = body.decode()
        assert "# TYPE frames_total counter" in text
        assert 'frames_total{space="0",stage="digitizer"} 30' in text
        # Root serves the same document.
        assert self._get(server, "/")[2] == body

    def test_snapshot_route_is_json(self, server):
        status, headers, body = self._get(server, "/snapshot")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        snap = json.loads(body)
        entry = snap["stm_put_ns"][0]
        assert entry["labels"] == {"channel": "video"}
        assert entry["count"] == 3

    def test_healthz(self, server):
        status, _headers, body = self._get(server, "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(server, "/nope")
        assert exc.value.code == 404

    def test_url_property(self, server):
        assert server.url == f"http://127.0.0.1:{server.port}/metrics"

    def test_live_source_reflects_updates(self):
        reg = MetricsRegistry()
        counter = reg.counter("ticks_total")
        server = ExpositionServer(source=reg.dump).start()
        try:
            assert b"ticks_total 0" in self._get(server, "/metrics")[2]
            counter.inc(7)
            assert b"ticks_total 7" in self._get(server, "/metrics")[2]
        finally:
            server.stop()


class TestRenderTop:
    def test_sections_present(self):
        snapshot = {
            "stm_put_ns": [{
                "labels": {"channel": "video", "space": 1},
                "count": 30, "p50": 1500.0, "p95": 2.5e6, "p99": 1.2e9,
            }],
            "gc_epoch_seconds": [{
                "labels": {"space": 0},
                "count": 4, "mean": 0.002, "p95": 0.004,
            }],
            "gc_collected_total": [{"labels": {"space": 0}, "value": 17}],
            "clf_wire_bytes_total": [{
                "labels": {"space": 0, "medium": "shm", "direction": "tx"},
                "value": 2048.0,
            }],
            "stm_virtual_time": [
                {"labels": {"space": 0, "thread": "driver"}, "value": 12},
                {"labels": {"space": 2, "thread": "tracker"},
                 "value": float("inf")},
            ],
        }
        text = render_top(snapshot)
        assert "channel ops (latency)" in text
        assert "video" in text and "1.5µs" in text
        assert "space 0: 4 epochs" in text
        assert "items reclaimed: 17" in text
        assert "2.0 KiB" in text
        assert "vt=12" in text
        assert "vt=∞" in text

    def test_empty_snapshot(self):
        assert render_top({}) == "stmtop: no metrics recorded yet"

    def test_works_from_dump_as_snapshot(self):
        from repro.obs.metrics import dump_as_snapshot

        snap = dump_as_snapshot(sample_registry().dump())
        text = render_top(snap)
        assert "channel ops (latency)" in text
        assert "video" in text

    def test_infinity_not_math_domain_error(self):
        # A gauge holding inf must render, not crash f-string formatting.
        text = render_top({
            "stm_virtual_time": [
                {"labels": {"thread": "t"}, "value": float("inf")}]
        })
        assert math.isfinite(len(text))
