"""Unit tests for the event-tracing layer: rings, arming, concurrency."""

import threading

import pytest

from repro.obs import events as obs_events
from repro.obs.events import DEFAULT_CAPACITY, Recorder, Ring


def fake_clock():
    """A deterministic nanosecond clock advancing 1 µs per call."""
    state = {"t": 0}

    def clock():
        state["t"] += 1000
        return state["t"]

    return clock


class TestRing:
    def test_append_and_order(self):
        ring = Ring(4, tid=1, thread_name="t")
        for i in range(3):
            ring.append(("i", "c", f"e{i}", i, 0, 0, None))
        assert len(ring) == 3
        assert [ev[2] for ev in ring.events()] == ["e0", "e1", "e2"]
        assert ring.overwritten == 0

    def test_wraparound_overwrites_oldest(self):
        ring = Ring(4, tid=1, thread_name="t")
        for i in range(10):
            ring.append(("i", "c", f"e{i}", i, 0, 0, None))
        assert len(ring) == 4
        # The oldest six were overwritten; survivors are in emission order.
        assert [ev[2] for ev in ring.events()] == ["e6", "e7", "e8", "e9"]
        assert ring.overwritten == 6

    def test_wraparound_multiple_cycles(self):
        ring = Ring(3, tid=1, thread_name="t")
        for i in range(3 * 7 + 1):
            ring.append(("i", "c", f"e{i}", i, 0, 0, None))
        assert [ev[2] for ev in ring.events()] == ["e19", "e20", "e21"]
        assert ring.overwritten == 19

    def test_capacity_one(self):
        ring = Ring(1, tid=1, thread_name="t")
        ring.append(("i", "c", "a", 0, 0, 0, None))
        ring.append(("i", "c", "b", 1, 0, 0, None))
        assert [ev[2] for ev in ring.events()] == ["b"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Ring(0, tid=1, thread_name="t")


class TestRecorder:
    def test_complete_span_returns_duration(self):
        rec = Recorder(clock=fake_clock())
        t0 = rec.now()
        dur = rec.complete("stm", "put", t0, 3, channel="frames")
        assert dur == 1000  # one fake-clock step
        (ev,) = rec.events()
        ph, cat, name, ts, d, pid, args = ev
        assert (ph, cat, name, pid) == ("X", "stm", "put", 3)
        assert d == 1000 and args == {"channel": "frames"}

    def test_instant_and_counter(self):
        rec = Recorder(clock=fake_clock())
        rec.instant("clf", "clf.send", 1, dst=2, bytes=64)
        rec.counter("vt", "vt producer", 7, 1, series="virtual_time")
        instants = [ev for ev in rec.events() if ev[0] == "i"]
        counters = [ev for ev in rec.events() if ev[0] == "C"]
        assert instants[0][6] == {"dst": 2, "bytes": 64}
        assert counters[0][6] == {"virtual_time": 7}

    def test_events_merged_across_threads_in_time_order(self):
        rec = Recorder(clock=fake_clock())
        barrier = threading.Barrier(3)

        def emitter(k):
            barrier.wait()
            for i in range(50):
                rec.instant("t", f"w{k}.{i}", k)

        workers = [threading.Thread(target=emitter, args=(k,)) for k in (1, 2)]
        for w in workers:
            w.start()
        barrier.wait()
        for w in workers:
            w.join()
        events = rec.events()
        assert len(events) == 100
        assert [ev[3] for ev in events] == sorted(ev[3] for ev in events)
        # one ring per emitting thread, none shared
        assert len(rec.rings()) == 2
        assert {r.tid for r in rec.rings()} == {w.ident for w in workers}

    def test_concurrent_emitters_never_lose_events_below_capacity(self):
        rec = Recorder(capacity=4096)
        n_threads, per_thread = 8, 500

        def emitter(k):
            for i in range(per_thread):
                rec.instant("t", "e", k, seq=i)

        workers = [
            threading.Thread(target=emitter, args=(k,)) for k in range(n_threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert len(rec.events()) == n_threads * per_thread
        assert rec.overwritten() == 0

    def test_spans_filter(self):
        rec = Recorder(clock=fake_clock())
        rec.complete("stm", "put", rec.now(), 0)
        rec.complete("gc", "gc.epoch", rec.now(), 0)
        rec.instant("stm", "wakeup", 0)
        assert len(rec.spans()) == 2
        assert len(rec.spans(name="put")) == 1
        assert len(rec.spans(cat="gc")) == 1


class TestArming:
    def test_disarmed_by_default(self):
        assert obs_events.recorder is None
        assert not obs_events.armed()
        assert obs_events.get_recorder() is None

    def test_enable_disable_roundtrip(self):
        rec = obs_events.enable(capacity=128)
        assert obs_events.armed()
        assert obs_events.get_recorder() is rec
        assert rec.capacity == 128
        # enable() while armed returns the same recorder
        assert obs_events.enable() is rec
        assert obs_events.disable() is rec
        assert not obs_events.armed()
        assert obs_events.disable() is None

    def test_trace_context_manager(self, tmp_path):
        out = tmp_path / "t.json"
        with obs_events.trace(out) as rec:
            assert obs_events.recorder is rec
            rec.instant("t", "inside", 0)
        assert obs_events.recorder is None
        assert out.exists()

    def test_trace_without_path_writes_nothing(self, tmp_path):
        with obs_events.trace() as rec:
            rec.instant("t", "inside", 0)
        assert obs_events.recorder is None

    def test_nested_trace_shares_recorder(self):
        with obs_events.trace() as outer:
            with obs_events.trace() as inner:
                assert inner is outer
            # inner exit must not disarm the outer trace
            assert obs_events.recorder is outer
        assert obs_events.recorder is None

    def test_env_armed_parsing(self):
        assert obs_events._env_armed("1")
        assert obs_events._env_armed("true")
        assert obs_events._env_armed("on")
        assert not obs_events._env_armed(None)
        assert not obs_events._env_armed("")
        assert not obs_events._env_armed("0")
        assert not obs_events._env_armed("false")
        assert not obs_events._env_armed("off")

    def test_stmobs_env_arms_fresh_process(self):
        import os
        import pathlib
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["STMOBS"] = "1"
        env["PYTHONPATH"] = str(repo / "src")
        code = "from repro.obs import events; print(events.armed())"
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "True"
