"""Telemetry-plane collection tests: clock alignment, harvest snapshots,
and the cluster-merged Chrome trace with cross-process flow stitching.

These are pure unit tests — they build synthetic recorders standing in for
the per-process recorders a real harvest drains; the end-to-end ProcCluster
harvest lives in tests/procs/test_telemetry.py.
"""

import pickle

from repro.obs.collect import (
    ClusterTelemetry,
    ProcessTelemetry,
    estimate_clock_offset,
    snapshot_local,
)
from repro.obs.events import Recorder
from repro.obs.export import validate_chrome_trace
from repro.obs.metrics import MetricsRegistry


def stepping_clock(start_ns=0, step_ns=1000):
    state = {"t": start_ns}

    def clock():
        state["t"] += step_ns
        return state["t"]

    return clock


class TestClockOffset:
    def test_midpoint_estimate(self):
        # Remote read its clock exactly at the collector-time midpoint:
        # offset maps the remote reading back onto that midpoint.
        offset = estimate_clock_offset(1000, 3000, remote_clock_ns=500)
        assert offset == 2000 - 500
        assert 500 + offset == 2000

    def test_identical_clocks_zero_offset(self):
        # Same clock on both sides, instantaneous RPC: no shift.
        assert estimate_clock_offset(5000, 5000, 5000) == 0

    def test_remote_ahead_gives_negative_offset(self):
        assert estimate_clock_offset(1000, 1000, remote_clock_ns=9000) < 0


class TestSnapshotLocal:
    def test_disarmed_snapshot_ships_metrics_only(self):
        reg = MetricsRegistry()
        reg.counter("frames_total", space=2).inc(9)
        telemetry = snapshot_local(space=2, registry=reg, recorder=None)
        assert telemetry.space == 2
        assert telemetry.rings == []
        assert telemetry.metrics["frames_total"][0]["value"] == 9
        assert telemetry.clock_ns > 0
        assert telemetry.clock_offset_ns == 0

    def test_armed_snapshot_preserves_ring_structure(self):
        rec = Recorder(clock=stepping_clock())
        t0 = rec.now()
        rec.complete("stm", "put", t0, 1, channel="video")
        rec.instant("clf", "clf.send", 1, dst=2, flow="1>2#0")
        telemetry = snapshot_local(space=1, registry=MetricsRegistry(),
                                   recorder=rec)
        assert len(telemetry.rings) == 1
        ring = telemetry.rings[0]
        assert isinstance(ring["tid"], int)
        assert isinstance(ring["thread_name"], str)
        names = [ev[2] for ev in ring["events"]]
        assert names == ["put", "clf.send"]
        assert telemetry.overwritten == 0
        assert telemetry.wall_t0 == rec.wall_t0

    def test_snapshot_pickles(self):
        rec = Recorder(clock=stepping_clock())
        rec.instant("stm", "wakeup", 0, channel=3)
        telemetry = snapshot_local(space=0, registry=MetricsRegistry(),
                                   recorder=rec)
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone.space == telemetry.space
        assert clone.rings[0]["events"] == telemetry.rings[0]["events"]
        assert clone.metrics == telemetry.metrics


def two_process_telemetry() -> ClusterTelemetry:
    """Parent space 0 + child space 1 whose clock runs 1 ms behind.

    The parent sends one CLF message the child receives; both stamp the
    same flow id.  The child records on its *own* clock, and its snapshot
    carries the offset a harvest would have estimated.
    """
    parent_reg = MetricsRegistry()
    parent_reg.histogram("stm_put_ns", channel="video").observe(500)
    parent_reg.counter(
        "clf_wire_bytes_total", space=0, medium="shm", direction="tx"
    ).inc(64)
    parent = Recorder(clock=stepping_clock(start_ns=10_000))
    t0 = parent.now()
    parent.complete("stm", "put", t0, 0, channel="video", timestamp=0)
    parent.instant("clf", "clf.send", 0, dst=1, bytes=64, flow="0>1#0")

    child_reg = MetricsRegistry()
    child_reg.histogram("stm_get_ns", channel="video").observe(900)
    child = Recorder(clock=stepping_clock(start_ns=2_000))
    child.instant("clf", "clf.recv", 1, src=0, bytes=64, flow="0>1#0")
    t1 = child.now()
    child.complete("stm", "get", t1, 1, channel="video", timestamp=0)

    p0 = snapshot_local(space=0, registry=parent_reg, recorder=parent)
    p1 = snapshot_local(space=1, registry=child_reg, recorder=child)
    p1.clock_offset_ns = 1_000_000  # child clock is 1 ms behind
    return ClusterTelemetry([p0, p1])


class TestClusterTelemetry:
    def test_spaces(self):
        assert two_process_telemetry().spaces() == [0, 1]

    def test_merged_trace_validates(self):
        doc = two_process_telemetry().chrome_trace()
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["producer"] == "repro.obs.collect"
        assert doc["otherData"]["processes"] == 2

    def test_merged_trace_has_all_process_tracks(self):
        doc = two_process_telemetry().chrome_trace()
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        proc_names = {ev["pid"]: ev["args"]["name"] for ev in meta
                      if ev["name"] == "process_name"}
        assert proc_names == {0: "address space 0", 1: "address space 1"}
        data = [ev for ev in doc["traceEvents"] if ev["ph"] not in "Msf"]
        assert {ev["pid"] for ev in data} == {0, 1}

    def test_cross_process_flow_stitched(self):
        doc = two_process_telemetry().chrome_trace()
        starts = [ev for ev in doc["traceEvents"] if ev["ph"] == "s"]
        finishes = [ev for ev in doc["traceEvents"] if ev["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        (s,), (f,) = starts, finishes
        assert s["id"] == f["id"] == "0>1#0"
        assert s["pid"] == 0 and f["pid"] == 1     # the arrow crosses
        assert f["bp"] == "e"
        assert f["ts"] >= s["ts"]  # offset put the recv after the send

    def test_clock_offset_orders_timeline(self):
        # Without the offset the child's raw clock (2 µs origin) would sort
        # its recv *before* the parent's send; the mapped timeline must not.
        doc = two_process_telemetry().chrome_trace()
        data = [ev for ev in doc["traceEvents"] if ev["ph"] not in "Ms"]
        send = next(ev for ev in data if ev["name"] == "clf.send")
        recv = next(ev for ev in data if ev["name"] == "clf.recv")
        assert recv["ts"] > send["ts"]
        assert all(ev["ts"] >= 0 for ev in data)

    def test_bad_probe_offset_refined_by_causality(self):
        # Give the child an offset that would map its recv *before* the
        # parent's send; the flow pair is a happens-before edge, so the
        # merged timeline must reject the estimate and clamp it.
        telemetry = two_process_telemetry()
        child = next(p for p in telemetry.processes if p.space == 1)
        child.clock_offset_ns = -50_000
        refined = telemetry.clock_offsets()
        assert refined[0] == 0
        assert refined[1] > child.clock_offset_ns
        doc = telemetry.chrome_trace()
        send = next(ev for ev in doc["traceEvents"]
                    if ev["name"] == "clf.send")
        recv = next(ev for ev in doc["traceEvents"]
                    if ev["name"] == "clf.recv")
        assert recv["ts"] >= send["ts"]
        assert validate_chrome_trace(doc) == []

    def test_plausible_offset_left_alone(self):
        telemetry = two_process_telemetry()
        refined = telemetry.clock_offsets()
        # 1 ms is causally consistent with the single 0->1 flow: no clamp.
        assert refined[1] == 1_000_000

    def test_unmatched_flow_not_drawn(self):
        rec = Recorder(clock=stepping_clock())
        rec.instant("clf", "clf.send", 0, dst=1, flow="0>1#7")  # in flight
        telemetry = ClusterTelemetry(
            [snapshot_local(space=0, registry=MetricsRegistry(),
                            recorder=rec)]
        )
        doc = telemetry.chrome_trace()
        assert validate_chrome_trace(doc) == []
        assert not [ev for ev in doc["traceEvents"] if ev["ph"] in "sf"]

    def test_empty_cluster(self):
        doc = ClusterTelemetry([]).chrome_trace()
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"] == []

    def test_write_roundtrip(self, tmp_path):
        import json

        path = tmp_path / "merged.json"
        doc = two_process_telemetry().write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert len(loaded["traceEvents"]) == len(doc["traceEvents"])


class TestMergedMetrics:
    def test_space_label_added_where_missing(self):
        dump = two_process_telemetry().metrics_dump()
        put = dump["stm_put_ns"][0]
        assert put["labels"] == {"channel": "video", "space": 0}
        get = dump["stm_get_ns"][0]
        assert get["labels"] == {"channel": "video", "space": 1}

    def test_existing_space_label_untouched(self):
        dump = two_process_telemetry().metrics_dump()
        wire = dump["clf_wire_bytes_total"][0]
        assert wire["labels"] == {
            "space": 0, "medium": "shm", "direction": "tx"}
        assert wire["value"] == 64

    def test_snapshot_has_percentiles(self):
        snap = two_process_telemetry().metrics_snapshot()
        put = snap["stm_put_ns"][0]
        assert put["count"] == 1
        assert put["p50"] is not None

    def test_negative_space_not_labelled(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        telemetry = ClusterTelemetry(
            [ProcessTelemetry(space=-1, clock_ns=0, metrics=reg.dump())]
        )
        assert telemetry.metrics_dump()["c"][0]["labels"] == {}

    def test_same_series_pooled_across_processes(self):
        regs = []
        for _space in (0, 1):
            reg = MetricsRegistry()
            reg.counter("clf_wire_bytes_total", space=9, medium="tcp",
                        direction="rx").inc(100)
            regs.append(reg)
        telemetry = ClusterTelemetry([
            ProcessTelemetry(space=i, clock_ns=0, metrics=reg.dump())
            for i, reg in enumerate(regs)
        ])
        merged = telemetry.metrics_dump()["clf_wire_bytes_total"]
        assert len(merged) == 1
        assert merged[0]["value"] == 200
