"""Suite-wide hygiene: no test may leak an adopted Stampede thread.

An adopted thread left bound to the pytest main OS thread bleeds into the
next test's `adopt_current_thread` (it would silently reuse a thread from a
dead cluster).  This autouse fixture unbinds leftovers and fails the suite
loudly in a way that names the offending test.
"""

import pytest

from repro.runtime.threads import current_thread


@pytest.fixture(autouse=True)
def no_leaked_adopted_threads(request):
    before = current_thread()
    if before is not None and before.alive:
        # Defensive: a previous test leaked; clean up so THIS test is sound.
        before.exit()
    yield
    after = current_thread()
    if after is not None and after.alive:
        after.exit()
        pytest.fail(
            f"{request.node.nodeid} leaked an adopted StampedeThread "
            f"({after.name!r}); call .exit() before the test returns"
        )
