"""Unit tests for the streaming statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import OnlineStats, percentile, summarize


class TestPercentile:
    def test_single_sample(self):
        assert percentile([42.0], 50) == 42.0

    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
           st.floats(0, 100))
    def test_matches_numpy(self, data, q):
        ours = percentile(data, q)
        theirs = float(np.percentile(data, q))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_basic_moments(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.min == 1.0
        assert s.max == 4.0
        assert s.stdev == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_percentile_requires_samples(self):
        s = OnlineStats()
        s.add(1.0)
        with pytest.raises(ValueError):
            s.pctl(50)

    def test_pctl_with_samples(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.pctl(50) == 2.0

    @given(st.lists(st.floats(-1e5, 1e5), min_size=2, max_size=100))
    def test_welford_matches_numpy(self, data):
        s = OnlineStats()
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(
            np.var(data, ddof=1), rel=1e-6, abs=1e-6
        )

    @given(
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=40),
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=40),
    )
    def test_merge_equals_concatenation(self, a, b):
        sa, sb = summarize(a), summarize(b)
        merged = sa.merge(sb)
        direct = summarize(a + b)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(
            direct.variance, rel=1e-6, abs=1e-6
        )
        assert merged.min == direct.min
        assert merged.max == direct.max

    def test_merge_empty(self):
        merged = OnlineStats().merge(OnlineStats())
        assert merged.count == 0

    def test_as_dict(self):
        d = summarize([2.0]).as_dict()
        assert d["count"] == 1
        assert d["mean"] == 2.0
        assert math.isfinite(d["stdev"])
