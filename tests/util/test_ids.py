"""Unit tests for the striped id allocator."""

import threading

import pytest

from repro.util.ids import IdAllocator


def test_sequential_default_stride():
    alloc = IdAllocator()
    assert [alloc.next() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_striping_disjoint_across_spaces():
    n_spaces = 4
    allocators = [IdAllocator(i, n_spaces) for i in range(n_spaces)]
    seen = set()
    for alloc in allocators:
        for _ in range(100):
            value = alloc.next()
            assert value not in seen
            seen.add(value)
    assert len(seen) == 400


def test_stride_arithmetic():
    alloc = IdAllocator(2, 5)
    assert [alloc.next() for _ in range(4)] == [2, 7, 12, 17]


def test_iterable_protocol():
    alloc = IdAllocator()
    it = iter(alloc)
    assert next(it) == 0
    assert next(it) == 1


@pytest.mark.parametrize("bad", [0, -1])
def test_invalid_stride_rejected(bad):
    with pytest.raises(ValueError):
        IdAllocator(0, bad)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        IdAllocator(-1, 1)


def test_thread_safety_no_duplicates():
    alloc = IdAllocator()
    results: list[int] = []
    lock = threading.Lock()

    def worker():
        local = [alloc.next() for _ in range(500)]
        with lock:
            results.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 4000
    assert len(set(results)) == 4000
