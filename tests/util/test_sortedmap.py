"""Unit + property tests for SortedIntMap (the channel's item index)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sortedmap import SortedIntMap


@pytest.fixture
def filled():
    m = SortedIntMap()
    for k in [5, 1, 9, 3, 7]:
        m[k] = f"v{k}"
    return m


class TestBasics:
    def test_empty(self):
        m = SortedIntMap()
        assert len(m) == 0
        assert not m
        assert m.min_key() is None
        assert m.max_key() is None

    def test_set_get_contains(self, filled):
        assert filled[5] == "v5"
        assert 5 in filled
        assert 6 not in filled
        assert filled.get(6) is None
        assert filled.get(6, "x") == "x"

    def test_keys_sorted(self, filled):
        assert filled.keys() == [1, 3, 5, 7, 9]

    def test_overwrite_keeps_single_key(self, filled):
        filled[5] = "new"
        assert filled[5] == "new"
        assert filled.keys() == [1, 3, 5, 7, 9]

    def test_delete(self, filled):
        del filled[5]
        assert 5 not in filled
        assert filled.keys() == [1, 3, 7, 9]

    def test_pop(self, filled):
        assert filled.pop(1) == "v1"
        assert filled.pop(1, "d") == "d"
        with pytest.raises(KeyError):
            filled.pop(1)

    def test_iteration_and_items(self, filled):
        assert list(filled) == [1, 3, 5, 7, 9]
        assert list(filled.items())[0] == (1, "v1")
        assert list(filled.values())[-1] == "v9"


class TestOrderedQueries:
    def test_min_max(self, filled):
        assert filled.min_key() == 1
        assert filled.max_key() == 9

    def test_floor_ceil(self, filled):
        assert filled.floor_key(6) == 5
        assert filled.floor_key(5) == 5
        assert filled.floor_key(0) is None
        assert filled.ceil_key(6) == 7
        assert filled.ceil_key(7) == 7
        assert filled.ceil_key(10) is None

    def test_lower_higher_strict(self, filled):
        assert filled.lower_key(5) == 3
        assert filled.higher_key(5) == 7
        assert filled.lower_key(1) is None
        assert filled.higher_key(9) is None

    def test_neighbours_of_missing_key(self, filled):
        assert filled.neighbours(6) == (5, 7)
        assert filled.neighbours(0) == (None, 1)
        assert filled.neighbours(100) == (9, None)

    def test_keys_below_at_or_above(self, filled):
        assert filled.keys_below(5) == [1, 3]
        assert filled.keys_at_or_above(5) == [5, 7, 9]

    def test_pop_below(self, filled):
        dead = filled.pop_below(6)
        assert dead == [(1, "v1"), (3, "v3"), (5, "v5")]
        assert filled.keys() == [7, 9]

    def test_pop_below_nothing(self, filled):
        assert filled.pop_below(0) == []
        assert len(filled) == 5


@given(st.lists(st.integers(0, 200), max_size=60), st.integers(0, 200))
def test_matches_dict_reference(keys, bound):
    """Differential test against a plain dict + sorted()."""
    m = SortedIntMap()
    ref: dict[int, int] = {}
    for k in keys:
        m[k] = k * 2
        ref[k] = k * 2
    assert m.keys() == sorted(ref)
    assert m.min_key() == (min(ref) if ref else None)
    assert m.max_key() == (max(ref) if ref else None)
    below = sorted(k for k in ref if k < bound)
    assert m.keys_below(bound) == below
    lower = [k for k in ref if k < bound]
    higher = [k for k in ref if k > bound]
    assert m.lower_key(bound) == (max(lower) if lower else None)
    assert m.higher_key(bound) == (min(higher) if higher else None)
    dead = m.pop_below(bound)
    assert [k for k, _ in dead] == below
    assert m.keys() == sorted(k for k in ref if k >= bound)


@given(
    st.lists(
        st.tuples(st.sampled_from(["set", "del", "pop_below"]), st.integers(0, 50)),
        max_size=80,
    )
)
def test_mutation_sequences_keep_invariants(ops):
    """Keys list and dict stay consistent under arbitrary op sequences."""
    m = SortedIntMap()
    ref: dict[int, int] = {}
    for op, k in ops:
        if op == "set":
            m[k] = k
            ref[k] = k
        elif op == "del" and k in ref:
            del m[k]
            del ref[k]
        elif op == "pop_below":
            m.pop_below(k)
            ref = {key: v for key, v in ref.items() if key >= k}
        assert m.keys() == sorted(ref)
        assert len(m) == len(ref)
