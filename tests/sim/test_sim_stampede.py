"""Unit tests for the simulated Stampede runtime (cost model + semantics)."""

import pytest

from repro.core import INFINITY, STM_LATEST_UNSEEN, STM_OLDEST
from repro.errors import (
    ChannelEmptyError,
    ChannelFullError,
    SimDeadlockError,
    VisibilityError,
)
from repro.sim import SimStampede
from repro.transport.media import MEMORY_CHANNEL, UDP_LAN


def run_pair(sim, chan, n_items, size):
    """Standard producer/consumer pair; returns completion time."""

    def producer(t):
        out = yield from t.attach_output(chan)
        for i in range(n_items):
            t.set_virtual_time(i)
            yield from t.put(out, i, nbytes=size)

    def consumer(t):
        inp = yield from t.attach_input(chan)
        for _ in range(n_items):
            _p, ts, _s = yield from t.get(inp, STM_OLDEST)
            yield from t.consume(inp, ts)

    sim.spawn(producer, space=0)
    sim.spawn(consumer, space=chan.home)
    return sim.run()


class TestSemantics:
    def test_local_roundtrip_payload(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)
        got = {}

        def producer(t):
            out = yield from t.attach_output(chan)
            yield from t.put(out, 0, nbytes=100, payload="hello")

        def consumer(t):
            inp = yield from t.attach_input(chan)
            payload, ts, size = yield from t.get(inp, STM_OLDEST)
            got["all"] = (payload, ts, size)
            yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=0)
        sim.run()
        assert got["all"] == ("hello", 0, 100)

    def test_visibility_enforced(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def producer(t):
            out = yield from t.attach_output(chan)
            t.set_virtual_time(5)
            yield from t.put(out, 2, nbytes=8)

        sim.spawn(producer, space=0)
        with pytest.raises(VisibilityError):
            sim.run()

    def test_nonblocking_get_raises(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            yield from t.get(inp, STM_OLDEST, block=False)

        sim.spawn(consumer, space=0)
        with pytest.raises(ChannelEmptyError):
            sim.run()

    def test_blocked_get_wakes_on_put(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)
        got = {}

        def consumer(t):
            inp = yield from t.attach_input(chan)
            _p, ts, _s = yield from t.get(inp, STM_OLDEST)
            got["at"] = t.now
            yield from t.consume(inp, ts)

        def producer(t):
            out = yield from t.attach_output(chan)
            yield from t.delay(500.0)
            yield from t.put(out, 0, nbytes=8)

        sim.spawn(consumer, space=0)
        sim.spawn(producer, space=0)
        sim.run()
        assert got["at"] > 500.0

    def test_bounded_channel_blocks_producer(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0, capacity=1)
        times = []

        def producer(t):
            out = yield from t.attach_output(chan)
            for i in range(3):
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=8)
                times.append(t.now)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)  # never pin the GC horizon
            for _ in range(3):
                yield from t.delay(1000.0)
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=0)
        # Capacity 1 + unknown refcounts: reclamation needs the GC daemon.
        sim.start_gc_daemon(period_us=200.0)
        sim.run(until_us=60_000.0)
        assert len(times) == 3
        assert times[1] > 1000.0  # second put waited for space

    def test_nonblocking_full_raises(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0, capacity=1)

        def producer(t):
            out = yield from t.attach_output(chan)
            yield from t.put(out, 0, nbytes=8)
            yield from t.put(out, 1, nbytes=8, block=False)

        sim.spawn(producer, space=0)
        with pytest.raises(ChannelFullError):
            sim.run()

    def test_latest_unseen_skipping(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)
        seen = []

        def producer(t):
            out = yield from t.attach_output(chan)
            for i in range(10):
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=8)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            yield from t.delay(10_000.0)  # everything is produced by now
            _p, ts, _s = yield from t.get(inp, STM_LATEST_UNSEEN)
            seen.append(ts)
            yield from t.consume_until(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=0)
        sim.run()
        assert seen == [9]

    def test_deadlock_reported(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            yield from t.get(inp, STM_OLDEST)  # nobody ever puts

        sim.spawn(consumer, space=0)
        with pytest.raises(SimDeadlockError):
            sim.run()


class TestCostModel:
    def test_remote_put_slower_than_local(self):
        local = SimStampede(n_spaces=1)
        t_local = run_pair(local, local.create_channel(home=0), 10, 1024)
        remote = SimStampede(n_spaces=2)
        t_remote = run_pair(remote, remote.create_channel(home=1), 10, 1024)
        assert t_remote > t_local

    def test_udp_slower_than_memory_channel(self):
        mc = SimStampede(n_spaces=2, inter_node=MEMORY_CHANNEL)
        t_mc = run_pair(mc, mc.create_channel(home=1), 10, 1024)
        udp = SimStampede(n_spaces=2, inter_node=UDP_LAN)
        t_udp = run_pair(udp, udp.create_channel(home=1), 10, 1024)
        assert t_udp > 3 * t_mc

    def test_larger_payloads_cost_more(self):
        sim_a = SimStampede(n_spaces=2)
        t_a = run_pair(sim_a, sim_a.create_channel(home=1), 20, 128)
        sim_b = SimStampede(n_spaces=2)
        t_b = run_pair(sim_b, sim_b.create_channel(home=1), 20, 8112)
        assert t_b > t_a

    def test_intra_node_uses_shared_memory_costs(self):
        same_node = SimStampede(n_spaces=2, spaces_per_node=2)
        t_same = run_pair(same_node, same_node.create_channel(home=1), 10, 4096)
        cross = SimStampede(n_spaces=2, spaces_per_node=1)
        t_cross = run_pair(cross, cross.create_channel(home=1), 10, 4096)
        assert t_same < t_cross

    def test_determinism(self):
        def once():
            sim = SimStampede(n_spaces=2)
            return run_pair(sim, sim.create_channel(home=1), 25, 4096)

        assert once() == once()


class TestSimGc:
    def test_instant_gc_collects_consumed(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def producer(t):
            out = yield from t.attach_output(chan)
            for i in range(5):
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=8)
            t.set_virtual_time(INFINITY)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            for _ in range(5):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=0)
        sim.run()
        report = sim.gc_once_instant()
        assert report.horizon is INFINITY
        assert report.collected == 5
        assert len(chan.kernel) == 0

    def test_live_thread_pins_horizon(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def producer(t):
            out = yield from t.attach_output(chan)
            t.set_virtual_time(3)
            yield from t.put(out, 3, nbytes=8)
            # stay alive forever at VT 3
            while True:
                yield from t.delay(1000.0)

        def observer(t):
            inp = yield from t.attach_input(chan)
            _p, ts, _s = yield from t.get(inp, STM_OLDEST)
            yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(observer, space=0, virtual_time=INFINITY)
        sim.run(until_us=5_000.0)
        report = sim.gc_once_instant()
        assert report.horizon == 3

    def test_gc_daemon_charges_time_and_collects(self):
        sim = SimStampede(n_spaces=2)
        chan = sim.create_channel(home=1)

        def producer(t):
            out = yield from t.attach_output(chan)
            for i in range(10):
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=1024)
                yield from t.delay(1000.0)
            t.set_virtual_time(INFINITY)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            for _ in range(10):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=1)
        sim.start_gc_daemon(period_us=2_000.0)
        sim.run(until_us=50_000.0)
        assert sim.gc_reports  # rounds happened
        assert sum(r.collected for r in sim.gc_reports) == 10
        assert len(chan.kernel) == 0


class TestSimConnectionOps:
    def test_detach_releases_gc_claims(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def producer(t):
            out = yield from t.attach_output(chan)
            yield from t.put(out, 0, nbytes=8)
            t.set_virtual_time(INFINITY)

        def fickle_consumer(t):
            conn = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            yield from t.detach(chan, conn)

        sim.spawn(producer, space=0)
        sim.spawn(fickle_consumer, space=0)
        sim.run()
        report = sim.gc_once_instant()
        assert report.horizon is INFINITY
        assert len(chan.kernel) == 0

    def test_consume_until_in_sim(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def producer(t):
            out = yield from t.attach_output(chan)
            for ts in range(5):
                t.set_virtual_time(ts)
                yield from t.put(out, ts, nbytes=8)
            t.set_virtual_time(INFINITY)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            _p, ts, _s = yield from t.get(inp, STM_LATEST_UNSEEN)
            # wait until everything is produced, then sweep:
            while chan.kernel.latest() != 4:
                yield from t.delay(100.0)
            yield from t.consume_until(inp, 4)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=0)
        sim.run()
        assert chan.kernel.unconsumed_min().__class__.__name__ == "Infinity"

    def test_oldest_unseen_walk_in_sim(self):
        from repro.core import STM_OLDEST_UNSEEN

        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)
        walked = []

        def producer(t):
            out = yield from t.attach_output(chan)
            for ts in [3, 0, 7]:
                yield from t.put(out, ts, nbytes=8)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            yield from t.delay(10_000.0)
            for _ in range(3):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST_UNSEEN)
                walked.append(ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=0)
        sim.run()
        assert walked == [0, 3, 7]

    def test_refcounted_put_in_sim(self):
        sim = SimStampede(n_spaces=1)
        chan = sim.create_channel(home=0)

        def producer(t):
            out = yield from t.attach_output(chan)
            yield from t.put(out, 0, nbytes=8, refcount=1)

        def consumer(t):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            _p, ts, _s = yield from t.get(inp, STM_OLDEST)
            yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=0)
        sim.run()
        assert chan.kernel.total_refcount_collected == 1
        assert len(chan.kernel) == 0
