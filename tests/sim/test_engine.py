"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimDeadlockError, SimulationError
from repro.sim.engine import SimEngine


class TestScheduling:
    def test_delay_advances_clock(self):
        engine = SimEngine()
        trace = []

        def task():
            trace.append(engine.now)
            yield ("delay", 10.0)
            trace.append(engine.now)
            yield ("delay", 5.0)
            trace.append(engine.now)

        engine.spawn(task)
        engine.run()
        assert trace == [0.0, 10.0, 15.0]

    def test_delay_until(self):
        engine = SimEngine()
        trace = []

        def task():
            yield ("delay_until", 42.0)
            trace.append(engine.now)
            yield ("delay_until", 10.0)  # in the past: no-op
            trace.append(engine.now)

        engine.spawn(task)
        engine.run()
        assert trace == [42.0, 42.0]

    def test_zero_delay_runs_inline(self):
        engine = SimEngine()

        def task():
            yield ("delay", 0.0)
            return engine.now

        handle = engine.spawn(task)
        engine.run()
        assert handle.result == 0.0

    def test_tasks_interleave_by_time(self):
        engine = SimEngine()
        trace = []

        def make(name, period):
            def task():
                for _ in range(3):
                    yield ("delay", period)
                    trace.append((name, engine.now))
            return task

        engine.spawn(make("fast", 1.0), name="fast")
        engine.spawn(make("slow", 2.5), name="slow")
        engine.run()
        assert trace == [
            ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
            ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
        ]

    def test_fifo_tie_break_is_deterministic(self):
        engine = SimEngine()
        trace = []

        def make(tag):
            def task():
                yield ("delay", 5.0)
                trace.append(tag)
            return task

        for tag in "abc":
            engine.spawn(make(tag), name=tag)
        engine.run()
        assert trace == ["a", "b", "c"]

    def test_run_until_stops_at_horizon(self):
        engine = SimEngine()

        def forever():
            while True:
                yield ("delay", 10.0)

        engine.spawn(forever)
        assert engine.run(until_us=35.0) == 35.0
        assert engine.pending_tasks  # still runnable

    def test_negative_delay_rejected(self):
        engine = SimEngine()

        def bad():
            yield ("delay", -1.0)

        engine.spawn(bad)
        with pytest.raises(SimulationError, match="negative delay"):
            engine.run()

    def test_bad_command_rejected(self):
        engine = SimEngine()

        def bad():
            yield "not-a-tuple"

        engine.spawn(bad)
        with pytest.raises(SimulationError, match="expected"):
            engine.run()

    def test_non_generator_spawn_rejected(self):
        engine = SimEngine()
        with pytest.raises(SimulationError, match="generator"):
            engine.spawn(lambda: 42)


class TestEvents:
    def test_pulse_wakes_waiters(self):
        engine = SimEngine()
        event = engine.event("e")
        trace = []

        def waiter():
            yield ("wait", event)
            trace.append(("woke", engine.now))

        def pulser():
            yield ("delay", 20.0)
            event.pulse()

        engine.spawn(waiter)
        engine.spawn(pulser)
        engine.run()
        assert trace == [("woke", 20.0)]

    def test_pulse_with_delay_charges_wakeup(self):
        engine = SimEngine()
        event = engine.event()
        woke = []

        def waiter():
            yield ("wait", event)
            woke.append(engine.now)

        def pulser():
            yield ("delay", 10.0)
            event.pulse(delay_us=7.0)

        engine.spawn(waiter)
        engine.spawn(pulser)
        engine.run()
        assert woke == [17.0]

    def test_set_makes_future_waits_immediate(self):
        engine = SimEngine()
        event = engine.event()
        event.set()
        trace = []

        def waiter():
            yield ("wait", event)
            trace.append(engine.now)

        engine.spawn(waiter)
        engine.run()
        assert trace == [0.0]

    def test_pulse_only_wakes_current_waiters(self):
        engine = SimEngine()
        event = engine.event()
        trace = []

        def early():
            yield ("wait", event)
            trace.append("early")

        def late():
            yield ("delay", 50.0)
            yield ("wait", event)
            trace.append("late")

        def pulser():
            yield ("delay", 10.0)
            event.pulse()
            yield ("delay", 100.0)
            event.pulse()

        engine.spawn(early)
        engine.spawn(late)
        engine.spawn(pulser)
        engine.run()
        assert trace == ["early", "late"]


class TestCompletionAndErrors:
    def test_return_value_captured(self):
        engine = SimEngine()

        def task():
            yield ("delay", 1.0)
            return "result"

        handle = engine.spawn(task)
        engine.run()
        assert handle.done and handle.result == "result"

    def test_join_propagates_result(self):
        engine = SimEngine()

        def worker():
            yield ("delay", 5.0)
            return 99

        def boss():
            w = engine.spawn(worker, name="w")
            value = yield from w.join()
            return value * 2

        handle = engine.spawn(boss)
        engine.run()
        assert handle.result == 198

    def test_task_exception_propagates(self):
        engine = SimEngine()

        def bad():
            yield ("delay", 1.0)
            raise RuntimeError("task blew up")

        handle = engine.spawn(bad)
        with pytest.raises(RuntimeError, match="blew up"):
            engine.run()
        assert handle.done and isinstance(handle.error, RuntimeError)

    def test_deadlock_detected_with_diagnostics(self):
        engine = SimEngine()
        event = engine.event("never-pulsed")

        def stuck():
            yield ("wait", event)

        engine.spawn(stuck, name="stuck-task")
        with pytest.raises(SimDeadlockError, match="stuck-task"):
            engine.run()

    def test_determinism_two_identical_runs(self):
        def build():
            engine = SimEngine()
            trace = []
            event = engine.event()

            def a():
                for _ in range(5):
                    yield ("delay", 3.0)
                    trace.append(("a", engine.now))
                event.pulse()

            def b():
                yield ("wait", event)
                trace.append(("b", engine.now))

            engine.spawn(a)
            engine.spawn(b)
            engine.run()
            return trace

        assert build() == build()


class TestRunAll:
    def test_run_all_returns_results(self):
        engine = SimEngine()

        def worker(n):
            yield ("delay", float(n))
            return n * 10

        handles = [engine.spawn(worker, i, name=f"w{i}") for i in range(3)]
        results = engine.run_all(handles)
        assert results == [0, 10, 20]

    def test_run_all_raises_on_unfinished(self):
        engine = SimEngine()

        def forever():
            while True:
                yield ("delay", 10.0)

        handle = engine.spawn(forever)
        with pytest.raises(SimulationError, match="did not finish"):
            engine.run_all([handle], until_us=25.0)
