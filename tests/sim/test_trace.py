"""Tests for simulation timeline tracing."""

import pytest

from repro.core import STM_OLDEST
from repro.sim import SimStampede
from repro.sim.engine import SimEngine
from repro.sim.trace import SimTrace


class TestSpanRecording:
    def test_span_wraps_generator_and_returns_result(self):
        engine = SimEngine()
        trace = SimTrace(engine)

        def inner():
            yield ("delay", 10.0)
            return "value"

        def task():
            result = yield from trace.span("t", "work", inner())
            return result

        handle = engine.spawn(task)
        engine.run()
        assert handle.result == "value"
        assert len(trace.spans) == 1
        span = trace.spans[0]
        assert (span.task, span.label) == ("t", "work")
        assert span.duration_us == 10.0

    def test_record_direct(self):
        trace = SimTrace(SimEngine())
        trace.record("x", "io", 5.0, 8.0)
        assert trace.spans[0].duration_us == 3.0

    def test_record_validates(self):
        trace = SimTrace(SimEngine())
        with pytest.raises(ValueError):
            trace.record("x", "io", 8.0, 5.0)


class TestAggregation:
    def make_trace(self):
        trace = SimTrace(SimEngine())
        trace.engine.now = 100.0
        trace.record("a", "put", 0.0, 30.0)
        trace.record("a", "put", 20.0, 40.0)  # overlaps the first
        trace.record("b", "get", 50.0, 60.0)
        return trace

    def test_busy_merges_overlaps(self):
        trace = self.make_trace()
        assert trace.busy_us("a") == 40.0  # 0..40 merged, not 50
        assert trace.busy_us("b") == 10.0

    def test_utilization(self):
        trace = self.make_trace()
        assert trace.utilization("a") == pytest.approx(0.4)

    def test_by_task_sorted(self):
        trace = self.make_trace()
        spans = trace.by_task()["a"]
        assert [s.start_us for s in spans] == [0.0, 20.0]


class TestRendering:
    def test_empty(self):
        assert "no spans" in SimTrace(SimEngine()).render()

    def test_render_rows_and_axis(self):
        trace = self.build_pipeline_trace()
        text = trace.render(width=40)
        lines = text.splitlines()
        assert lines[0].startswith("simulation timeline")
        assert any(line.startswith("producer") for line in lines)
        assert any(line.startswith("consumer") for line in lines)
        assert "p" in text and "g" in text  # span glyphs

    def test_summary(self):
        trace = self.build_pipeline_trace()
        text = trace.summary()
        assert "producer" in text and "spans" in text

    @staticmethod
    def build_pipeline_trace():
        """Trace a real simulated producer/consumer pair."""
        sim = SimStampede(n_spaces=2)
        trace = SimTrace(sim.engine)
        chan = sim.create_channel(home=1)

        def producer(t):
            out = yield from t.attach_output(chan)
            for i in range(3):
                t.set_virtual_time(i)
                yield from trace.span(
                    "producer", "put", t.put(out, i, nbytes=4096)
                )

        def consumer(t):
            inp = yield from t.attach_input(chan)
            for _ in range(3):
                _p, ts, _s = yield from trace.span(
                    "consumer", "get", t.get(inp, STM_OLDEST)
                )
                yield from trace.span(
                    "consumer", "consume", t.consume(inp, ts)
                )

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=1)
        sim.run()
        return trace

    def test_pipeline_trace_has_plausible_structure(self):
        trace = self.build_pipeline_trace()
        puts = [s for s in trace.spans if s.label == "put"]
        gets = [s for s in trace.spans if s.label == "get"]
        assert len(puts) == 3 and len(gets) == 3
        # each get completes after its corresponding put started
        for put, get in zip(puts, gets):
            assert get.end_us > put.start_us
