"""Differential test: the thread runtime and the simulator agree exactly.

Both runtimes wrap the same channel kernel, but each wraps it with its own
operation layer (RPC + locks vs. generator costs).  This test runs the same
single-threaded operation schedule through both and demands identical
observable outcomes — result timestamps, payload identities, and error
classes — so the two layers cannot drift apart semantically.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    STM_OLDEST_UNSEEN,
)
from repro.errors import StampedeError
from repro.runtime import Cluster
from repro.stm import STM
from repro.sim import SimStampede

WILDCARDS = [STM_LATEST, STM_OLDEST, STM_LATEST_UNSEEN, STM_OLDEST_UNSEEN]


@st.composite
def schedule(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(
            ["put", "get_ts", "get_wild", "consume", "consume_until", "vt"]
        ))
        ops.append((
            kind,
            draw(st.integers(0, 12)),
            draw(st.sampled_from(WILDCARDS)),
        ))
    return ops


def run_on_threads(ops) -> list:
    trace = []
    with Cluster(n_spaces=1, gc_period=None) as cluster:
        me = cluster.space(0).adopt_current_thread(virtual_time=0)
        try:
            stm = STM(cluster.space(0))
            chan = stm.create_channel()
            out, inp = chan.attach_output(), chan.attach_input()
            for kind, ts, wild in ops:
                try:
                    if kind == "put":
                        out.put(ts, ts * 11)
                        trace.append(("put-ok", ts))
                    elif kind == "get_ts":
                        item = inp.get(ts, block=False)
                        trace.append(("got", item.timestamp, item.value))
                    elif kind == "get_wild":
                        item = inp.get(wild, block=False)
                        trace.append(("got", item.timestamp, item.value))
                    elif kind == "consume":
                        inp.consume(ts)
                        trace.append(("consumed", ts))
                    elif kind == "consume_until":
                        inp.consume_until(ts)
                        trace.append(("consumed-until", ts))
                    elif kind == "vt":
                        me.set_virtual_time(ts)
                        trace.append(("vt", ts))
                except StampedeError as exc:
                    trace.append(("error", kind, type(exc).__name__))
        finally:
            me.exit()
    return trace


def run_on_sim(ops) -> list:
    trace = []
    sim = SimStampede(n_spaces=1)
    chan = sim.create_channel(home=0)

    def task(t):
        out = yield from t.attach_output(chan)
        inp = yield from t.attach_input(chan)
        for kind, ts, wild in ops:
            try:
                if kind == "put":
                    yield from t.put(out, ts, nbytes=8, payload=ts * 11)
                    trace.append(("put-ok", ts))
                elif kind == "get_ts":
                    payload, got_ts, _ = yield from t.get(inp, ts, block=False)
                    trace.append(("got", got_ts, payload))
                elif kind == "get_wild":
                    payload, got_ts, _ = yield from t.get(inp, wild, block=False)
                    trace.append(("got", got_ts, payload))
                elif kind == "consume":
                    yield from t.consume(inp, ts)
                    trace.append(("consumed", ts))
                elif kind == "consume_until":
                    yield from t.consume_until(inp, ts)
                    trace.append(("consumed-until", ts))
                elif kind == "vt":
                    t.set_virtual_time(ts)
                    trace.append(("vt", ts))
            except StampedeError as exc:
                trace.append(("error", kind, type(exc).__name__))

    sim.spawn(task, space=0, virtual_time=0)
    sim.run()
    return trace


@given(schedule())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_thread_and_sim_runtimes_trace_identically(ops):
    assert run_on_threads(ops) == run_on_sim(ops)
