"""Property test: the facade's thread-side bookkeeping matches the kernel.

The STM facade tracks open items on the :class:`StampedeThread` (for
visibility), while the kernel tracks them per connection (for GC minima).
These two views are maintained at different layers and must never diverge —
a divergence is exactly the kind of bug that would silently corrupt garbage
collection.  Hypothesis drives random facade operations and checks the
views against each other after every step.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import STM_LATEST, STM_LATEST_UNSEEN, STM_OLDEST, STM_OLDEST_UNSEEN
from repro.core.item import ItemState
from repro.errors import StampedeError
from repro.runtime import Cluster
from repro.stm import STM


@st.composite
def facade_op(draw):
    kind = draw(st.sampled_from(
        ["put", "get_ts", "get_wild", "consume", "consume_until"]
    ))
    ts = draw(st.integers(0, 15))
    wild = draw(st.sampled_from(
        [STM_LATEST, STM_OLDEST, STM_LATEST_UNSEEN, STM_OLDEST_UNSEEN]
    ))
    return (kind, ts, wild)


@given(st.lists(facade_op(), max_size=50))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_thread_open_set_matches_kernel_states(ops):
    with Cluster(n_spaces=1, gc_period=None) as cluster:
        me = cluster.space(0).adopt_current_thread(virtual_time=0)
        try:
            stm = STM(cluster.space(0))
            chan = stm.create_channel()
            out, inp = chan.attach_output(), chan.attach_input()
            kernel = cluster.space(0)._channel(chan.channel_id).kernel

            for kind, ts, wild in ops:
                try:
                    if kind == "put":
                        out.put(ts, ts * 3)
                    elif kind == "get_ts":
                        inp.get(ts, block=False)
                    elif kind == "get_wild":
                        inp.get(wild, block=False)
                    elif kind == "consume":
                        inp.consume(ts)
                    elif kind == "consume_until":
                        inp.consume_until(ts)
                except StampedeError:
                    pass

                # facade view: open triples on the thread
                facade_open = {
                    t for (cid, conn, t) in me.open_items()
                    if cid == chan.channel_id and conn == inp.conn_id
                }
                # kernel view: OPEN states on the connection
                kernel_open = {
                    t for t in kernel.timestamps()
                    if kernel.item_state(inp.conn_id, t) is ItemState.OPEN
                }
                assert facade_open == kernel_open, (
                    f"facade {sorted(facade_open)} != "
                    f"kernel {sorted(kernel_open)} after {kind}({ts})"
                )
                # visibility consistency: min(vt, open) per definition
                vis = me.visibility()
                if facade_open:
                    assert vis == min(
                        min(facade_open),
                        me.virtual_time
                        if isinstance(me.virtual_time, int)
                        else min(facade_open),
                    )
        finally:
            me.exit()
