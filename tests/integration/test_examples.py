"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess (fresh interpreter, like a user
would) with reduced workloads where the CLI allows.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "consumer: got" in out
        assert "GC horizon after the run: INFINITY" in out

    def test_vision_pipeline(self):
        out = run_example("vision_pipeline.py", "--frames", "30", "--fps", "200")
        assert "frames digitized        : 30" in out
        assert "Welcome to the Smart Kiosk" in out

    def test_vision_pipeline_clustered(self):
        out = run_example(
            "vision_pipeline.py", "--frames", "25", "--fps", "200",
            "--spaces", "3",
        )
        assert "3 address space(s)" in out

    def test_stereo_kiosk(self):
        out = run_example("stereo_kiosk.py")
        assert "depth estimates" in out
        assert "mean relative error" in out

    def test_ibr_demo(self):
        out = run_example("ibr_demo.py")
        assert "views synthesized      : 30" in out
        assert "out-of-order completions" in out

    def test_cluster_gc_demo(self):
        out = run_example("cluster_gc_demo.py")
        assert "space-time table" in out
        assert "items reclaimed" in out

    def test_placement_advisor(self):
        out = run_example("placement_advisor.py", "--spaces", "2")
        assert "best for latency" in out
        assert "validating against the discrete-event simulator" in out
