"""Concurrency stress tests: many threads hammering channels with GC live.

These tests exist to catch races between puts/gets/consumes, the parked
remote-request machinery, and the distributed GC daemon — the places where
the paper's "atomic operations on a distributed data structure" claim has to
actually hold.
"""

import random
import threading

import pytest

from repro.core import INFINITY, STM_LATEST_UNSEEN, STM_OLDEST
from repro.errors import (
    AlreadyConsumedError,
    ChannelEmptyError,
    DuplicateTimestampError,
    ItemGarbageCollectedError,
)
from repro.runtime import Cluster, current_thread
from repro.stm import STM


class TestManyProducersManyConsumers:
    @pytest.mark.parametrize("n_spaces,home", [(1, 0), (3, 1)])
    def test_disjoint_timestamp_producers(self, n_spaces, home):
        """P producers write disjoint timestamp sets; C consumers drain
        disjoint partitions; every item arrives exactly once."""
        n_producers, n_consumers, per_producer = 3, 3, 30
        total = n_producers * per_producer
        received: list[tuple[int, int]] = []
        lock = threading.Lock()

        with Cluster(n_spaces=n_spaces, gc_period=0.01) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            stm.create_channel("stress", home=home)

            def producer(index: int) -> None:
                me = current_thread()
                out = STM(cluster.space(me.space.space_id)).lookup(
                    "stress").attach_output()
                for i in range(per_producer):
                    ts = i * n_producers + index
                    me.set_virtual_time(ts)
                    out.put(ts, ts * 7)
                out.detach()

            def consumer(index: int) -> None:
                me = current_thread()
                inp = STM(cluster.space(me.space.space_id)).lookup(
                    "stress").attach_input()
                me.set_virtual_time(INFINITY)
                for ts in range(index, total, n_consumers):
                    item = inp.get(ts, timeout=30.0)
                    with lock:
                        received.append((ts, item.value))
                    inp.consume_until(ts)
                inp.detach()

            threads = []
            for c in range(n_consumers):
                threads.append(
                    cluster.space(c % n_spaces).spawn(
                        consumer, (c,), virtual_time=0)
                )
            for p in range(n_producers):
                threads.append(
                    cluster.space(p % n_spaces).spawn(
                        producer, (p,), virtual_time=0)
                )
            boot.set_virtual_time(INFINITY)
            for t in threads:
                t.join(60.0)
            boot.exit()

        assert sorted(ts for ts, _ in received) == list(range(total))
        assert all(value == ts * 7 for ts, value in received)

    def test_duplicate_racers_exactly_one_wins(self):
        """Two producers race to put the same timestamps: exactly one put
        per timestamp succeeds (atomicity, §4.1)."""
        n_ts = 40
        outcomes: dict[int, int] = {ts: 0 for ts in range(n_ts)}
        lock = threading.Lock()

        with Cluster(n_spaces=2, gc_period=None) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            stm.create_channel("race", home=1)

            def racer(space_id: int) -> None:
                out = STM(cluster.space(space_id)).lookup("race").attach_output()
                for ts in range(n_ts):
                    current_thread().set_virtual_time(ts)
                    try:
                        out.put(ts, space_id)
                        with lock:
                            outcomes[ts] += 1
                    except DuplicateTimestampError:
                        pass
                out.detach()

            threads = [
                cluster.space(s).spawn(racer, (s,), virtual_time=0)
                for s in range(2)
            ]
            boot.set_virtual_time(INFINITY)
            for t in threads:
                t.join(60.0)
            kernel = cluster.space(1)._channel(
                stm.lookup("race").channel_id).kernel
            assert kernel.timestamps() == list(range(n_ts))
            boot.exit()
        assert all(count == 1 for count in outcomes.values())


class TestGcSafetyUnderLoad:
    def test_no_legal_get_ever_hits_collected_item(self):
        """A consumer that follows the discipline (LATEST_UNSEEN +
        consume_until) must never observe ItemGarbageCollectedError even
        with an aggressive GC daemon."""
        violations: list[str] = []

        with Cluster(n_spaces=2, gc_period=0.002) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            stm.create_channel("frames", home=1)

            def producer() -> None:
                me = current_thread()
                out = STM(cluster.space(0)).lookup("frames").attach_output()
                for ts in range(150):
                    me.set_virtual_time(ts)
                    out.put(ts, bytes(256))
                me.set_virtual_time(10**9)
                out.put(10**9, None)
                out.detach()

            def disciplined_consumer() -> None:
                me = current_thread()
                inp = STM(cluster.space(1)).lookup("frames").attach_input()
                me.set_virtual_time(INFINITY)
                while True:
                    try:
                        item = inp.get(STM_LATEST_UNSEEN, timeout=30.0)
                    except ItemGarbageCollectedError as exc:
                        violations.append(str(exc))
                        break
                    inp.consume_until(item.timestamp)
                    if item.value is None:
                        break
                inp.detach()

            threads = [
                cluster.space(1).spawn(disciplined_consumer, virtual_time=0),
                cluster.space(0).spawn(producer, virtual_time=0),
            ]
            boot.set_virtual_time(INFINITY)
            for t in threads:
                t.join(60.0)
            boot.exit()
        assert violations == []

    def test_open_item_survives_aggressive_gc(self):
        """While a consumer holds an item OPEN, even a 1 ms GC daemon must
        not reclaim it (§4.2 contract)."""
        import time

        with Cluster(n_spaces=2, gc_period=0.001) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("precious", home=1)
            out = chan.attach_output()
            out.put(0, b"keep-me")
            inp = chan.attach_input()
            item = inp.get(0)  # OPEN
            boot.set_virtual_time(INFINITY)
            time.sleep(0.1)  # ~100 GC rounds
            kernel = cluster.space(1)._channel(chan.channel_id).kernel
            assert kernel.timestamps() == [0]
            again = inp.get(0)  # still retrievable
            assert again.value == b"keep-me"
            inp.consume(0)
            time.sleep(0.1)
            assert kernel.timestamps() == []  # now it is gone
            boot.exit()

    def test_randomized_mixed_workload_terminates_consistently(self):
        """Randomized ops from several threads; at the end, after full
        consumption and one GC round, every channel is empty."""
        rng = random.Random(42)
        n_threads, n_channels, ops_per_thread = 4, 3, 60

        with Cluster(n_spaces=2, gc_period=0.005) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            for c in range(n_channels):
                stm.create_channel(f"mix{c}", home=c % 2)

            def chaos(seed: int) -> None:
                local = random.Random(seed)
                me = current_thread()
                space = cluster.space(me.space.space_id)
                stm_local = STM(space)
                outs = [
                    stm_local.lookup(f"mix{c}").attach_output()
                    for c in range(n_channels)
                ]
                inps = [
                    stm_local.lookup(f"mix{c}").attach_input()
                    for c in range(n_channels)
                ]
                me.set_virtual_time(INFINITY)
                base = seed * 10_000
                next_ts = base
                for _ in range(ops_per_thread):
                    c = local.randrange(n_channels)
                    action = local.random()
                    try:
                        if action < 0.5:
                            # producers own disjoint ts ranges per thread
                            # (put requires visibility <= ts; INFINITY VT
                            # forbids puts, so temporarily hold an open item)
                            item = inps[c].get(STM_LATEST_UNSEEN, block=False)
                            outs[c].put(item.timestamp + base + 1, item.value)
                            inps[c].consume_until(item.timestamp)
                        elif action < 0.8:
                            item = inps[c].get(STM_OLDEST, block=False)
                            inps[c].consume(item.timestamp)
                        else:
                            item = inps[c].get(STM_LATEST_UNSEEN, block=False)
                            inps[c].consume_until(item.timestamp)
                    except (ChannelEmptyError, AlreadyConsumedError,
                            DuplicateTimestampError):
                        pass
                del next_ts
                for conn in outs + inps:
                    conn.detach()

            # seed each channel with some items
            seed_outs = [
                stm.lookup(f"mix{c}").attach_output() for c in range(n_channels)
            ]
            for c, out in enumerate(seed_outs):
                for ts in range(10):
                    out.put(ts, f"seed-{c}-{ts}")
                out.detach()
            threads = [
                cluster.space(i % 2).spawn(chaos, (i + 1,), virtual_time=0)
                for i in range(n_threads)
            ]
            boot.set_virtual_time(INFINITY)
            for t in threads:
                t.join(60.0)
            # All threads done; remaining items are unconsumed leftovers.
            # Drain: attach a fresh consumer per channel and consume all.
            boot2 = current_thread()
            for c in range(n_channels):
                chan = stm.lookup(f"mix{c}")
                inp = chan.attach_input()
                while True:
                    try:
                        item = inp.get(STM_OLDEST, block=False)
                    except ChannelEmptyError:
                        break
                    inp.consume_until(item.timestamp)
                inp.detach()
            cluster.gc_once()
            for c in range(n_channels):
                chan = stm.lookup(f"mix{c}")
                kernel = cluster.space(chan.handle.home_space)._channel(
                    chan.channel_id).kernel
                assert len(kernel) == 0, f"channel mix{c} not empty"
            del boot2
            boot.exit()
