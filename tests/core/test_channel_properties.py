"""Property-based tests: channel kernel invariants under random op sequences.

These are the heart of the semantic test suite: hypothesis drives arbitrary
interleavings of puts, gets, consumes, attaches, and GC sweeps against one
kernel and checks the §4.1-4.2 invariants after every step.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.channel_state import ChannelKernel, Status
from repro.core.flags import (
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    STM_OLDEST_UNSEEN,
)
from repro.core.item import ItemState
from repro.core.time import INFINITY, vt_le
from repro.errors import AlreadyConsumedError, StampedeError

OUT = 0
INPUTS = [1, 2, 3]


@st.composite
def op(draw):
    kind = draw(
        st.sampled_from(
            ["put", "get_specific", "get_wild", "consume", "consume_until", "gc"]
        )
    )
    ts = draw(st.integers(0, 30))
    conn = draw(st.sampled_from(INPUTS))
    wild = draw(st.sampled_from([STM_LATEST, STM_OLDEST, STM_LATEST_UNSEEN]))
    return (kind, ts, conn, wild)


@given(st.lists(op(), max_size=120), st.one_of(st.none(), st.integers(1, 8)))
@settings(max_examples=150, deadline=None)
# Regression seeds found while building the runtime-parametrized
# conformance suite (PR 8): interleavings whose intermediate states once
# looked suspicious are pinned so they run on every build, not only when
# hypothesis rediscovers them.
@example(
    # consume-before-get then GC at the minimum: the consumed ts must be
    # collected while its successor (the unconsumed minimum) survives.
    ops=[
        ("put", 0, 1, STM_OLDEST),
        ("put", 1, 1, STM_OLDEST),
        ("consume", 0, 1, STM_OLDEST),
        ("consume", 0, 2, STM_OLDEST),
        ("consume", 0, 3, STM_OLDEST),
        ("gc", 0, 1, STM_OLDEST),
        ("get_specific", 1, 2, STM_OLDEST),
    ],
    capacity=None,
)
@example(
    # bounded channel at capacity: a full put is BLOCKED (not an error),
    # and a consume+gc cycle opens the slot again.
    ops=[
        ("put", 0, 1, STM_OLDEST),
        ("put", 1, 1, STM_OLDEST),
        ("consume_until", 0, 1, STM_OLDEST),
        ("consume_until", 0, 2, STM_OLDEST),
        ("consume_until", 0, 3, STM_OLDEST),
        ("gc", 0, 1, STM_OLDEST),
        ("put", 1, 1, STM_OLDEST),
    ],
    capacity=1,
)
@example(
    # LATEST_UNSEEN strict progression across interleaved puts.
    ops=[
        ("put", 5, 1, STM_LATEST_UNSEEN),
        ("get_wild", 0, 1, STM_LATEST_UNSEEN),
        ("put", 3, 1, STM_LATEST_UNSEEN),
        ("get_wild", 0, 1, STM_LATEST_UNSEEN),
        ("put", 9, 1, STM_LATEST_UNSEEN),
        ("get_wild", 0, 1, STM_LATEST_UNSEEN),
    ],
    capacity=None,
)
def test_kernel_invariants_under_random_ops(ops, capacity):
    kernel = ChannelKernel(1, capacity=capacity)
    kernel.attach_output(OUT)
    for conn in INPUTS:
        kernel.attach_input(conn, visibility=0)
    put_timestamps: set[int] = set()
    collected: set[int] = set()
    last_unseen_seen: dict[int, int] = {}

    for kind, ts, conn, wild in ops:
        try:
            if kind == "put":
                result = kernel.put(OUT, ts, bytes([ts % 251]), 1)
                if result.status is Status.OK:
                    put_timestamps.add(ts)
            elif kind == "get_specific":
                result = kernel.get(conn, ts)
                if result.status is Status.OK:
                    assert result.timestamp == ts
                    assert result.payload == bytes([ts % 251])
            elif kind == "get_wild":
                result = kernel.get(conn, wild)
                if result.status is Status.OK:
                    got = result.timestamp
                    assert got in put_timestamps
                    assert got not in collected
                    if wild is STM_LATEST_UNSEEN:
                        # LATEST_UNSEEN is strictly increasing per connection.
                        prev = last_unseen_seen.get(conn)
                        if prev is not None:
                            assert got > prev
                    if conn in last_unseen_seen or wild is STM_LATEST_UNSEEN:
                        last_unseen_seen[conn] = max(
                            last_unseen_seen.get(conn, -1),
                            got if wild is STM_LATEST_UNSEEN else -1,
                        )
            elif kind == "consume":
                kernel.consume(conn, ts)
            elif kind == "consume_until":
                kernel.consume_until(conn, ts)
            elif kind == "gc":
                horizon = kernel.unconsumed_min()
                dead = kernel.collect_below(horizon)
                collected.update(dead)
        except StampedeError:
            pass  # semantic errors are legal outcomes; invariants still hold

        # -- invariants -------------------------------------------------
        stored = set(kernel.timestamps())
        # 1. storage only ever holds put-but-not-collected timestamps
        assert stored <= put_timestamps
        assert not (stored & collected)
        # 2. everything below the horizon is gone
        assert all(t >= kernel.gc_horizon for t in stored)
        # 2b. a bounded channel never exceeds its capacity
        if capacity is not None:
            assert len(stored) <= capacity
        # 3. unconsumed_min is a true lower bound over per-connection views
        umin = kernel.unconsumed_min()
        for c in INPUTS:
            for t in stored:
                if kernel.item_state(c, t) is not ItemState.CONSUMED:
                    assert vt_le(umin, t)
        # 4. GC safety: collecting at the current minimum never removes an
        #    item some connection still considers unconsumed
        if umin is not INFINITY:
            for t in stored:
                if t < umin:
                    for c in INPUTS:
                        assert kernel.item_state(c, t) is ItemState.CONSUMED


class ChannelComparison(RuleBasedStateMachine):
    """Model-based test: kernel vs. a brute-force reference implementation."""

    def __init__(self):
        super().__init__()
        self.kernel = ChannelKernel(1)
        self.kernel.attach_output(OUT)
        self.kernel.attach_input(1, visibility=0)
        # reference state
        self.items: dict[int, bytes] = {}
        self.consumed: set[int] = set()
        self.opened: set[int] = set()
        self.last_gotten = -1

    @rule(ts=st.integers(0, 20))
    def put(self, ts):
        if ts in self.items or ts < self.kernel.gc_horizon:
            return
        assert self.kernel.put(OUT, ts, b"p", 1).status is Status.OK
        self.items[ts] = b"p"

    @rule()
    def get_latest(self):
        result = self.kernel.get(1, STM_LATEST)
        candidates = [t for t in self.items if t not in self.consumed]
        if result.status is Status.OK:
            assert candidates and result.timestamp == max(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = max(self.last_gotten, result.timestamp)
        else:
            assert not candidates

    @rule()
    def get_oldest(self):
        result = self.kernel.get(1, STM_OLDEST)
        candidates = [t for t in self.items if t not in self.consumed]
        if result.status is Status.OK:
            assert candidates and result.timestamp == min(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = max(self.last_gotten, result.timestamp)
        else:
            assert not candidates

    @rule()
    def get_latest_unseen(self):
        result = self.kernel.get(1, STM_LATEST_UNSEEN)
        candidates = [
            t
            for t in self.items
            if t not in self.consumed and t > self.last_gotten
        ]
        if result.status is Status.OK:
            assert candidates and result.timestamp == max(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = result.timestamp
        else:
            assert not candidates

    @rule()
    def get_oldest_unseen(self):
        result = self.kernel.get(1, STM_OLDEST_UNSEEN)
        candidates = [
            t
            for t in self.items
            if t not in self.consumed and t not in self.opened
        ]
        if result.status is Status.OK:
            assert candidates and result.timestamp == min(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = max(self.last_gotten, result.timestamp)
        else:
            assert not candidates

    @rule(ts=st.integers(0, 20))
    def consume_until(self, ts):
        self.kernel.consume_until(1, ts)
        self.consumed.update(range(ts + 1))
        self.opened -= set(range(ts + 1))

    @rule()
    def gc(self):
        horizon = self.kernel.unconsumed_min()
        dead = self.kernel.collect_below(horizon)
        for t in dead:
            # reference agrees the item was consumed
            assert t in self.consumed or t not in self.items
            self.items.pop(t, None)

    @invariant()
    def stored_matches_reference(self):
        assert set(self.kernel.timestamps()) == {
            t for t in self.items if t >= self.kernel.gc_horizon
        }


TestChannelComparison = ChannelComparison.TestCase
TestChannelComparison.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


# ----------------------------------------------------------------------
# §6 eager reclamation: declared refcounts
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 4)), max_size=12,
        unique_by=lambda pr: pr[0],
    ),
    st.lists(st.tuples(st.sampled_from(INPUTS), st.integers(0, 15)), max_size=40),
)
@settings(max_examples=120, deadline=None)
@example(puts=[(0, 1)], consumes=[(1, 0), (2, 0)])       # reclaim on 1st, not 2nd
@example(puts=[(0, 3)], consumes=[(1, 0), (1, 0), (2, 0)])  # same conn counts once
def test_refcount_reclamation_is_exact(puts, consumes):
    """An item with declared refcount r is reclaimed inline exactly when r
    *distinct* connections have consumed it — never earlier, and without
    any GC round (§6)."""
    kernel = ChannelKernel(1)
    kernel.attach_output(OUT)
    for conn in INPUTS:
        kernel.attach_input(conn, visibility=0)
    remaining = {}
    for ts, refcount in puts:
        assert kernel.put(OUT, ts, b"r", 1, refcount).status is Status.OK
        remaining[ts] = refcount
    consumed_by: dict[int, set[int]] = {ts: set() for ts, _ in puts}
    for conn, ts in consumes:
        if ts not in remaining:
            try:
                kernel.consume(conn, ts)
            except StampedeError:
                pass
            continue
        if conn in consumed_by[ts]:
            # a second consume on the same connection is rejected or inert;
            # either way the count must not advance
            try:
                kernel.consume(conn, ts)
            except StampedeError:
                pass
        else:
            kernel.consume(conn, ts)
            consumed_by[ts].add(conn)
        stored = set(kernel.timestamps())
        if len(consumed_by[ts]) >= remaining[ts]:
            assert ts not in stored, (
                f"ts={ts} refcount={remaining[ts]} should be reclaimed after "
                f"{sorted(consumed_by[ts])} consumed it"
            )
        else:
            assert ts in stored, (
                f"ts={ts} reclaimed early: only {len(consumed_by[ts])} of "
                f"{remaining[ts]} declared consumes happened"
            )


# ----------------------------------------------------------------------
# §4.2 attach visibility: implicit consumption of the past
# ----------------------------------------------------------------------
@given(
    st.sets(st.integers(0, 20), min_size=1, max_size=10),
    st.integers(0, 25),
)
@settings(max_examples=120, deadline=None)
@example(timestamps={0, 5, 10}, visibility=5)   # boundary: ts == visibility stays
@example(timestamps={3}, visibility=25)         # everything pre-consumed
def test_attach_implicitly_consumes_below_visibility(timestamps, visibility):
    """A connection attached at visibility v: every stored ts < v is
    CONSUMED on it (gets fail), every ts >= v is UNSEEN (gets succeed) —
    and the connection's GC claim starts at its first ts >= v."""
    kernel = ChannelKernel(1)
    kernel.attach_output(OUT)
    for ts in sorted(timestamps):
        assert kernel.put(OUT, ts, b"v", 1).status is Status.OK
    conn = 99
    kernel.attach_input(conn, visibility=visibility)
    for ts in sorted(timestamps):
        if ts < visibility:
            assert kernel.item_state(conn, ts) is ItemState.CONSUMED
            try:
                result = kernel.get(conn, ts)
            except AlreadyConsumedError:
                pass
            else:
                raise AssertionError(
                    f"get({ts}) below visibility {visibility} returned "
                    f"{result.status} instead of AlreadyConsumedError"
                )
        else:
            result = kernel.get(conn, ts)
            assert result.status is Status.OK and result.timestamp == ts
    live = [ts for ts in timestamps if ts >= visibility]
    expected_min = min(live) if live else INFINITY
    assert kernel.unconsumed_min() == expected_min


# ----------------------------------------------------------------------
# GC never reclaims the unconsumed minimum
# ----------------------------------------------------------------------
@given(
    st.sets(st.integers(0, 20), min_size=1, max_size=10),
    st.integers(0, 20),
)
@settings(max_examples=120, deadline=None)
@example(timestamps={0, 1, 2}, consume_below=1)
def test_gc_never_reclaims_unconsumed_minimum(timestamps, consume_below):
    """Collecting at the self-reported horizon always preserves the oldest
    item some connection still wants — the §4.2 safety condition the whole
    runtime leans on."""
    kernel = ChannelKernel(1)
    kernel.attach_output(OUT)
    kernel.attach_input(1, visibility=0)
    for ts in sorted(timestamps):
        assert kernel.put(OUT, ts, b"g", 1).status is Status.OK
    kernel.consume_until(1, consume_below)
    horizon = kernel.unconsumed_min()
    dead = kernel.collect_below(horizon)
    survivors = [ts for ts in timestamps if ts > consume_below]
    if survivors:
        assert horizon == min(survivors)
        assert min(survivors) in kernel.timestamps()
        assert set(dead) == {ts for ts in timestamps if ts <= consume_below}
    else:
        assert horizon is INFINITY
        assert kernel.timestamps() == []
