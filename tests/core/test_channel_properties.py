"""Property-based tests: channel kernel invariants under random op sequences.

These are the heart of the semantic test suite: hypothesis drives arbitrary
interleavings of puts, gets, consumes, attaches, and GC sweeps against one
kernel and checks the §4.1-4.2 invariants after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.channel_state import ChannelKernel, Status
from repro.core.flags import (
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    STM_OLDEST_UNSEEN,
)
from repro.core.item import ItemState
from repro.core.time import INFINITY, vt_le
from repro.errors import StampedeError

OUT = 0
INPUTS = [1, 2, 3]


@st.composite
def op(draw):
    kind = draw(
        st.sampled_from(
            ["put", "get_specific", "get_wild", "consume", "consume_until", "gc"]
        )
    )
    ts = draw(st.integers(0, 30))
    conn = draw(st.sampled_from(INPUTS))
    wild = draw(st.sampled_from([STM_LATEST, STM_OLDEST, STM_LATEST_UNSEEN]))
    return (kind, ts, conn, wild)


@given(st.lists(op(), max_size=120), st.one_of(st.none(), st.integers(1, 8)))
@settings(max_examples=150, deadline=None)
def test_kernel_invariants_under_random_ops(ops, capacity):
    kernel = ChannelKernel(1, capacity=capacity)
    kernel.attach_output(OUT)
    for conn in INPUTS:
        kernel.attach_input(conn, visibility=0)
    put_timestamps: set[int] = set()
    collected: set[int] = set()
    last_unseen_seen: dict[int, int] = {}

    for kind, ts, conn, wild in ops:
        try:
            if kind == "put":
                result = kernel.put(OUT, ts, bytes([ts % 251]), 1)
                if result.status is Status.OK:
                    put_timestamps.add(ts)
            elif kind == "get_specific":
                result = kernel.get(conn, ts)
                if result.status is Status.OK:
                    assert result.timestamp == ts
                    assert result.payload == bytes([ts % 251])
            elif kind == "get_wild":
                result = kernel.get(conn, wild)
                if result.status is Status.OK:
                    got = result.timestamp
                    assert got in put_timestamps
                    assert got not in collected
                    if wild is STM_LATEST_UNSEEN:
                        # LATEST_UNSEEN is strictly increasing per connection.
                        prev = last_unseen_seen.get(conn)
                        if prev is not None:
                            assert got > prev
                    if conn in last_unseen_seen or wild is STM_LATEST_UNSEEN:
                        last_unseen_seen[conn] = max(
                            last_unseen_seen.get(conn, -1),
                            got if wild is STM_LATEST_UNSEEN else -1,
                        )
            elif kind == "consume":
                kernel.consume(conn, ts)
            elif kind == "consume_until":
                kernel.consume_until(conn, ts)
            elif kind == "gc":
                horizon = kernel.unconsumed_min()
                dead = kernel.collect_below(horizon)
                collected.update(dead)
        except StampedeError:
            pass  # semantic errors are legal outcomes; invariants still hold

        # -- invariants -------------------------------------------------
        stored = set(kernel.timestamps())
        # 1. storage only ever holds put-but-not-collected timestamps
        assert stored <= put_timestamps
        assert not (stored & collected)
        # 2. everything below the horizon is gone
        assert all(t >= kernel.gc_horizon for t in stored)
        # 2b. a bounded channel never exceeds its capacity
        if capacity is not None:
            assert len(stored) <= capacity
        # 3. unconsumed_min is a true lower bound over per-connection views
        umin = kernel.unconsumed_min()
        for c in INPUTS:
            for t in stored:
                if kernel.item_state(c, t) is not ItemState.CONSUMED:
                    assert vt_le(umin, t)
        # 4. GC safety: collecting at the current minimum never removes an
        #    item some connection still considers unconsumed
        if umin is not INFINITY:
            for t in stored:
                if t < umin:
                    for c in INPUTS:
                        assert kernel.item_state(c, t) is ItemState.CONSUMED


class ChannelComparison(RuleBasedStateMachine):
    """Model-based test: kernel vs. a brute-force reference implementation."""

    def __init__(self):
        super().__init__()
        self.kernel = ChannelKernel(1)
        self.kernel.attach_output(OUT)
        self.kernel.attach_input(1, visibility=0)
        # reference state
        self.items: dict[int, bytes] = {}
        self.consumed: set[int] = set()
        self.opened: set[int] = set()
        self.last_gotten = -1

    @rule(ts=st.integers(0, 20))
    def put(self, ts):
        if ts in self.items or ts < self.kernel.gc_horizon:
            return
        assert self.kernel.put(OUT, ts, b"p", 1).status is Status.OK
        self.items[ts] = b"p"

    @rule()
    def get_latest(self):
        result = self.kernel.get(1, STM_LATEST)
        candidates = [t for t in self.items if t not in self.consumed]
        if result.status is Status.OK:
            assert candidates and result.timestamp == max(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = max(self.last_gotten, result.timestamp)
        else:
            assert not candidates

    @rule()
    def get_oldest(self):
        result = self.kernel.get(1, STM_OLDEST)
        candidates = [t for t in self.items if t not in self.consumed]
        if result.status is Status.OK:
            assert candidates and result.timestamp == min(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = max(self.last_gotten, result.timestamp)
        else:
            assert not candidates

    @rule()
    def get_latest_unseen(self):
        result = self.kernel.get(1, STM_LATEST_UNSEEN)
        candidates = [
            t
            for t in self.items
            if t not in self.consumed and t > self.last_gotten
        ]
        if result.status is Status.OK:
            assert candidates and result.timestamp == max(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = result.timestamp
        else:
            assert not candidates

    @rule()
    def get_oldest_unseen(self):
        result = self.kernel.get(1, STM_OLDEST_UNSEEN)
        candidates = [
            t
            for t in self.items
            if t not in self.consumed and t not in self.opened
        ]
        if result.status is Status.OK:
            assert candidates and result.timestamp == min(candidates)
            self.opened.add(result.timestamp)
            self.last_gotten = max(self.last_gotten, result.timestamp)
        else:
            assert not candidates

    @rule(ts=st.integers(0, 20))
    def consume_until(self, ts):
        self.kernel.consume_until(1, ts)
        self.consumed.update(range(ts + 1))
        self.opened -= set(range(ts + 1))

    @rule()
    def gc(self):
        horizon = self.kernel.unconsumed_min()
        dead = self.kernel.collect_below(horizon)
        for t in dead:
            # reference agrees the item was consumed
            assert t in self.consumed or t not in self.items
            self.items.pop(t, None)

    @invariant()
    def stored_matches_reference(self):
        assert set(self.kernel.timestamps()) == {
            t for t in self.items if t >= self.kernel.gc_horizon
        }


TestChannelComparison = ChannelComparison.TestCase
TestChannelComparison.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
