"""Unit tests for virtual time: INFINITY, ordering, minima (paper §4.2)."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.time import (
    INFINITY,
    Infinity,
    is_timestamp,
    validate_timestamp,
    vt_le,
    vt_lt,
    vt_min,
)


class TestInfinity:
    def test_singleton(self):
        assert Infinity() is INFINITY

    def test_pickle_roundtrip_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(INFINITY)) is INFINITY

    def test_greater_than_every_int(self):
        for value in [0, 1, 10**18, -5]:
            assert INFINITY > value
            assert INFINITY >= value
            assert not INFINITY < value
            assert not INFINITY <= value
            assert value < INFINITY
            assert value <= INFINITY

    def test_equality_only_with_itself(self):
        assert INFINITY == Infinity()
        assert INFINITY != 10**18
        assert INFINITY != "INFINITY"

    def test_hashable_and_stable(self):
        assert hash(INFINITY) == hash(Infinity())
        assert len({INFINITY, Infinity()}) == 1

    def test_reflexive_order(self):
        assert INFINITY <= INFINITY
        assert INFINITY >= INFINITY
        assert not INFINITY < INFINITY

    def test_timestamp_arithmetic_saturates(self):
        # The paper allows arithmetic on timestamps; INFINITY absorbs it.
        assert INFINITY + 1 is INFINITY
        assert 1 + INFINITY is INFINITY

    def test_repr(self):
        assert repr(INFINITY) == "INFINITY"


class TestValidation:
    @pytest.mark.parametrize("value", [0, 1, 2**40])
    def test_valid_timestamps(self, value):
        assert is_timestamp(value)
        assert validate_timestamp(value) == value

    @pytest.mark.parametrize("value", [-1, -100])
    def test_negative_rejected(self, value):
        assert not is_timestamp(value)
        with pytest.raises(ValueError):
            validate_timestamp(value)

    @pytest.mark.parametrize("value", [1.0, "3", None, True, INFINITY])
    def test_non_int_rejected(self, value):
        assert not is_timestamp(value)
        with pytest.raises(TypeError):
            validate_timestamp(value)


class TestVtOrder:
    def test_lt_le(self):
        assert vt_lt(1, 2)
        assert not vt_lt(2, 1)
        assert not vt_lt(2, 2)
        assert vt_le(2, 2)
        assert vt_lt(5, INFINITY)
        assert not vt_lt(INFINITY, 5)
        assert vt_le(INFINITY, INFINITY)

    def test_vt_min_empty_is_infinity(self):
        assert vt_min([]) is INFINITY

    def test_vt_min_mixed(self):
        assert vt_min([INFINITY, 7, 3, INFINITY]) == 3
        assert vt_min([INFINITY, INFINITY]) is INFINITY

    @given(st.lists(st.one_of(st.integers(0, 1000), st.just(INFINITY)),
                    min_size=1))
    def test_vt_min_is_lower_bound_and_member(self, values):
        low = vt_min(values)
        assert any(v == low for v in values)
        for v in values:
            assert vt_le(low, v)
