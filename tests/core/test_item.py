"""Unit tests for the per-connection item state machine (paper §4.2)."""

import pytest

from repro.core.flags import UNKNOWN_REFCOUNT
from repro.core.item import InputConnState, ItemRecord, ItemState


class TestItemRecord:
    def test_unknown_refcount_never_reaches_zero(self):
        rec = ItemRecord(timestamp=0, payload=b"", size=0)
        assert not rec.refcounted
        assert rec.dec_refcount() is False
        assert rec.refcount == UNKNOWN_REFCOUNT

    def test_declared_refcount_counts_down(self):
        rec = ItemRecord(timestamp=0, payload=b"", size=0, refcount=2)
        assert rec.refcounted
        assert rec.dec_refcount() is False
        assert rec.dec_refcount() is True

    def test_refcount_clamped_at_zero(self):
        rec = ItemRecord(timestamp=0, payload=b"", size=0, refcount=1)
        assert rec.dec_refcount() is True
        assert rec.dec_refcount() is True  # over-consumption doesn't wrap
        assert rec.refcount == 0


class TestStateMachine:
    def test_initially_unseen(self):
        view = InputConnState(conn_id=1)
        assert view.state_of(5) is ItemState.UNSEEN
        assert view.is_unconsumed(5)

    def test_get_opens(self):
        view = InputConnState(conn_id=1)
        view.note_get(5)
        assert view.state_of(5) is ItemState.OPEN
        assert view.is_unconsumed(5)  # open items are still unconsumed

    def test_consume_from_open(self):
        view = InputConnState(conn_id=1)
        view.note_get(5)
        view.consume_one(5)
        assert view.state_of(5) is ItemState.CONSUMED
        assert view.is_consumed(5)

    def test_consume_direct_from_unseen(self):
        """The UNSEEN -> CONSUMED edge taken by consume_until (§4.2)."""
        view = InputConnState(conn_id=1)
        view.consume_one(5)
        assert view.state_of(5) is ItemState.CONSUMED

    def test_consume_upto_moves_everything_below(self):
        view = InputConnState(conn_id=1)
        view.note_get(3)
        view.consume_upto(7)
        for ts in range(8):
            assert view.state_of(ts) is ItemState.CONSUMED
        assert view.state_of(8) is ItemState.UNSEEN
        assert not view.open_ts

    def test_consume_upto_is_monotone(self):
        view = InputConnState(conn_id=1)
        view.consume_upto(10)
        view.consume_upto(5)  # lower bound: no-op
        assert view.consumed_below == 11

    def test_open_above_watermark_survives_consume_upto(self):
        view = InputConnState(conn_id=1)
        view.note_get(20)
        view.consume_upto(10)
        assert view.state_of(20) is ItemState.OPEN


class TestWatermarkCompaction:
    def test_in_order_consumes_fold_into_watermark(self):
        view = InputConnState(conn_id=1)
        for ts in range(100):
            view.note_get(ts)
            view.consume_one(ts)
        assert view.consumed_below == 100
        assert view.consumed_explicit == set()

    def test_out_of_order_explicit_until_gap_fills(self):
        view = InputConnState(conn_id=1)
        view.consume_one(2)
        view.consume_one(1)
        assert view.consumed_below == 0
        assert view.consumed_explicit == {1, 2}
        view.consume_one(0)  # fills the gap: everything folds
        assert view.consumed_below == 3
        assert view.consumed_explicit == set()


class TestLatestUnseenTracking:
    def test_last_gotten_tracks_max(self):
        view = InputConnState(conn_id=1)
        assert view.last_gotten is None
        view.note_get(5)
        view.note_get(3)  # re-get of an older item doesn't move the mark
        assert view.last_gotten == 5
        view.note_get(9)
        assert view.last_gotten == 9
