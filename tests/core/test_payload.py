"""Unit tests for copy-in/copy-out payload policies (paper §4.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.payload import CopyPolicy, decode, encode, estimate_size


class TestSerializePolicy:
    def test_roundtrip(self):
        stored, size = encode({"a": [1, 2, 3]}, CopyPolicy.SERIALIZE)
        assert isinstance(stored, bytes)
        assert size == len(stored)
        assert decode(stored, CopyPolicy.SERIALIZE) == {"a": [1, 2, 3]}

    def test_copy_in_isolates_putter_buffer(self):
        """§4.1: after a put, the thread may safely reuse its buffer."""
        buf = bytearray(b"hello")
        stored, _ = encode(buf, CopyPolicy.SERIALIZE)
        buf[0] = ord("X")
        assert decode(stored, CopyPolicy.SERIALIZE) == bytearray(b"hello")

    def test_copy_out_isolates_getter_copies(self):
        """§4.1: a client can modify its copy without interfering."""
        stored, _ = encode([1, 2], CopyPolicy.SERIALIZE)
        a = decode(stored, CopyPolicy.SERIALIZE)
        b = decode(stored, CopyPolicy.SERIALIZE)
        a.append(99)
        assert b == [1, 2]

    def test_numpy_roundtrip(self):
        arr = np.arange(12, dtype=np.uint8).reshape(3, 4)
        stored, size = encode(arr, CopyPolicy.SERIALIZE)
        out = decode(stored, CopyPolicy.SERIALIZE)
        np.testing.assert_array_equal(out, arr)
        out[0, 0] = 99
        assert arr[0, 0] == 0  # original untouched

    @given(st.binary(max_size=2048))
    def test_bytes_roundtrip_any_content(self, data):
        stored, _ = encode(data, CopyPolicy.SERIALIZE)
        assert decode(stored, CopyPolicy.SERIALIZE) == data


class TestDeepcopyPolicy:
    def test_roundtrip_and_isolation(self):
        obj = {"nested": [1, [2]]}
        stored, _ = encode(obj, CopyPolicy.DEEPCOPY)
        obj["nested"][1].append(3)
        assert stored["nested"] == [1, [2]]
        out = decode(stored, CopyPolicy.DEEPCOPY)
        out["nested"].append("x")
        assert stored["nested"] == [1, [2]]

    def test_handles_unpicklable(self):
        obj = {"fn": None, "data": [1]}  # deepcopy-able but imagine locks
        stored, _ = encode(obj, CopyPolicy.DEEPCOPY)
        assert stored == obj and stored is not obj


class TestReferencePolicy:
    def test_no_copies_at_all(self):
        obj = {"big": list(range(10))}
        stored, _ = encode(obj, CopyPolicy.REFERENCE)
        assert stored is obj
        assert decode(stored, CopyPolicy.REFERENCE) is obj


class TestEstimateSize:
    def test_bytes_exact(self):
        assert estimate_size(b"12345") == 5
        assert estimate_size(bytearray(7)) == 7
        assert estimate_size(memoryview(b"123")) == 3

    def test_numpy_exact(self):
        arr = np.zeros((10, 10), dtype=np.float64)
        assert estimate_size(arr) == 800

    def test_containers_include_contents(self):
        small = estimate_size([b""])
        big = estimate_size([b"x" * 1000])
        assert big - small >= 1000

    def test_dict_includes_keys_and_values(self):
        assert estimate_size({"k": b"x" * 100}) > 100

    def test_serialized_size_reported(self):
        payload = b"z" * 500
        _, size = encode(payload, CopyPolicy.SERIALIZE)
        assert size >= 500  # pickle adds a small header

    def test_self_referential_list_terminates(self):
        loop = [b"x" * 100]
        loop.append(loop)
        size = estimate_size(loop)
        assert size >= 100  # contents still counted, no RecursionError

    def test_self_referential_dict_terminates(self):
        loop = {"payload": b"y" * 50}
        loop["self"] = loop
        assert estimate_size(loop) >= 50

    def test_mutual_cycle_terminates(self):
        a, b = [b"a" * 10], [b"b" * 10]
        a.append(b)
        b.append(a)
        assert estimate_size(a) >= 20

    def test_shared_subobject_counted_per_reference(self):
        # A DAG is not a cycle: the same buffer reachable twice counts twice,
        # matching what two REFERENCE gets of it would cost.
        shared = [b"s" * 100]
        assert estimate_size([shared, shared]) >= 200

    def test_reference_policy_cyclic_payload(self):
        loop = []
        loop.append(loop)
        stored, size = encode(loop, CopyPolicy.REFERENCE)
        assert stored is loop and size > 0


def test_unknown_policy_rejected():
    with pytest.raises(TypeError):
        encode(b"", "not-a-policy")  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        decode(b"", "not-a-policy")  # type: ignore[arg-type]
