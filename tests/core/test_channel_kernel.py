"""Unit tests for the channel kernel: puts, gets, wildcards (paper §4.1)."""

import pytest

from repro.core.channel_state import BlockReason, ChannelKernel, Status
from repro.core.flags import (
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    UNKNOWN_REFCOUNT,
)
from repro.core.item import ItemState
from repro.core.time import INFINITY
from repro.errors import (
    AlreadyConsumedError,
    ChannelDestroyedError,
    ConnectionClosedError,
    DuplicateTimestampError,
    ItemGarbageCollectedError,
)

OUT, IN = 100, 200  # connection ids used throughout


@pytest.fixture
def chan():
    k = ChannelKernel(channel_id=1)
    k.attach_output(OUT)
    k.attach_input(IN, visibility=0)
    return k


def put(k, ts, payload=b"x", **kw):
    return k.put(OUT, ts, payload, len(payload), **kw)


class TestPut:
    def test_put_and_len(self, chan):
        assert put(chan, 0).status is Status.OK
        assert len(chan) == 1
        assert chan.timestamps() == [0]

    def test_out_of_order_puts_allowed(self, chan):
        """§4.1: replicated threads may put out of timestamp order."""
        for ts in [5, 2, 9, 0]:
            assert put(chan, ts).status is Status.OK
        assert chan.timestamps() == [0, 2, 5, 9]

    def test_duplicate_timestamp_rejected(self, chan):
        put(chan, 3)
        with pytest.raises(DuplicateTimestampError):
            put(chan, 3)

    def test_put_requires_output_connection(self, chan):
        with pytest.raises(ConnectionClosedError):
            chan.put(IN, 0, b"", 0)  # input conn cannot put
        with pytest.raises(ConnectionClosedError):
            chan.put(999, 0, b"", 0)

    def test_put_below_gc_horizon_rejected(self, chan):
        put(chan, 0)
        chan.consume(IN, 0)
        chan.collect_below(5)
        with pytest.raises(ItemGarbageCollectedError):
            put(chan, 2)

    def test_negative_timestamp_rejected(self, chan):
        with pytest.raises(ValueError):
            put(chan, -1)

    def test_bad_refcount_rejected(self, chan):
        with pytest.raises(ValueError):
            put(chan, 0, refcount=-7)

    def test_zero_refcount_item_is_dead_on_arrival(self, chan):
        result = put(chan, 0, refcount=0)
        assert result.status is Status.OK
        assert len(chan) == 0
        assert chan.total_refcount_collected == 1


class TestBoundedChannel:
    def test_blocks_when_full(self):
        k = ChannelKernel(1, capacity=2)
        k.attach_output(OUT)
        k.put(OUT, 0, b"a", 1)
        k.put(OUT, 1, b"b", 1)
        result = k.put(OUT, 2, b"c", 1)
        assert result.status is Status.BLOCKED
        assert result.reason is BlockReason.CHANNEL_FULL

    def test_capacity_freed_by_gc(self):
        k = ChannelKernel(1, capacity=1)
        k.attach_output(OUT)
        k.put(OUT, 0, b"a", 1)
        assert k.put(OUT, 1, b"b", 1).status is Status.BLOCKED
        k.collect_below(1)
        assert k.put(OUT, 1, b"b", 1).status is Status.OK

    def test_capacity_freed_by_refcount_collection(self):
        k = ChannelKernel(1, capacity=1)
        k.attach_output(OUT)
        k.attach_input(IN, visibility=0)
        k.put(OUT, 0, b"a", 1, refcount=1)
        k.get(IN, 0)
        k.consume(IN, 0)  # eager reclamation frees the slot
        assert k.put(OUT, 1, b"b", 1).status is Status.OK

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ChannelKernel(1, capacity=0)


class TestGetSpecific:
    def test_get_returns_payload_and_opens(self, chan):
        put(chan, 4, b"data")
        result = chan.get(IN, 4)
        assert result.status is Status.OK
        assert result.payload == b"data"
        assert result.timestamp == 4
        assert result.size == 4
        assert chan.item_state(IN, 4) is ItemState.OPEN

    def test_get_missing_blocks_with_neighbours(self, chan):
        put(chan, 1)
        put(chan, 7)
        result = chan.get(IN, 4)
        assert result.status is Status.BLOCKED
        assert result.reason is BlockReason.NO_MATCHING_ITEM
        assert result.timestamp_range == (1, 7)

    def test_neighbours_skip_consumed(self, chan):
        for ts in [1, 3, 7]:
            put(chan, ts)
        chan.consume(IN, 1)
        result = chan.get(IN, 4)
        assert result.timestamp_range == (3, 7)

    def test_get_consumed_raises(self, chan):
        put(chan, 2)
        chan.consume(IN, 2)
        with pytest.raises(AlreadyConsumedError):
            chan.get(IN, 2)

    def test_get_below_horizon_raises_with_neighbours(self, chan):
        put(chan, 0)
        put(chan, 9)
        chan.consume(IN, 0)
        chan.collect_below(5)
        with pytest.raises(ItemGarbageCollectedError) as exc_info:
            chan.get(IN, 0)
        assert exc_info.value.timestamp_range == (None, 9)

    def test_reget_of_open_item_is_idempotent(self, chan):
        put(chan, 2, b"v")
        first = chan.get(IN, 2)
        second = chan.get(IN, 2)
        assert first.payload == second.payload
        assert chan.item_state(IN, 2) is ItemState.OPEN


class TestWildcards:
    def test_latest_and_oldest(self, chan):
        for ts in [3, 1, 8]:
            put(chan, ts)
        assert chan.get(IN, STM_LATEST).timestamp == 8
        assert chan.get(IN, STM_OLDEST).timestamp == 1

    def test_latest_skips_consumed(self, chan):
        for ts in [1, 2, 3]:
            put(chan, ts)
        chan.consume(IN, 3)
        assert chan.get(IN, STM_LATEST).timestamp == 2

    def test_oldest_skips_consumed(self, chan):
        for ts in [1, 2, 3]:
            put(chan, ts)
        chan.consume(IN, 1)
        assert chan.get(IN, STM_OLDEST).timestamp == 2

    def test_latest_unseen_advances(self, chan):
        """The Fig. 7 tracker pattern: each get sees something newer."""
        for ts in range(3):
            put(chan, ts)
        assert chan.get(IN, STM_LATEST_UNSEEN).timestamp == 2
        result = chan.get(IN, STM_LATEST_UNSEEN)
        assert result.status is Status.BLOCKED  # nothing newer than 2 yet
        put(chan, 5)
        assert chan.get(IN, STM_LATEST_UNSEEN).timestamp == 5

    def test_latest_unseen_skips_stale_items(self, chan):
        put(chan, 0)
        chan.get(IN, STM_LATEST_UNSEEN)
        for ts in [1, 2, 3]:
            put(chan, ts)
        # 1 and 2 are skipped entirely:
        assert chan.get(IN, STM_LATEST_UNSEEN).timestamp == 3

    def test_latest_unseen_is_per_connection(self, chan):
        chan.attach_input(300, visibility=0)
        put(chan, 0)
        assert chan.get(IN, STM_LATEST_UNSEEN).timestamp == 0
        # the other connection has not seen anything yet:
        assert chan.get(300, STM_LATEST_UNSEEN).timestamp == 0

    def test_empty_channel_blocks(self, chan):
        for wc in (STM_LATEST, STM_OLDEST, STM_LATEST_UNSEEN):
            assert chan.get(IN, wc).status is Status.BLOCKED


class TestLifecycle:
    def test_attach_duplicate_conn_id_rejected(self, chan):
        with pytest.raises(ValueError):
            chan.attach_input(IN, visibility=0)
        with pytest.raises(ValueError):
            chan.attach_output(OUT)

    def test_detach_unknown_rejected(self, chan):
        with pytest.raises(ConnectionClosedError):
            chan.detach(12345)

    def test_detach_then_use_rejected(self, chan):
        chan.detach(IN)
        with pytest.raises(ConnectionClosedError):
            chan.get(IN, STM_LATEST)

    def test_destroyed_channel_rejects_everything(self, chan):
        chan.destroy()
        with pytest.raises(ChannelDestroyedError):
            put(chan, 0)
        with pytest.raises(ChannelDestroyedError):
            chan.get(IN, STM_LATEST)
        with pytest.raises(ChannelDestroyedError):
            chan.consume(IN, 0)

    def test_stats_counters(self, chan):
        put(chan, 0, b"abcd")
        chan.get(IN, 0)
        chan.consume(IN, 0)
        assert chan.total_puts == 1
        assert chan.total_gets == 1
        assert chan.total_consumes == 1
        assert chan.bytes_put == 4
        assert chan.bytes_got == 4

    def test_stored_bytes(self, chan):
        put(chan, 0, b"abcd")
        put(chan, 1, b"zz")
        assert chan.stored_bytes() == 6

    def test_oldest_latest_introspection(self, chan):
        assert chan.oldest() is None and chan.latest() is None
        put(chan, 3)
        put(chan, 8)
        assert chan.oldest() == 3
        assert chan.latest() == 8


class TestOldestUnseen:
    """The OLDEST_UNSEEN wildcard: in-order traversal with retention."""

    def test_walks_stream_front_to_back(self, chan):
        from repro.core.flags import STM_OLDEST_UNSEEN

        for ts in [2, 0, 1]:
            put(chan, ts)
        seen = [chan.get(IN, STM_OLDEST_UNSEEN).timestamp for _ in range(3)]
        assert seen == [0, 1, 2]

    def test_skips_open_items_but_not_unseen(self, chan):
        from repro.core.flags import STM_OLDEST_UNSEEN

        for ts in range(3):
            put(chan, ts)
        chan.get(IN, 1)  # 1 becomes OPEN
        assert chan.get(IN, STM_OLDEST_UNSEEN).timestamp == 0
        # 1 stays open (already gotten); the walk proceeds to 2:
        assert chan.get(IN, STM_OLDEST_UNSEEN).timestamp == 2

    def test_skips_consumed(self, chan):
        from repro.core.flags import STM_OLDEST_UNSEEN

        for ts in range(4):
            put(chan, ts)
        chan.consume_until(IN, 1)
        assert chan.get(IN, STM_OLDEST_UNSEEN).timestamp == 2

    def test_blocks_when_everything_seen(self, chan):
        from repro.core.flags import STM_OLDEST_UNSEEN
        from repro.core.channel_state import Status

        put(chan, 0)
        chan.get(IN, STM_OLDEST_UNSEEN)
        assert chan.get(IN, STM_OLDEST_UNSEEN).status is Status.BLOCKED
        put(chan, 1)
        assert chan.get(IN, STM_OLDEST_UNSEEN).timestamp == 1

    def test_retention_differs_from_latest_unseen(self, chan):
        """LATEST_UNSEEN jumps to the newest and never returns; the oldest
        variant visits every unseen item exactly once, in order."""
        from repro.core.flags import STM_OLDEST_UNSEEN

        for ts in range(5):
            put(chan, ts)
        assert chan.get(IN, STM_LATEST_UNSEEN).timestamp == 4
        # items 0-3 were skipped by LATEST_UNSEEN but remain UNSEEN:
        walked = [chan.get(IN, STM_OLDEST_UNSEEN).timestamp for _ in range(4)]
        assert walked == [0, 1, 2, 3]
