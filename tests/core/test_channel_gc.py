"""Unit tests for consume semantics and kernel-level GC (paper §4.2, §6)."""

import pytest

from repro.core.channel_state import ChannelKernel
from repro.core.flags import STM_OLDEST
from repro.core.item import ItemState
from repro.core.time import INFINITY
from repro.errors import NotOpenError

OUT, A, B = 1, 2, 3


@pytest.fixture
def chan():
    k = ChannelKernel(1)
    k.attach_output(OUT)
    k.attach_input(A, visibility=0)
    return k


def fill(k, n, refcount=-1):
    for ts in range(n):
        k.put(OUT, ts, b"x", 1, refcount)


class TestConsume:
    def test_consume_is_idempotent(self, chan):
        fill(chan, 1)
        chan.consume(A, 0)
        chan.consume(A, 0)  # no error
        assert chan.total_consumes == 1  # second call was a no-op

    def test_strict_consume_requires_open(self, chan):
        fill(chan, 1)
        with pytest.raises(NotOpenError):
            chan.consume(A, 0, strict=True)
        chan.get(A, 0)
        chan.consume(A, 0, strict=True)
        assert chan.item_state(A, 0) is ItemState.CONSUMED

    def test_consume_absent_timestamp_allowed(self, chan):
        chan.consume(A, 42)  # may never be put; marking is what matters
        fill(chan, 1)
        assert chan.item_state(A, 42) is ItemState.CONSUMED

    def test_consume_until_sweeps_unseen(self, chan):
        fill(chan, 5)
        chan.consume_until(A, 3)
        for ts in range(4):
            assert chan.item_state(A, ts) is ItemState.CONSUMED
        assert chan.item_state(A, 4) is ItemState.UNSEEN


class TestUnconsumedMin:
    def test_empty_channel_is_infinity(self, chan):
        assert chan.unconsumed_min() is INFINITY

    def test_min_over_single_connection(self, chan):
        fill(chan, 4)
        assert chan.unconsumed_min() == 0
        chan.consume(A, 0)
        assert chan.unconsumed_min() == 1
        chan.consume_until(A, 3)
        assert chan.unconsumed_min() is INFINITY

    def test_open_items_still_count(self, chan):
        """An OPEN item is unconsumed and pins the minimum (§4.2)."""
        fill(chan, 3)
        chan.get(A, 0)
        chan.consume_until(A, 2)  # consumes everything including the open 0
        assert chan.unconsumed_min() is INFINITY
        # but a get that stays open pins:
        chan.put(OUT, 5, b"x", 1)
        chan.get(A, 5)
        assert chan.unconsumed_min() == 5

    def test_min_is_minimum_across_connections(self, chan):
        chan.attach_input(B, visibility=0)
        fill(chan, 4)
        chan.consume_until(A, 2)
        assert chan.unconsumed_min() == 0  # B has everything unconsumed
        chan.consume_until(B, 3)
        assert chan.unconsumed_min() == 3  # A still owes 3

    def test_no_input_connections_is_infinity(self):
        k = ChannelKernel(1)
        k.attach_output(OUT)
        k.put(OUT, 0, b"x", 1)
        assert k.unconsumed_min() is INFINITY

    def test_detach_releases_claims(self, chan):
        chan.attach_input(B, visibility=0)
        fill(chan, 3)
        chan.consume_until(A, 2)
        assert chan.unconsumed_min() == 0
        chan.detach(B)
        assert chan.unconsumed_min() is INFINITY


class TestAttachVisibility:
    def test_attach_consumes_below_visibility(self, chan):
        """§4.2: new input connections implicitly consume items < visibility."""
        fill(chan, 6)
        chan.attach_input(B, visibility=4)
        assert chan.item_state(B, 3) is ItemState.CONSUMED
        assert chan.item_state(B, 4) is ItemState.UNSEEN
        assert chan.unconsumed_min() == 0  # A's claims unaffected

    def test_attach_with_infinity_consumes_all_current(self, chan):
        fill(chan, 3)
        chan.attach_input(B, visibility=INFINITY)
        for ts in range(3):
            assert chan.item_state(B, ts) is ItemState.CONSUMED
        # B contributes nothing to the minimum:
        chan.consume_until(A, 2)
        assert chan.unconsumed_min() is INFINITY

    def test_attach_to_empty_with_infinity_sees_future_items(self, chan):
        chan.attach_input(B, visibility=INFINITY)
        chan.put(OUT, 7, b"x", 1)
        assert chan.item_state(B, 7) is ItemState.UNSEEN
        assert chan.get(B, 7).timestamp == 7


class TestCollectBelow:
    def test_collects_prefix_and_raises_horizon(self, chan):
        fill(chan, 6)
        chan.consume_until(A, 5)
        dead = chan.collect_below(4)
        assert dead == [0, 1, 2, 3]
        assert chan.gc_horizon == 4
        assert chan.timestamps() == [4, 5]

    def test_horizon_monotone(self, chan):
        fill(chan, 3)
        chan.consume_until(A, 2)
        chan.collect_below(3)
        chan.collect_below(1)  # lower horizon: no-op
        assert chan.gc_horizon == 3

    def test_collect_infinity_reclaims_everything(self, chan):
        fill(chan, 4)
        chan.consume_until(A, 3)
        dead = chan.collect_below(INFINITY)
        assert dead == [0, 1, 2, 3]
        assert len(chan) == 0

    def test_collect_counts(self, chan):
        fill(chan, 5)
        chan.consume_until(A, 4)
        chan.collect_below(5)
        assert chan.total_collected == 5


class TestRefcountGC:
    def test_item_dies_at_last_consume(self, chan):
        chan.attach_input(B, visibility=0)
        chan.put(OUT, 0, b"x", 1, 2)  # two declared consumers
        chan.get(A, 0)
        chan.consume(A, 0)
        assert 0 in chan.items  # B still owed
        chan.get(B, 0)
        chan.consume(B, 0)
        assert 0 not in chan.items
        assert chan.total_refcount_collected == 1

    def test_unknown_refcount_waits_for_reachability(self, chan):
        chan.put(OUT, 0, b"x", 1)
        chan.get(A, 0)
        chan.consume(A, 0)
        assert 0 in chan.items  # still stored: daemon must reclaim
        chan.collect_below(1)
        assert 0 not in chan.items

    def test_consume_until_decrements_covered_items(self, chan):
        for ts in range(3):
            chan.put(OUT, ts, b"x", 1, 1)
        chan.consume_until(A, 2)
        assert len(chan) == 0
        assert chan.total_refcount_collected == 3

    def test_version_bumps_on_mutations(self, chan):
        v0 = chan.version
        fill(chan, 1)
        assert chan.version > v0
        v1 = chan.version
        chan.get(A, 0)
        assert chan.version > v1
        v2 = chan.version
        chan.consume(A, 0)
        assert chan.version > v2
