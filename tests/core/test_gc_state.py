"""Unit tests for global-minimum arithmetic (paper §4.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.gc_state import LocalGCSummary, compute_global_min, merge_summaries
from repro.core.time import INFINITY, vt_le


class TestComputeGlobalMin:
    def test_empty_system_is_infinity(self):
        assert compute_global_min([], []) is INFINITY

    def test_thread_term_dominates(self):
        assert compute_global_min([5, INFINITY], [9]) == 5

    def test_channel_term_dominates(self):
        assert compute_global_min([INFINITY], [3, 7]) == 3

    def test_all_infinite(self):
        assert compute_global_min([INFINITY], [INFINITY]) is INFINITY


class TestLocalSummary:
    def test_local_min(self):
        s = LocalGCSummary(
            space_id=0,
            thread_visibilities=[10, INFINITY],
            channel_mins={1: 4, 2: INFINITY},
        )
        assert s.local_min() == 4

    def test_empty_summary(self):
        assert LocalGCSummary(space_id=0).local_min() is INFINITY


class TestMergeSummaries:
    def test_merge_takes_global_min(self):
        a = LocalGCSummary(0, [7], {1: 9})
        b = LocalGCSummary(1, [INFINITY], {2: 3})
        assert merge_summaries([a, b]) == 3

    def test_merge_empty(self):
        assert merge_summaries([]) is INFINITY

    @given(
        st.lists(
            st.tuples(
                st.lists(st.one_of(st.integers(0, 100), st.just(INFINITY)),
                         max_size=5),
                st.lists(st.one_of(st.integers(0, 100), st.just(INFINITY)),
                         max_size=5),
            ),
            max_size=6,
        )
    )
    def test_merge_equals_flat_min(self, space_terms):
        summaries = [
            LocalGCSummary(i, vis, dict(enumerate(chans)))
            for i, (vis, chans) in enumerate(space_terms)
        ]
        merged = merge_summaries(summaries)
        all_vis = [v for vis, _ in space_terms for v in vis]
        all_chan = [c for _, chans in space_terms for c in chans]
        flat = compute_global_min(all_vis, all_chan)
        assert merged == flat
        # and it is a lower bound of every term
        for v in all_vis + all_chan:
            assert vt_le(merged, v)
