"""Tests for the exception hierarchy's contracts."""

import pickle

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_stampede_error(self):
        for name in errors.__all__:
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.StampedeError), name

    def test_stm_family(self):
        for exc_type in (
            errors.ChannelFullError,
            errors.ChannelEmptyError,
            errors.DuplicateTimestampError,
            errors.NoSuchItemError,
            errors.VisibilityError,
            errors.VirtualTimeError,
        ):
            assert issubclass(exc_type, errors.STMError)

    def test_gc_and_consumed_are_no_such_item(self):
        """Callers catching NoSuchItemError handle both terminal miss kinds."""
        assert issubclass(errors.ItemGarbageCollectedError, errors.NoSuchItemError)
        assert issubclass(errors.AlreadyConsumedError, errors.NoSuchItemError)

    def test_transport_family(self):
        assert issubclass(errors.TransportClosedError, errors.TransportError)
        assert issubclass(errors.PacketTooLargeError, errors.TransportError)

    def test_simulation_family(self):
        assert issubclass(errors.SimDeadlockError, errors.SimulationError)


class TestPayloads:
    def test_no_such_item_carries_timestamp_range(self):
        exc = errors.NoSuchItemError("missing", timestamp_range=(3, 9))
        assert exc.timestamp_range == (3, 9)
        assert errors.NoSuchItemError("missing").timestamp_range is None

    def test_slippage_carries_lateness(self):
        exc = errors.RealTimeSlippageError("late", lateness=0.25)
        assert exc.lateness == 0.25

    def test_errors_survive_pickling(self):
        """Exceptions cross address spaces inside RpcReply: they must pickle."""
        for exc in (
            errors.ChannelFullError("full"),
            errors.NoSuchItemError("gone", timestamp_range=(1, 2)),
            errors.VisibilityError("below"),
            errors.RealTimeSlippageError("late", lateness=1.5),
        ):
            out = pickle.loads(pickle.dumps(exc))
            assert type(out) is type(exc)
            assert str(out) == str(exc)
            assert out.__dict__ == exc.__dict__  # payload attributes survive

    def test_catching_the_family(self):
        with pytest.raises(errors.StampedeError):
            raise errors.ChannelDestroyedError("gone")
        with pytest.raises(errors.STMError):
            raise errors.AlreadyConsumedError("used")
