"""Crash and wedge detection in the process runtime.

A space process that dies must surface as a clean
:class:`~repro.errors.TransportClosedError` in every blocked caller — never
a hang — and a process that is alive but not scheduling (SIGSTOP) must be
caught by the heartbeat timeout.  Both paths funnel into
``ProcCluster._on_space_failure``, which poisons the parent endpoint.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import TransportClosedError
from repro.runtime.procs import ProcCluster
from repro.stm import STM


class TestCrashPropagation:
    def test_killed_space_fails_blocked_get(self):
        """SIGKILL mid-blocked-get: the get raises instead of hanging."""
        with ProcCluster(
            n_spaces=2, gc_period=None,
            heartbeat_interval=0.2, heartbeat_timeout=1.0,
        ) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("sup.frames", home=1)
            inp = chan.attach_input()
            victim = cluster._procs[1].pid

            killer = threading.Timer(0.3, os.kill, (victim, signal.SIGKILL))
            killer.start()
            t0 = time.monotonic()
            try:
                # Nothing will ever be put: only the crash can end this get,
                # and it must do so within the heartbeat timeout.
                with pytest.raises(TransportClosedError):
                    inp.get(0, timeout=10.0)
                detect_s = time.monotonic() - t0
                assert detect_s < 0.3 + 1.0 + 1.0  # kill delay + timeout + slack
                assert cluster.wait_failed(timeout=5.0)
                with pytest.raises(TransportClosedError):
                    cluster.check_failure()
            finally:
                killer.cancel()
                me.exit()

    def test_wedged_space_trips_heartbeat_timeout(self):
        """SIGSTOP (alive but not scheduling): heartbeats catch it."""
        cluster = ProcCluster(
            n_spaces=2, gc_period=None,
            heartbeat_interval=0.2, heartbeat_timeout=0.8,
        )
        victim = cluster._procs[1].pid
        try:
            time.sleep(0.5)  # let a few heartbeats land first
            os.kill(victim, signal.SIGSTOP)
            t0 = time.monotonic()
            assert cluster.wait_failed(timeout=5.0)
            detect_s = time.monotonic() - t0
            assert detect_s < 0.8 + 1.0  # timeout + supervisor poll slack
            assert "heartbeat" in str(cluster.failure)
        finally:
            os.kill(victim, signal.SIGCONT)  # so shutdown can reap it
            cluster.shutdown()
        with pytest.raises(OSError):
            os.kill(victim, 0)  # reaped: no such process

    def test_failure_poisons_later_calls(self):
        """After a crash, cluster RPC surfaces the failure immediately."""
        with ProcCluster(
            n_spaces=2, gc_period=None,
            heartbeat_interval=0.2, heartbeat_timeout=1.0,
        ) as cluster:
            os.kill(cluster._procs[1].pid, signal.SIGKILL)
            assert cluster.wait_failed(timeout=5.0)
            with pytest.raises(TransportClosedError):
                cluster.endpoint_stats(1)
