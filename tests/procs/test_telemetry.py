"""End-to-end telemetry-plane tests on a real multi-process cluster.

Two things only a live :class:`~repro.runtime.procs.ProcCluster` can prove:

* **arming propagation** — programmatic ``events.enable()`` in the parent
  must reach spawn children, which re-import everything and inherit no
  environment variable (the pre-PR-10 bug: children silently ran dark);
* **the merged document** — a traced 3-space kiosk fleet run must harvest
  into one Chrome trace with spans from every process, cross-process flow
  arrows, a clean validator pass, and a coherent space-time lag report.

Worker functions are module-level so ``spawn`` ships them by import
reference.
"""

import pytest

from repro.kiosk.procfleet import FleetConfig, run_fleet
from repro.obs import events as obs_events
from repro.obs.export import lag_report_from_doc, validate_chrome_trace
from repro.runtime.procs import ProcCluster

N_FRAMES = 12


@pytest.fixture(autouse=True)
def disarmed_tracing():
    """Tracing is process-global; leave every test the way it started."""
    obs_events.disable()
    yield
    obs_events.disable()


def _tick_worker(n: int) -> int:
    """Advance virtual time n times — each tick lands in the local ring."""
    from repro.runtime.threads import require_current_thread

    me = require_current_thread()
    for ts in range(n):
        me.set_virtual_time(ts)
    return n


class TestArmingPropagation:
    def test_programmatic_enable_reaches_children(self):
        """The regression: enable() without STMOBS in the environ must
        still arm spawn children, or a traced multi-process run harvests
        empty rings from every child."""
        obs_events.enable(capacity=16384)
        with ProcCluster(n_spaces=2, gc_period=None) as cluster:
            worker = cluster.space(0).spawn(
                _tick_worker, (5,), on_space=1, name="ticker"
            )
            worker.join(timeout=30.0)
            harvest = cluster.harvest_telemetry()
        assert harvest.spaces() == [0, 1]
        child = next(p for p in harvest.processes if p.space == 1)
        events = [ev for ring in child.rings for ev in ring["events"]]
        assert events, "child process recorded nothing: arming was lost"
        # The ticks specifically made it into the child's rings.
        vt = [ev for ev in events if ev[0] == "C" and ev[1] == "vt"]
        assert len(vt) == 5

    def test_disarm_on_harvest_stops_child_recording(self):
        obs_events.enable(capacity=16384)
        with ProcCluster(n_spaces=2, gc_period=None) as cluster:
            first = cluster.space(0).spawn(
                _tick_worker, (3,), on_space=1, name="ticker-1"
            )
            first.join(timeout=30.0)
            cluster.harvest_telemetry(disarm=True)
            second = cluster.space(0).spawn(
                _tick_worker, (3,), on_space=1, name="ticker-2"
            )
            second.join(timeout=30.0)
            again = cluster.harvest_telemetry()
        child = next(p for p in again.processes if p.space == 1)
        assert child.rings == []  # tracer disarmed by the first harvest

    def test_shutdown_leaves_final_harvest_on_cluster(self):
        obs_events.enable(capacity=16384)
        with ProcCluster(n_spaces=2, gc_period=None) as cluster:
            worker = cluster.space(0).spawn(
                _tick_worker, (4,), on_space=1, name="ticker"
            )
            worker.join(timeout=30.0)
        assert cluster.telemetry is not None
        assert cluster.telemetry.spaces() == [0, 1]

    def test_disarmed_cluster_still_harvests_metrics(self):
        with ProcCluster(n_spaces=2, gc_period=None) as cluster:
            worker = cluster.space(0).spawn(
                _tick_worker, (3,), on_space=1, name="ticker"
            )
            worker.join(timeout=30.0)
            harvest = cluster.harvest_telemetry()
        assert all(p.rings == [] for p in harvest.processes)
        dump = harvest.metrics_dump()
        wire = dump.get("clf_wire_bytes_total", [])
        spaces = {entry["labels"].get("space") for entry in wire}
        # Both sides' wire counters came through, space-labelled.
        assert {0, 1} <= spaces
        assert cluster.telemetry is None  # nothing to save disarmed


@pytest.fixture(scope="module")
def fleet_harvest():
    """One traced 3-space kiosk fleet run, harvested and merged."""
    obs_events.disable()
    obs_events.enable(capacity=65536)
    try:
        with ProcCluster(n_spaces=3, gc_period=0.02) as cluster:
            result = run_fleet(
                cluster,
                FleetConfig(n_frames=N_FRAMES),
                collect_telemetry=True,
            )
    finally:
        obs_events.disable()
    assert result.telemetry is not None
    return result, result.telemetry, result.telemetry.chrome_trace()


class TestFleetMergedTrace:
    def test_pipeline_actually_ran(self, fleet_harvest):
        result, _telemetry, _doc = fleet_harvest
        assert result.frames_tracked == N_FRAMES

    def test_every_process_harvested(self, fleet_harvest):
        _result, telemetry, _doc = fleet_harvest
        assert telemetry.spaces() == [0, 1, 2]
        for proc in telemetry.processes:
            assert proc.rings, f"space {proc.space} harvested no events"

    def test_children_clock_offsets_estimated(self, fleet_harvest):
        _result, telemetry, _doc = fleet_harvest
        offsets = {p.space: p.clock_offset_ns for p in telemetry.processes}
        assert offsets[0] == 0  # the collector is its own reference

    def test_merged_document_validates(self, fleet_harvest):
        _result, _telemetry, doc = fleet_harvest
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["processes"] == 3

    def test_spans_from_every_process(self, fleet_harvest):
        _result, _telemetry, doc = fleet_harvest
        span_pids = {ev["pid"] for ev in doc["traceEvents"]
                     if ev["ph"] == "X"}
        assert span_pids == {0, 1, 2}
        meta_pids = {ev["pid"] for ev in doc["traceEvents"]
                     if ev["ph"] == "M" and ev["name"] == "process_name"}
        assert meta_pids == {0, 1, 2}

    def test_cross_process_flows_stitched(self, fleet_harvest):
        _result, _telemetry, doc = fleet_harvest
        starts = {ev["id"]: ev for ev in doc["traceEvents"]
                  if ev["ph"] == "s"}
        finishes = {ev["id"]: ev for ev in doc["traceEvents"]
                    if ev["ph"] == "f"}
        assert starts, "no flow arrows in a traced cluster run"
        assert set(starts) == set(finishes)  # never half-drawn
        crossings = [
            fid for fid, s in starts.items()
            if finishes[fid]["pid"] != s["pid"]
        ]
        assert crossings, "every flow stayed inside one process"
        # Causal offset refinement guarantees no message arrives before it
        # was sent on the merged timeline (probe estimates alone cannot).
        for fid in crossings:
            assert finishes[fid]["ts"] >= starts[fid]["ts"]

    def test_lag_report_consistent_with_run(self, fleet_harvest):
        _result, _telemetry, doc = fleet_harvest
        report = lag_report_from_doc(doc)
        by_thread = {entry["thread"]: entry for entry in report}
        digitizer = by_thread["fleet-digitizer"]
        # The digitizer ticked 0..N_FRAMES on space 1's clock; after the
        # offset mapping the merged doc must tell the same story.
        assert digitizer["space"] == 1
        assert digitizer["first_vt"] == 0
        assert digitizer["last_vt"] == N_FRAMES
        assert digitizer["ticks"] == N_FRAMES + 1
        assert digitizer["wall_seconds"] >= 0

    def test_merged_metrics_per_space(self, fleet_harvest):
        _result, telemetry, _doc = fleet_harvest
        dump = telemetry.metrics_dump()
        put_spaces = {entry["labels"].get("space")
                      for entry in dump.get("stm_put_ns", [])}
        assert len(put_spaces) >= 2  # puts observed in several processes
        snap = telemetry.metrics_snapshot()
        assert any(entry["count"] for entry in snap.get("stm_put_ns", []))
