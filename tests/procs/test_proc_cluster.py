"""Integration tests for the multi-process cluster runtime.

Each test boots a real :class:`~repro.runtime.procs.ProcCluster` — spawned
child processes, shared-memory rings, TCP doorbells — so they cover the
whole bootstrap (rings → name service → mesh) plus the STM data plane over
real media.  Worker functions are module-level: the ``spawn`` start method
ships them to children by import reference.
"""

import os

import pytest

from repro.core import INFINITY
from repro.errors import StampedeError
from repro.obs.metrics import REGISTRY
from repro.runtime.procs import ProcCluster
from repro.runtime.sync import clear_factories, install_factories
from repro.stm import STM


def _wire_bytes(medium: str, direction: str):
    return REGISTRY.counter(
        "clf_wire_bytes_total", space=0, medium=medium, direction=direction
    ).value


def _echo_worker(n_rounds: int) -> int:
    """Get from pr.work, double, put to pr.result (timestamps inherited)."""
    from repro.runtime.threads import require_current_thread

    stm = STM.here()
    me = require_current_thread()
    inp = stm.lookup("pr.work", wait=True).attach_input()
    out = stm.lookup("pr.result", wait=True).attach_output()
    me.set_virtual_time(INFINITY)
    try:
        for ts in range(n_rounds):
            item = inp.get(ts)
            out.put(ts, item.value * 2, refcount=1)
            inp.consume(ts)
    finally:
        inp.detach()
        out.detach()
    return n_rounds


class TestDataPlane:
    def test_remote_put_get_through_shm_ring(self):
        payload = os.urandom(1 << 20)
        with ProcCluster(n_spaces=3, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("pr.frames", home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            shm_tx_before = _wire_bytes("shm", "tx")
            out.put(0, payload, refcount=1)
            item = inp.get_consume(0)
            assert item.value == payload
            # The megabyte went through the ring, not the TCP fallback.
            assert _wire_bytes("shm", "tx") - shm_tx_before >= len(payload)
            # The remote space's own counters are visible over RPC.
            child = cluster.endpoint_stats(1)
            assert child["clf"]["messages_received"] >= 1
            assert child["frames"]["frames_decoded"] >= 1
            out.detach()
            inp.detach()
            me.exit()

    def test_oversized_message_falls_back_to_tcp(self):
        payload = os.urandom(256 * 1024)
        with ProcCluster(n_spaces=2, gc_period=None, ring_bytes=64 * 1024) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("pr.big", home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            tcp_tx_before = _wire_bytes("tcp", "tx")
            out.put(0, payload, refcount=1)
            assert inp.get_consume(0).value == payload
            assert _wire_bytes("tcp", "tx") - tcp_tx_before >= len(payload)
            out.detach()
            inp.detach()
            me.exit()

    def test_one_payload_memcpy_per_side(self):
        """1 MB put → get cycles: each side copies the payload exactly once.

        Send side: scatter/gather segments → ring.  Receive side: ring →
        message buffer; decode and the kernel hold zero-copy memoryviews.
        The ``frame_stats`` byte counters (one per process, fetched over
        RPC) are the proof.
        """
        payload_bytes = 1 << 20
        iters = 5
        payload = bytes(payload_bytes)
        with ProcCluster(n_spaces=2, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("pr.copies", home=1)
            out, inp = chan.attach_output(), chan.attach_input()
            out.put(0, payload, refcount=1)  # warm-up cycle
            inp.get_consume(0)
            cluster.endpoint_stats(0, reset_frames=True)
            cluster.endpoint_stats(1, reset_frames=True)
            for ts in range(1, 1 + iters):
                me.set_virtual_time(ts)
                out.put(ts, payload, refcount=1)
                inp.get_consume(ts)
            parent = cluster.endpoint_stats(0)
            child = cluster.endpoint_stats(1)
            out.detach()
            inp.detach()
            me.exit()
        transfers = 2 * iters  # each cycle: put frame out + get reply back
        for side in (parent, child):
            copies = side["frames"]["payload_bytes_copied"] / (
                transfers * payload_bytes
            )
            assert copies <= 1.01, side["frames"]

    def test_spawned_worker_pipeline_and_gc(self):
        n_rounds = 5
        with ProcCluster(n_spaces=2, gc_period=None) as cluster:
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            work = stm.create_channel("pr.work", home=1)
            result = stm.create_channel("pr.result", home=0)
            out, inp = work.attach_output(), result.attach_input()
            handle = cluster.spawn(_echo_worker, (n_rounds,), on_space=1)
            for ts in range(n_rounds):
                me.set_virtual_time(ts)
                out.put(ts, ts + 10, refcount=1)
                assert inp.get_consume(ts).value == (ts + 10) * 2
            handle.join(timeout=30.0)
            stats = cluster.gc_once()  # a distributed round over the wire
            assert stats is not None
            cluster.check_failure()  # nothing failed along the way
            out.detach()
            inp.detach()
            me.exit()


class TestLifecycle:
    def test_single_space_cluster_has_no_children(self):
        with ProcCluster(n_spaces=1, gc_period=None) as cluster:
            assert cluster._procs == {}
            me = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("pr.solo")
            out, inp = chan.attach_output(), chan.attach_input()
            out.put(0, b"x", refcount=1)
            assert inp.get_consume(0).value == b"x"
            out.detach()
            inp.detach()
            me.exit()

    def test_shutdown_leaves_no_orphans_or_segments(self):
        cluster = ProcCluster(n_spaces=3, gc_period=None)
        pids = [proc.pid for proc in cluster._procs.values()]
        session = cluster.session
        assert len(pids) == 2
        cluster.shutdown()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: the process is gone
        leftovers = [
            name for name in os.listdir("/dev/shm")
            if session in name
        ]
        assert leftovers == []

    def test_shutdown_is_idempotent(self):
        cluster = ProcCluster(n_spaces=2, gc_period=None)
        cluster.shutdown()
        cluster.shutdown()

    def test_refuses_model_checker_sync_factories(self):
        import threading

        install_factories(lambda name: threading.Lock(), threading.Event)
        try:
            with pytest.raises(StampedeError, match="sync factories"):
                ProcCluster(n_spaces=2)
        finally:
            clear_factories()

    def test_only_space_zero_is_addressable(self):
        with ProcCluster(n_spaces=2, gc_period=None) as cluster:
            assert cluster.space(0) is not None
            with pytest.raises(StampedeError, match="another process"):
                cluster.space(1)
