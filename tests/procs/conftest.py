"""Watchdog for the multi-process runtime tests.

A wedged child process (or a dispatcher that never answers) would
otherwise hang the whole suite; the guard turns that into a loud
failure.  Generous ceiling — forking and teardown are slow under load.
pytest-timeout is not a dependency; see tests/_timeout_guard.py.
"""

from __future__ import annotations

from tests._timeout_guard import install_timeout_guard

TIMEOUT_S = 180

install_timeout_guard(globals(), TIMEOUT_S)
