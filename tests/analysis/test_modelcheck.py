"""The model checker: scheduler determinism, exploration, seeded bugs.

The regression seeds below were produced by the explorer itself (each is
the first violating schedule DFS finds); they are checked in so the bugs
they witness stay reproducible byte-for-byte without re-running the whole
exploration.
"""

from __future__ import annotations

import pytest

from repro.analysis.modelcheck import (
    SCENARIOS,
    DeadlockError,
    Scheduler,
    explore,
    replay,
)
from repro.analysis.modelcheck.explorer import decode_seed, encode_seed

CLEAN = [n for n, s in SCENARIOS.items() if not s.expect_violation]
SEEDED = [n for n, s in SCENARIOS.items() if s.expect_violation]

#: explorer-produced violating schedules, one per seeded scenario.
REGRESSION_SEEDS = {
    "seeded-atomicity-break": (
        "seeded-atomicity-break:0.0.0.1.1.1.1.1.0.0",
        "STM401",
    ),
    "seeded-gc-reclaims-live": (
        "seeded-gc-reclaims-live:0.0.0.1.1.1.1.1.1.1.1.1.0.0.0.0.1.1.0.0",
        "STM403",
    ),
    "seeded-lost-wakeup": (
        "seeded-lost-wakeup:0.0.0.1.1.1.1.0",
        "STM402",
    ),
}


# ---------------------------------------------------------------------------
# scheduler core
# ---------------------------------------------------------------------------


def test_one_thread_runs_at_a_time_and_trace_is_complete():
    sched = Scheduler()
    log = []
    lock = sched.make_lock("L")

    def worker(tag):
        with lock:
            log.append(tag)

    sched.spawn("a", lambda: worker("a"))
    sched.spawn("b", lambda: worker("b"))
    trace = sched.run()
    sched.join_all()
    assert sorted(log) == ["a", "b"]
    assert set(trace) == {0, 1}


def test_forced_schedule_is_deterministic():
    def run(schedule):
        sched = Scheduler()
        log = []
        lock = sched.make_lock("L")

        def worker(tag):
            with lock:
                log.append(tag)

        sched.spawn("a", lambda: worker("a"))
        sched.spawn("b", lambda: worker("b"))
        sched.run(lambda enabled: (
            schedule.pop(0) if schedule else enabled[0][0]
        ))
        sched.join_all()
        return log

    assert run([1, 1]) == run([1, 1])
    # [start b, b acquires] forces b through the lock first.
    assert run([1, 1])[0] == "b"
    assert run([0, 0])[0] == "a"


def test_unsatisfiable_wait_is_a_deadlock():
    sched = Scheduler()
    event = sched.make_event()
    sched.spawn("waiter", lambda: event.wait(timeout=0.01))
    with pytest.raises(DeadlockError) as err:
        sched.run()
    sched.abort()
    sched.join_all()
    assert "waiter" in str(err.value)


def test_lock_contention_disables_acquire():
    sched = Scheduler()
    lock = sched.make_lock("L")
    order = []

    def holder():
        with lock:
            order.append("holder-in")
        order.append("holder-out")

    def contender():
        with lock:
            order.append("contender-in")

    sched.spawn("holder", holder)
    sched.spawn("contender", contender)

    # Drive the holder into the critical section (two forced steps), then
    # insist on the contender: its acquire stays disabled until the
    # holder's release, so the contender cannot jump the critical section.
    forced = [0, 0]

    def choose(enabled):
        tids = [t for t, _ in enabled]
        if forced:
            return forced.pop(0)
        return 1 if 1 in tids else tids[0]

    sched.run(choose)
    sched.join_all()
    assert order.index("contender-in") > order.index("holder-in")


# ---------------------------------------------------------------------------
# exploration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", CLEAN)
def test_clean_scenarios_have_no_violations(name):
    scenario = SCENARIOS[name]
    result = explore(scenario, budget=120)
    assert result.clean, result.finding.render()
    assert result.runs >= 1


def test_detach_vs_reclaim_tree_is_exhausted():
    """The sleep-set reduction finishes this scenario's whole (reduced)
    schedule tree well inside the budget — every interleaving is covered,
    not just a sample."""
    result = explore(SCENARIOS["detach-vs-reclaim"], budget=500)
    assert result.clean
    assert result.exhausted
    assert result.runs < 500


@pytest.mark.parametrize("name", SEEDED)
def test_seeded_bugs_are_found(name):
    scenario = SCENARIOS[name]
    result = explore(scenario, budget=scenario.budget)
    assert result.finding is not None, f"{name}: bug not found in budget"
    expected_rule = REGRESSION_SEEDS[name][1]
    assert result.finding.rule_id == expected_rule
    assert "seed" in result.finding.message


@pytest.mark.parametrize("name", SEEDED)
def test_regression_seeds_replay_deterministically(name):
    seed, rule = REGRESSION_SEEDS[name]
    sname, schedule = decode_seed(seed)
    assert sname == name
    for _ in range(2):  # twice: replay must not depend on leftover state
        finding = replay(SCENARIOS[name], schedule)
        assert finding is not None, f"seed {seed} no longer reproduces"
        assert finding.rule_id == rule


def test_found_seed_replays_what_explore_found():
    result = explore(SCENARIOS["seeded-lost-wakeup"], budget=100)
    seed = result.finding.message.split("[seed ")[1].rstrip("]")
    name, schedule = decode_seed(seed)
    finding = replay(SCENARIOS[name], schedule)
    assert finding is not None
    assert finding.rule_id == result.finding.rule_id


def test_replay_of_benign_schedule_is_clean():
    # An empty prefix replays with default (sticky) choices: each thread
    # runs until it blocks — the benign, quasi-sequential interleaving.
    assert replay(SCENARIOS["seeded-lost-wakeup"], []) is None


def test_seed_round_trip():
    seed = encode_seed("x", [0, 1, 1, 0])
    assert decode_seed(seed) == ("x", [0, 1, 1, 0])
    assert decode_seed("x:") == ("x", [])


def test_real_primitives_restored_after_exploration():
    """Exploration must uninstall the model factories even on violations."""
    from repro.analysis.modelcheck import ModelEvent, ModelLock
    from repro.runtime.sync import make_event, make_lock

    explore(SCENARIOS["seeded-lost-wakeup"], budget=50)
    # STMSAN may swap in SanLocks, but never model primitives.
    assert not isinstance(make_lock("after"), ModelLock)
    assert not isinstance(make_event(), ModelEvent)
