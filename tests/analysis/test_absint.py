"""The abstract interpreter (absint): corpus exactness, differential
dominance over the legacy lexical walker, and the CLI subcommand.

Marker convention matches ``test_static_passes``: each seeded corpus
file annotates its planted defects with ``# VIOLATION: STM###`` and the
assertions are exact — no extra findings, none missing, none misplaced.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis.absint import check_absint, check_protocol
from repro.analysis.cli import main
from repro.analysis.protolint import check_protocol_legacy
from repro.analysis.source import filter_suppressed, load_sources

CORPUS = Path(__file__).parent / "corpus"
_MARKER = re.compile(r"#\s*VIOLATION:\s*(STM\d+)")

ABSINT_CORPUS = [
    "absint_601.py",
    "absint_602.py",
    "absint_603.py",
    "absint_604.py",
    "absint_interproc.py",
    "absint_tryfinally.py",
]


def expected_violations(path: Path) -> set[tuple[str, int]]:
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _MARKER.search(line)
        if m:
            out.add((m.group(1), lineno))
    return out


def absint_findings(path: Path) -> set[tuple[str, int]]:
    sources = load_sources([path], root=path.parent)
    return {(f.rule_id, f.line) for f in check_absint(sources)}


# ----------------------------------------------------------------------
# corpus exactness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ABSINT_CORPUS)
def test_absint_rules_fire_exactly_on_marked_lines(name):
    """STM601-604 (and the riding STM2xx defects) fire at the marked
    lines and nowhere else; the negative shapes in every file — monotone
    loop producer, above-horizon reads, ``block=False`` async probes,
    put-then-handoff — stay silent."""
    path = CORPUS / name
    assert absint_findings(path) == expected_violations(path)


def test_each_stm6_rule_has_a_corpus_case():
    demonstrated = set()
    for name in ABSINT_CORPUS:
        demonstrated |= {r for r, _ in expected_violations(CORPUS / name)}
    assert {"STM601", "STM602", "STM603", "STM604"} <= demonstrated


def test_path_sensitive_idioms_stay_silent():
    """The try/finally + guard + re-attach + alias + helper-cleanup file
    produces zero findings under the CFG engine (each shape was a legacy
    blind spot or false positive)."""
    assert absint_findings(CORPUS / "absint_tryfinally.py") == set()


def test_legacy_corpus_still_exact_under_cfg_engine():
    """The rerouted ``protolint`` pass (STM2xx-only view of absint)
    reproduces the original corpus exactly."""
    for name in ["protocol_bad.py", "with_attach.py"]:
        path = CORPUS / name
        sources = load_sources([path], root=CORPUS)
        got = {(f.rule_id, f.line) for f in check_protocol(sources)}
        expected = {
            (r, ln)
            for r, ln in expected_violations(path)
            if r.startswith("STM2")
        }
        assert got == expected, name
    assert check_protocol(load_sources([CORPUS / "clean.py"], root=CORPUS)) == []


# ----------------------------------------------------------------------
# differential: CFG engine dominates the legacy lexical walker
# ----------------------------------------------------------------------
def test_cfg_engine_keeps_every_true_legacy_detection():
    """On the full corpus, every legacy STM2xx detection that is a real
    seeded violation (i.e. marked) is also found by the CFG engine: the
    rewrite loses nothing."""
    for path in sorted(CORPUS.glob("*.py")):
        if path.name == "__init__.py":
            continue
        sources = load_sources([path], root=CORPUS)
        legacy = {(f.rule_id, f.line) for f in check_protocol_legacy(sources)}
        marked = expected_violations(path)
        cfg = {(f.rule_id, f.line) for f in check_protocol(sources)}
        assert legacy & marked <= cfg, path.name


def test_cfg_engine_kills_legacy_false_positives():
    """The legacy walker false-positives on the conditional
    detach-and-re-attach idiom (it orders the branch's detach before the
    rejoin put lexically); the CFG engine understands the path split."""
    sources = load_sources([CORPUS / "absint_tryfinally.py"], root=CORPUS)
    legacy = check_protocol_legacy(sources)
    assert legacy, "legacy walker was expected to false-positive here"
    assert check_protocol(sources) == []


# ----------------------------------------------------------------------
# the CLI subcommand
# ----------------------------------------------------------------------
def test_cli_nonzero_on_seeded_file(capsys):
    assert main(["absint", str(CORPUS / "absint_601.py")]) == 1
    out = capsys.readouterr().out
    assert "STM601" in out


def test_cli_zero_on_negative_file():
    assert main(["absint", str(CORPUS / "absint_tryfinally.py")]) == 0


def test_cli_baseline_roundtrip(tmp_path):
    baseline = tmp_path / "stm-baseline.txt"
    target = str(CORPUS / "absint_603.py")
    assert main(["absint", target, "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main(["absint", target, "--baseline", str(baseline)]) == 0
    assert main(["absint", target, "--baseline", str(tmp_path / "none.txt")]) == 1


def test_cli_json_format(capsys):
    assert main(["absint", str(CORPUS / "absint_602.py"), "--format", "json"]) == 1
    rows = json.loads(capsys.readouterr().out)
    assert {r["rule"] for r in rows} == {"STM602"}
    assert all(r["file"].endswith("absint_602.py") for r in rows)


def test_cli_sarif_format(capsys):
    assert main(["absint", str(CORPUS / "absint_604.py"), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.analysis.absint"
    assert {r["ruleId"] for r in run["results"]} == {"STM604"}


def test_inline_waiver_silences_stm603(tmp_path):
    """An intentional infinite producer is waived with ``# stm-ok:
    STM603`` on the put line (the TUTORIAL recipe); the companion leaks
    are waived the same way, so the file goes fully quiet."""
    target = tmp_path / "intentional.py"
    target.write_text(
        'CHAN = "frames"\n'
        "\n"
        "def producer(runtime):\n"
        "    ch = runtime.create_channel(CHAN)\n"
        "    out = ch.attach_output()  # stm-ok: STM205\n"
        "    t = 0\n"
        "    while True:\n"
        '        out.put(t, b"frame")  # stm-ok: STM603\n'
        "        t = t + 1\n"
        "\n"
        "def consumer(runtime):\n"
        "    ch = runtime.lookup(CHAN)\n"
        "    inp = ch.attach_input()  # stm-ok: STM205\n"
        "    while True:\n"
        "        item = inp.get(-1)  # stm-ok: STM201\n"
        "        print(item.value)\n"
    )
    sources = load_sources([target], root=tmp_path)
    assert filter_suppressed(check_absint(sources), sources) == []
    assert main(["absint", str(target)]) == 0
