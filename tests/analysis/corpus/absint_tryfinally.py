"""Negative corpus: path-sensitive idioms the CFG engine must NOT flag.

Every function here is protocol-correct, but each exercised a blind spot
of the legacy lexical walker (see ``test_absint.py``'s differential
test): detach in ``finally``, a ``None``-guarded detach, conditional
detach-and-re-attach, aliasing, and helper-performed cleanup composed
through a must-transform summary.  The abstract interpreter reports
nothing on this file — that is the regression being guarded.
"""


def detach_in_finally(channel):
    conn = channel.attach_input()
    try:
        item = conn.get(0)
        conn.consume(item.timestamp)
    finally:
        conn.detach()


def guarded_detach(channel):
    conn = None
    try:
        conn = channel.attach_input()
        item = conn.get(0)
        conn.consume(item.timestamp)
    finally:
        if conn is not None:
            conn.detach()


def conditional_reattach(channel, rotate):
    out = channel.attach_output()
    out.put(0, b"a")
    if rotate:
        out.detach()
        out = channel.attach_output()
    out.put(1, b"b")
    out.detach()


def alias_detach(channel):
    conn = channel.attach_input()
    conn2 = conn
    item = conn2.get(0)
    conn2.consume(item.timestamp)
    conn2.detach()


def cleanup(conn):
    conn.detach()


def helper_detaches(channel):
    conn = channel.attach_output()
    conn.put(1, b"x")
    cleanup(conn)
