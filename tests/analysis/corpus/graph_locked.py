"""Seeded STM505: blocking STM traffic while a runtime lock is held.

``bad_direct`` puts under the lock; ``bad_via_helper`` calls a helper
that blocks on get — the lock-holding scope never touches a connection
itself, so only the interprocedural view sees it.  ``good_outside``
does its STM traffic with the lock released.
"""

import threading

EVENTS = "locked.events"

state_lock = threading.Lock()


def forward_one(conn, ts):
    return conn.get(ts, block=True)


def bad_direct(space):
    out = space.lookup(EVENTS).attach_output()
    with state_lock:
        out.put(0, b"event")  # VIOLATION: STM505
    out.detach()


def bad_via_helper(space):
    inp = space.lookup(EVENTS).attach_input()
    with state_lock:
        forward_one(inp, 0)  # VIOLATION: STM505
    inp.consume(0)
    inp.detach()


def good_outside(space):
    out = space.lookup(EVENTS).attach_output()
    payload = b"event"
    with state_lock:
        payload = payload + b"!"
    out.put(1, payload)
    out.detach()
