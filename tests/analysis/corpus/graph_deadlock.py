"""Seeded STM501: a put->get wait cycle through bounded channels.

Two threads in a request/reply ring, both channels bounded: once either
channel fills, every thread on the cycle waits for a peer that is itself
waiting.  An acyclic version of the same code (see graph_clean.py) is
silent — the defect is the topology, not any one scope.
"""

import threading

REQUESTS = "cycle.requests"
REPLIES = "cycle.replies"


def setup(space):
    space.create_channel(REQUESTS, capacity=1)
    space.create_channel(REPLIES, capacity=1)


def client(space):
    out = space.lookup(REQUESTS).attach_output()
    inp = space.lookup(REPLIES).attach_input()
    for ts in range(100):
        out.put(ts, b"request")  # VIOLATION: STM501
        inp.get(ts, block=True)
        inp.consume(ts)
    out.detach()
    inp.detach()


def server(space):
    inp = space.lookup(REQUESTS).attach_input()
    out = space.lookup(REPLIES).attach_output()
    for ts in range(100):
        inp.get(ts, block=True)
        out.put(ts, b"reply")  # VIOLATION: STM501
        inp.consume(ts)
    inp.detach()
    out.detach()


def main(space):
    setup(space)
    threading.Thread(target=client, args=(space,)).start()
    threading.Thread(target=server, args=(space,)).start()
