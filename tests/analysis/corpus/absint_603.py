"""Seeded STM603: unbounded channel growth.

The producer puts frames forever; the consumer *does* attach an input
connection (so this is not STM503's orphan case) but only ever gets —
it never consumes, never advances the horizon, never detaches.  Every
item ever put is pinned for the life of the program, so the channel's
storage grows without bound.  The attach/get leaks are real defects in
their own right and carry their usual intra-procedural markers.
"""

CHAN = "frames"


def producer(runtime):
    ch = runtime.create_channel(CHAN)
    out = ch.attach_output()  # VIOLATION: STM205
    t = 0
    while True:
        out.put(t, b"frame")  # VIOLATION: STM603
        t = t + 1


def consumer(runtime):
    ch = runtime.lookup(CHAN)
    inp = ch.attach_input()  # VIOLATION: STM205
    while True:
        item = inp.get(-1)  # VIOLATION: STM201
        print(item.value)
