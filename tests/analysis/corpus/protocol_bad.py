"""Seeded STM protocol violations (STM201-STM205)."""

from repro.core import STM_OLDEST


def get_without_consume(channel):
    inp = channel.attach_input()
    item = inp.get(STM_OLDEST)  # VIOLATION: STM201
    inp.detach()
    return item.value


def use_after_consume(channel):
    inp = channel.attach_input()
    item = inp.get(STM_OLDEST)
    inp.consume(item.timestamp)
    value = item.value  # VIOLATION: STM202
    inp.detach()
    return value


def put_after_detach(channel):
    out = channel.attach_output()
    out.put(0, b"first")
    out.detach()
    out.put(1, b"late")  # VIOLATION: STM203


def timestamps_go_backwards(channel):
    out = channel.attach_output()
    out.put(5, b"newer")
    out.put(3, b"older")  # VIOLATION: STM204
    out.detach()


def attach_never_detached(channel):
    out = channel.attach_output()  # VIOLATION: STM205
    out.put(0, b"payload")
