"""Seeded STM604: blocking sync STM calls reachable from ``async def``.

A blocking ``get`` (or ``put``) issued without ``await`` inside an async
scope parks the entire event loop — every task in the space stalls until
an item happens to arrive.  The rule also sees through one call level:
a non-awaited call into a sync helper whose summary says it blocks is
just as bad.  Non-blocking probes (``block=False``) are the sanctioned
async escape hatch and must stay silent.
"""


async def blocking_get_in_async(channel):
    inp = channel.attach_input()
    item = inp.get(0)  # VIOLATION: STM604
    inp.consume(item.timestamp)
    inp.detach()


def sync_helper(inp):
    return inp.get(0)


async def helper_blocks_the_loop(channel):
    inp = channel.attach_input()
    item = sync_helper(inp)  # VIOLATION: STM604
    inp.consume(item.timestamp)
    inp.detach()


async def nonblocking_probe_is_fine(channel):
    inp = channel.attach_input()
    item = inp.get(0, block=False)
    if item is not None:
        inp.consume(item.timestamp)
    inp.detach()
