"""Protocol-clean code: every rule must stay silent on this file."""

import threading

from repro.core import STM_LATEST_UNSEEN

a_lock = threading.Lock()
b_lock = threading.Lock()


def consistent_order():
    with a_lock:
        with b_lock:
            counter = 1
    with a_lock:
        with b_lock:
            counter += 1
    return counter


def disciplined_consumer(channel):
    inp = channel.attach_input()
    while True:
        item = inp.get(STM_LATEST_UNSEEN)
        if item.value is None:
            inp.consume_until(item.timestamp)
            break
        process(item.value)
        inp.consume_until(item.timestamp)
    inp.detach()


def disciplined_producer(channel, frames):
    out = channel.attach_output()
    for ts, frame in enumerate(frames):
        out.put(ts, frame)
    out.put(10, None)
    out.put(11, None)
    out.detach()


def context_managed(channel):
    with channel.attach_input() as inp:
        item = inp.get_consume(STM_LATEST_UNSEEN)
        return item.value


def escapes_are_trusted(channel, sink):
    inp = channel.attach_input()
    sink.append(inp)  # obligations transfer to the sink's owner


def process(value):
    return value
