"""Seeded lock-discipline violations (STM101, STM102, STM103)."""

import threading

state_lock = threading.Lock()
table_lock = threading.Lock()


def manual_acquire():
    state_lock.acquire()  # VIOLATION: STM101
    try:
        pass
    finally:
        state_lock.release()


def forward_order():
    with state_lock:
        with table_lock:  # VIOLATION: STM102
            pass


def reverse_order():
    with table_lock:
        with state_lock:  # VIOLATION: STM102
            pass


class Worker:
    def __init__(self):
        self.lock = threading.Lock()
        self.ready = threading.Event()

    def blocking_under_lock(self):
        with self.lock:
            self.ready.wait(1.0)  # VIOLATION: STM103
