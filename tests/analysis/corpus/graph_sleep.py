"""Seeded STM506: wall-clock sleeps on STM kernel paths.

``producer`` paces its puts with a renamed ``from time import sleep``;
``paced_producer`` hides the sleep in a helper the STM-active caller
reaches — only the interprocedural view sees that.  ``settling`` keeps
a deliberate settle sleep quiet with an inline waiver, and
``good_unrelated`` sleeps without ever touching a channel.
"""

import time
from time import sleep as snooze

FRAMES = "sleepy.frames"


def pace():
    time.sleep(0.01)  # VIOLATION: STM506


def producer(space):
    out = space.lookup(FRAMES).attach_output()
    for ts in range(3):
        out.put(ts, b"frame")
        snooze(0.005)  # VIOLATION: STM506
    out.detach()


def paced_producer(space):
    out = space.lookup(FRAMES).attach_output()
    out.put(0, b"frame")
    pace()
    out.detach()


def settling(space):
    out = space.lookup(FRAMES).attach_output()
    out.put(1, b"frame")
    time.sleep(0.1)  # stm-ok: STM506 -- deliberate settle before teardown
    out.detach()


def consumer(space):
    inp = space.lookup(FRAMES).attach_input()
    item = inp.get(0)
    inp.consume(0)
    inp.detach()
    return item


def good_unrelated():
    time.sleep(0.5)
    return 42
