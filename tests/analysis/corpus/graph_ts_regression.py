"""Seeded STM504: a helper put regresses the timestamp stream.

``put_at`` forwards its timestamp parameter to ``conn.put``; the direct
put of timestamp 10 followed by ``put_at(out, 3, ...)`` therefore puts
3 after 10 on the same connection — across a call boundary, where the
intra-procedural STM204 check cannot see it.  ``good_producer`` uses
the same helper monotonically and stays silent.
"""

TICKS = "tsreg.ticks"


def put_at(conn, ts, payload):
    conn.put(ts, payload)


def bad_producer(space):
    out = space.lookup(TICKS).attach_output()
    out.put(10, b"new")
    put_at(out, 3, b"old")  # VIOLATION: STM504
    out.detach()


def good_producer(space):
    out = space.lookup(TICKS).attach_output()
    out.put(1, b"first")
    put_at(out, 2, b"second")
    out.detach()


def reader(space):
    inp = space.lookup(TICKS).attach_input()
    inp.get_consume(0, block=True)
    inp.detach()
