"""Context-managed attach lifecycles: ``with attach(...) as conn:``.

The context manager detaches on exit, so STM205 (attach without detach)
must stay silent for every connection below; rules that order events
(STM201, STM203) still apply inside and after the block.
"""

from repro.core import STM_LATEST_UNSEEN


def with_attach_is_detached(channel):
    with channel.attach_input() as inp:
        item = inp.get(STM_LATEST_UNSEEN)
        value = item.value
        inp.consume_until(item.timestamp)
        return value


def with_attach_output(channel, frames):
    with channel.attach_output() as out:
        for ts, frame in enumerate(frames):
            out.put(ts, frame)


async def async_with_attach(channel):
    async with channel.attach_input() as inp:
        item = inp.get(STM_LATEST_UNSEEN)
        value = item.value
        inp.consume_until(item.timestamp)
        return value


def with_attach_both(channel_a, channel_b):
    with channel_a.attach_input() as inp, channel_b.attach_output() as out:
        item = inp.get(STM_LATEST_UNSEEN)
        out.put(item.timestamp, item.value)
        inp.consume_until(item.timestamp)


def with_attach_get_without_consume(channel):
    with channel.attach_input() as inp:
        item = inp.get(STM_LATEST_UNSEEN)  # VIOLATION: STM201
        return item.value


def put_after_with_block(channel, frame):
    with channel.attach_output() as out:
        out.put(0, frame)
    out.put(1, frame)  # VIOLATION: STM203
