"""Seeded STM602: get/consume at or below the advanced GC horizon.

``consume_until(item.timestamp)`` tells the kernel everything at or below
that virtual time is garbage; a later ``get(item.timestamp - 1)`` on the
same connection is then *guaranteed* to target a reclaimed column — as is
consuming the stale handle it returns.  Reading strictly above the
horizon (``item.timestamp + 1``) is the normal streaming idiom and must
stay silent.
"""


def reads_below_horizon(channel):
    inp = channel.attach_input()
    item = inp.get(5)
    inp.consume_until(item.timestamp)
    stale = inp.get(item.timestamp - 1)  # VIOLATION: STM602
    inp.consume(stale.timestamp)  # VIOLATION: STM602
    inp.detach()


def forward_reads_are_fine(channel):
    inp = channel.attach_input()
    item = inp.get(5)
    inp.consume_until(item.timestamp)
    nxt = inp.get(item.timestamp + 1)
    inp.consume(nxt.timestamp)
    inp.detach()
