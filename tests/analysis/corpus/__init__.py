# Seeded-violation corpus for the repro.analysis static passes.
#
# Each file plants specific rule violations; the line of each expected
# finding carries a "# VIOLATION: STM###" marker, and the tests assert the
# passes fire exactly on the marked lines and nowhere else.  These files are
# never imported (the code need not run, only parse).
