"""Seeded STM502: interprocedural GC starvation.

``bad_reader`` hands its input connection to a helper, so the
intra-procedural linter cannot follow the lifecycle — but the whole
closure of {reader, helper} contains no consume and no detach: the
connection pins the channel's GC horizon forever.  ``paced_reader``
shows the same call shape discharged by a consuming helper.
"""

FRAMES = "starve.frames"


def drain_only(conn, ts):
    # gets an item but never consumes it and never detaches
    return conn.get(ts, block=True)


def consume_through(conn, ts):
    conn.consume_until(ts)


def bad_reader(space):
    inp = space.lookup(FRAMES).attach_input()  # VIOLATION: STM502
    for ts in range(10):
        drain_only(inp, ts)


def paced_reader(space):
    # clean: the helper consumes on the reader's behalf
    inp = space.lookup(FRAMES).attach_input()
    for ts in range(10):
        drain_only(inp, ts)
        consume_through(inp, ts)
    inp.detach()


def producer(space):
    out = space.lookup(FRAMES).attach_output()
    for ts in range(10):
        out.put(ts, b"frame")
    out.detach()
