"""Seeded cross-function STM203: use after a helper detached the conn.

``shutdown`` detaches its parameter on every path, so its must-transform
summary maps {attached} to {detached}; the caller's put after the call
is then provably an operation on a detached connection — a finding no
intra-procedural walker can reach.  The sibling function that puts
*before* handing the connection to the same helper is correct and must
stay silent.
"""


def shutdown(conn):
    conn.detach()


def put_then_handoff(channel):
    conn = channel.attach_output()
    conn.put(1, b"x")
    shutdown(conn)


def use_after_helper_detach(channel):
    conn = channel.attach_output()
    shutdown(conn)
    conn.put(2, b"y")  # VIOLATION: STM203
