"""Seeded STM601: provably non-monotonic put timestamps.

The regression here flows through *computed* timestamps (``base - 1``
after ``base``), which the lexical STM204 literal check cannot see; the
symbolic virtual-time domain proves the second put is strictly below the
first on every path.  The loop producer below it is the classic monotone
idiom and must stay silent (widening, not a false alarm).
"""


def computed_regression(channel, base):
    out = channel.attach_output()
    out.put(base, b"newer")
    out.put(base - 1, b"older")  # VIOLATION: STM601
    out.detach()


def monotone_loop_is_fine(channel):
    out = channel.attach_output()
    t = 0
    for _ in range(10):
        out.put(t, b"frame")
        t = t + 1
    out.detach()
