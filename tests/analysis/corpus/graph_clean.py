"""Clean whole-program idioms the channel-graph rules must not flag.

A linear bounded pipeline (no cycle: STM501 silent even though every
channel is bounded and every get blocks), consume discharged through a
helper (STM502 silent), every channel has a reader (STM503 silent),
monotonic helper timestamps (STM504 silent), and locks released around
STM traffic (STM505 silent).
"""

import threading

STAGE_A = "clean.stage_a"
STAGE_B = "clean.stage_b"

counter_lock = threading.Lock()


def setup(space):
    space.create_channel(STAGE_A, capacity=4)
    space.create_channel(STAGE_B, capacity=4)


def consume_in_helper(conn, ts):
    conn.consume(ts)


def stamp(conn, ts, item):
    conn.put(ts, item)


def source(space):
    out = space.lookup(STAGE_A).attach_output()
    for ts in range(8):
        out.put(ts, b"raw")
    out.detach()


def transform(space):
    inp = space.lookup(STAGE_A).attach_input()
    out = space.lookup(STAGE_B).attach_output()
    stamp(out, 0, b"header")
    stamp(out, 1, b"ready")
    for ts in range(8):
        item = inp.get(ts, block=True)
        out.put(ts + 2, item)
        consume_in_helper(inp, ts)
    inp.detach()
    out.detach()


def sink(space):
    done = 0
    inp = space.lookup(STAGE_B).attach_input()
    for ts in range(10):
        inp.get_consume(ts, block=True)
        with counter_lock:
            done += 1
    inp.detach()
    return done


def main(space):
    setup(space)
    for stage in (source, transform, sink):
        threading.Thread(target=stage, args=(space,)).start()
