"""Seeded STM503: a put-only channel no scanned code ever reads.

``emit_telemetry`` produces into 'orphan.telemetry', but nothing in the
program attaches an input connection to it — every item survives until
the producer detaches and the data goes nowhere.  The results channel
right next to it has a reader and stays silent.
"""

TELEMETRY = "orphan.telemetry"
RESULTS = "orphan.results"


def emit_telemetry(space):
    out = space.lookup(TELEMETRY).attach_output()
    for ts in range(5):
        out.put(ts, b"sample")  # VIOLATION: STM503
    out.detach()


def emit_results(space):
    out = space.lookup(RESULTS).attach_output()
    for ts in range(5):
        out.put(ts, b"result")
    out.detach()


def read_results(space):
    inp = space.lookup(RESULTS).attach_input()
    for ts in range(5):
        inp.get_consume(ts, block=True)
    inp.detach()
