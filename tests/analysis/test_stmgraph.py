"""Whole-program channel-graph pass: corpus exactness, golden topology.

The seeded graph corpus reuses the ``# VIOLATION: STM###`` marker idiom
from test_static_passes; each STM5xx rule must fire exactly on its
marked line and stay silent on the clean idioms.  The golden-topology
test pins the extracted kiosk pipeline graph to the documented §2
structure (digitizer -> video -> {lofi, hifi} -> decision -> gui).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.findings import RULES
from repro.analysis.source import filter_suppressed, load_sources
from repro.analysis.stmgraph import check_channel_graph, extract_graph

from tests.analysis.test_static_passes import expected_violations

CORPUS = Path(__file__).parent / "corpus"
REPO = Path(__file__).resolve().parents[2]

GRAPH_CORPUS = [
    "graph_deadlock.py",
    "graph_starvation.py",
    "graph_orphan.py",
    "graph_ts_regression.py",
    "graph_locked.py",
    "graph_sleep.py",
]


def graph_findings_for(path: Path) -> set[tuple[str, int]]:
    sources = load_sources([str(path)], root=path.parent)
    findings = filter_suppressed(check_channel_graph(sources), sources)
    return {(f.rule_id, f.line) for f in findings}


@pytest.mark.parametrize("name", GRAPH_CORPUS)
def test_graph_rules_fire_exactly_on_marked_lines(name):
    path = CORPUS / name
    expected = expected_violations(path)
    assert expected, f"corpus file {name} has no markers"
    assert graph_findings_for(path) == expected


def test_clean_graph_corpus_is_silent():
    assert graph_findings_for(CORPUS / "graph_clean.py") == set()


def test_every_graph_rule_has_a_corpus_case():
    graph_rules = {r for r in RULES if r.startswith("STM5")}
    demonstrated = set()
    for name in GRAPH_CORPUS:
        demonstrated |= {r for r, _ in expected_violations(CORPUS / name)}
    assert demonstrated == graph_rules


def test_inline_suppression_waives_a_graph_rule(tmp_path):
    bad = tmp_path / "waived.py"
    body = (
        "def helper(conn, ts):\n"
        "    return conn.get(ts, block=True)\n"
        "\n"
        "def reader(space):\n"
        "    inp = space.lookup('w.chan').attach_input(){}\n"
        "    helper(inp, 0)\n"
    )
    bad.write_text(body.format("  # stm-ok: STM502"))
    assert graph_findings_for(bad) == set()
    bad.write_text(body.format(""))
    assert graph_findings_for(bad) == {("STM502", 5)}


# ----------------------------------------------------------------------
# golden topology: the kiosk pipeline of DESIGN.md §2
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def kiosk_graph():
    sources = load_sources(
        [str(REPO / "src/repro/kiosk/pipeline.py")], root=REPO
    )
    return extract_graph(sources)


def _label(graph, node_id: str) -> str:
    t = graph.threads.get(node_id)
    return t.label if t is not None else node_id


def test_kiosk_graph_is_finding_free(kiosk_graph):
    assert kiosk_graph.findings == [], [
        f.render() for f in kiosk_graph.findings
    ]


def test_kiosk_channels(kiosk_graph):
    assert set(kiosk_graph.channels) == {
        "kiosk.video",
        "kiosk.lofi",
        "kiosk.hifi",
        "kiosk.audio",
        "kiosk.decision",
    }


def test_kiosk_stage_threads(kiosk_graph):
    labels = {t.label for t in kiosk_graph.threads.values()}
    assert {
        "run_pipeline",
        "digitizer",
        "lofi",
        "hifi",
        "decision",
        "gui",
        "microphone",
        "gesture",
    } <= labels


def test_kiosk_dataflow_matches_documented_structure(kiosk_graph):
    g = kiosk_graph
    puts = {(_label(g, e.src), e.dst) for e in g.edges if e.kind == "put"}
    gets = {(e.src, _label(g, e.dst)) for e in g.edges if e.kind == "get"}
    assert puts == {
        ("digitizer", "kiosk.video"),
        ("lofi", "kiosk.lofi"),
        ("hifi", "kiosk.hifi"),
        ("microphone", "kiosk.audio"),
        ("decision", "kiosk.decision"),
    }
    assert gets == {
        ("kiosk.video", "lofi"),
        ("kiosk.video", "hifi"),
        ("kiosk.lofi", "decision"),
        ("kiosk.lofi", "gesture"),
        ("kiosk.hifi", "decision"),
        ("kiosk.audio", "decision"),
        ("kiosk.decision", "gui"),
    }


def test_kiosk_spawn_edges(kiosk_graph):
    g = kiosk_graph
    spawns = {
        (_label(g, e.src), _label(g, e.dst))
        for e in g.edges
        if e.kind == "spawn"
    }
    assert {
        ("run_pipeline", "digitizer"),
        ("run_pipeline", "lofi"),
        ("run_pipeline", "decision"),
        ("run_pipeline", "gui"),
        ("run_pipeline", "microphone"),
        ("run_pipeline", "gesture"),
        ("lofi", "hifi"),  # the hifi tracker is spawned on demand
    } <= spawns


def test_kiosk_main_chain_and_placement_seed(kiosk_graph):
    chain = kiosk_graph.main_chain()
    assert chain[0] == "digitizer"
    assert chain[-1] == "gui"
    assert len(chain) == 4
    model = kiosk_graph.placement_model()
    assert [s.name for s in model.stages] == chain


def test_dot_export_renders_nodes_and_edges(kiosk_graph):
    dot = kiosk_graph.to_dot()
    assert dot.startswith("digraph stm {")
    assert '"kiosk.video" [shape=ellipse' in dot
    assert '-> "kiosk.video" [label="put"' in dot
    assert dot.rstrip().endswith("}")


def test_json_export_shape(kiosk_graph):
    doc = kiosk_graph.to_json()
    assert {"threads", "channels", "edges", "pipeline"} <= set(doc)
    kinds = {e["kind"] for e in doc["edges"]}
    assert kinds == {"put", "get", "spawn"}
    assert all(":" in e["at"] for e in doc["edges"])
