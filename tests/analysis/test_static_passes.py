"""The seeded-violation corpus: every rule fires exactly where marked.

Each corpus file annotates its planted defects with ``# VIOLATION: STM###``
on the offending line; the tests derive the expected (rule, file, line)
set from those markers, so the corpus is self-describing and the assertion
is exact — no extra findings, none missing, none misplaced.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import run_static_passes
from repro.analysis.findings import RULES

CORPUS = Path(__file__).parent / "corpus"
_MARKER = re.compile(r"#\s*VIOLATION:\s*(STM\d+)")


def expected_violations(path: Path) -> set[tuple[str, int]]:
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _MARKER.search(line)
        if m:
            out.add((m.group(1), lineno))
    return out


def findings_for(path: Path) -> set[tuple[str, int]]:
    findings = run_static_passes([str(path)], root=path.parent)
    return {(f.rule_id, f.line) for f in findings}


@pytest.mark.parametrize(
    "name", ["locks_bad.py", "protocol_bad.py", "with_attach.py"]
)
def test_rules_fire_exactly_on_marked_lines(name):
    path = CORPUS / name
    expected = expected_violations(path)
    assert expected, f"corpus file {name} has no markers"
    assert findings_for(path) == expected


def test_clean_corpus_is_silent():
    assert findings_for(CORPUS / "clean.py") == set()


def test_every_static_rule_has_a_corpus_case():
    """Acceptance: each STM1xx/STM2xx rule is demonstrated by the corpus.

    The STM5xx (channel-graph) markers in graph_*.py belong to the
    whole-program pass and are covered by test_stmgraph.py.
    """
    static_rules = {r for r in RULES if r.startswith(("STM1", "STM2"))}
    demonstrated = set()
    for path in CORPUS.glob("*.py"):
        demonstrated |= {rule for rule, _ in expected_violations(path)}
    assert {r for r in demonstrated if r.startswith(("STM1", "STM2"))} == (
        static_rules
    )


def test_source_tree_and_examples_are_clean():
    """Regression guard for the PR-2 true-positive fixes (the quickstart /
    cluster_gc_demo use-after-consume reorders and the bench attach/detach
    leaks): the shipped tree stays finding-free with an empty baseline."""
    repo = Path(__file__).resolve().parents[2]
    findings = run_static_passes(
        [str(repo / "src"), str(repo / "examples")], root=repo
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_procfleet_worker_modules_are_protolint_clean():
    """The spawn-picklable fleet workers (PR 6) follow the lookup ->
    attach -> get/consume -> detach discipline through module-level
    channel-name constants and ``STM.here()`` binding; STM201-205 must
    produce zero false positives on these patterns."""
    repo = Path(__file__).resolve().parents[2]
    findings = run_static_passes(
        [str(repo / "src" / "repro" / "kiosk" / "procfleet.py")],
        only=["protolint"],
        root=repo,
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_inline_suppression_waives_a_rule(tmp_path):
    bad = tmp_path / "waived.py"
    bad.write_text(
        "def f(channel):\n"
        "    out = channel.attach_output()  # stm-ok: STM205\n"
        "    out.put(0, b'x')\n"
    )
    assert run_static_passes([str(bad)], root=tmp_path) == []
    # the same file without the waiver does fire
    bad.write_text(
        "def f(channel):\n"
        "    out = channel.attach_output()\n"
        "    out.put(0, b'x')\n"
    )
    found = run_static_passes([str(bad)], root=tmp_path)
    assert [f.rule_id for f in found] == ["STM205"]
