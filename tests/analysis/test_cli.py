"""CLI contract: exit codes, baseline round-trip, rule listing."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

CORPUS = Path(__file__).parent / "corpus"
REPO = Path(__file__).resolve().parents[2]


def test_nonzero_on_seeded_corpus(capsys):
    assert main([str(CORPUS)]) == 1
    out = capsys.readouterr().out
    assert "STM101" in out and "STM205" in out


def test_zero_on_clean_code(capsys):
    assert main([str(CORPUS / "clean.py")]) == 0


def test_baseline_round_trip(tmp_path, capsys):
    baseline = tmp_path / "stm-baseline.txt"
    # grandfather the corpus findings...
    assert main([str(CORPUS), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    # ...then the same scan passes against the baseline,
    assert main([str(CORPUS), "--baseline", str(baseline)]) == 0
    # while an empty baseline still fails it.
    assert main([str(CORPUS), "--baseline", str(tmp_path / "none.txt")]) == 1


def test_wildcard_baseline_lines(tmp_path):
    from repro.analysis import run_static_passes

    findings = run_static_passes([str(CORPUS)])
    assert findings
    baseline = tmp_path / "b.txt"
    # line-wildcard keys survive line-number churn from unrelated edits
    lines = sorted({f"{f.rule_id}|{f.file}|*" for f in findings})
    baseline.write_text("\n".join(lines) + "\n")
    assert main([str(CORPUS), "--baseline", str(baseline)]) == 0


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("STM101", "STM202", "STM303"):
        assert rule in out


def test_module_entry_point_nonzero_on_corpus():
    """Acceptance: ``python -m repro.analysis`` exits non-zero on the corpus."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(CORPUS)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=60,
    )
    assert proc.returncode == 1, proc.stderr
    assert "finding(s)" in proc.stderr


def test_json_format(capsys):
    assert main([str(CORPUS / "protocol_bad.py"), "--format", "json"]) == 1
    out = capsys.readouterr().out
    assert '"rule": "STM203"' in out
