"""CLI contract: exit codes, baseline round-trip, rule listing."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

CORPUS = Path(__file__).parent / "corpus"
REPO = Path(__file__).resolve().parents[2]


def test_nonzero_on_seeded_corpus(capsys):
    assert main([str(CORPUS)]) == 1
    out = capsys.readouterr().out
    assert "STM101" in out and "STM205" in out


def test_zero_on_clean_code(capsys):
    assert main([str(CORPUS / "clean.py")]) == 0


def test_baseline_round_trip(tmp_path, capsys):
    baseline = tmp_path / "stm-baseline.txt"
    # grandfather the corpus findings...
    assert main([str(CORPUS), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    # ...then the same scan passes against the baseline,
    assert main([str(CORPUS), "--baseline", str(baseline)]) == 0
    # while an empty baseline still fails it.
    assert main([str(CORPUS), "--baseline", str(tmp_path / "none.txt")]) == 1


def test_wildcard_baseline_lines(tmp_path):
    from repro.analysis import run_static_passes

    findings = run_static_passes([str(CORPUS)])
    assert findings
    baseline = tmp_path / "b.txt"
    # line-wildcard keys survive line-number churn from unrelated edits
    lines = sorted({f"{f.rule_id}|{f.file}|*" for f in findings})
    baseline.write_text("\n".join(lines) + "\n")
    assert main([str(CORPUS), "--baseline", str(baseline)]) == 0


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("STM101", "STM202", "STM303"):
        assert rule in out


def test_module_entry_point_nonzero_on_corpus():
    """Acceptance: ``python -m repro.analysis`` exits non-zero on the corpus."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(CORPUS)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=60,
    )
    assert proc.returncode == 1, proc.stderr
    assert "finding(s)" in proc.stderr


def test_json_format(capsys):
    assert main([str(CORPUS / "protocol_bad.py"), "--format", "json"]) == 1
    out = capsys.readouterr().out
    assert '"rule": "STM203"' in out


def test_stale_baseline_entry_is_reported(tmp_path, capsys):
    baseline = tmp_path / "b.txt"
    baseline.write_text(
        "# a fixed finding whose entry was never cleaned up\n"
        "STM203|no/such/file.py|12\n"
    )
    # stale entries warn but do not affect the exit code
    assert main([str(CORPUS / "clean.py"), "--baseline", str(baseline)]) == 0
    err = capsys.readouterr().err
    assert "stale baseline entry" in err
    assert "STM203|no/such/file.py|12" in err


def test_prune_baseline_rewrites_the_file(tmp_path, capsys):
    from repro.analysis import run_static_passes

    findings = run_static_passes([str(CORPUS / "protocol_bad.py")])
    live = sorted({f.baseline_key() for f in findings})
    assert live
    baseline = tmp_path / "b.txt"
    baseline.write_text(
        "# comment lines survive pruning\n"
        + "\n".join(live)
        + "\nSTM203|no/such/file.py|12\n"
    )
    assert (
        main(
            [
                str(CORPUS / "protocol_bad.py"),
                "--baseline",
                str(baseline),
                "--prune-baseline",
            ]
        )
        == 0
    )
    err = capsys.readouterr().err
    assert "pruned 1 stale baseline entry" in err
    text = baseline.read_text()
    assert "no/such/file.py" not in text
    assert "# comment lines survive pruning" in text
    for key in live:
        assert key in text
    # a second run is warning-free
    assert (
        main([str(CORPUS / "protocol_bad.py"), "--baseline", str(baseline)])
        == 0
    )
    assert "stale" not in capsys.readouterr().err


def test_prune_preserves_other_rule_families(tmp_path, capsys):
    """A static-pass prune must not delete STM5xx (channel-graph) entries
    it could never have re-confirmed, and vice versa."""
    baseline = tmp_path / "b.txt"
    graph_key = "STM503|somewhere/else.py|7"
    stale_static = "STM203|no/such/file.py|12"
    baseline.write_text(f"{graph_key}\n{stale_static}\n")
    assert (
        main(
            [
                str(CORPUS / "clean.py"),
                "--baseline",
                str(baseline),
                "--prune-baseline",
            ]
        )
        == 0
    )
    capsys.readouterr()
    text = baseline.read_text()
    assert graph_key in text
    assert stale_static not in text


def test_stmgraph_subcommand_exit_codes(capsys):
    assert main(["stmgraph", str(CORPUS / "graph_deadlock.py")]) == 1
    out = capsys.readouterr().out
    assert "STM501" in out
    assert main(["stmgraph", str(CORPUS / "graph_clean.py")]) == 0


def test_stmgraph_baseline_round_trip(tmp_path, capsys):
    baseline = tmp_path / "stm-baseline.txt"
    target = str(CORPUS / "graph_orphan.py")
    assert main(["stmgraph", target, "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main(["stmgraph", target, "--baseline", str(baseline)]) == 0
    assert main(["stmgraph", target, "--baseline", str(tmp_path / "none.txt")]) == 1


def test_stmgraph_dot_format(capsys):
    assert main(["stmgraph", str(CORPUS / "graph_clean.py"), "--format", "dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph stm {")
    assert 'label="put"' in out


def test_stmgraph_json_format(capsys):
    assert main(["stmgraph", str(CORPUS / "graph_deadlock.py"), "--format", "json"]) == 1
    import json as _json

    doc = _json.loads(capsys.readouterr().out)
    assert {"threads", "channels", "edges", "findings"} <= set(doc)
    assert any(f["rule"] == "STM501" for f in doc["findings"])
