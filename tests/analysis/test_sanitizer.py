"""Dynamic sanitizer (STMSAN): lock order, kernel guard, tombstones.

The sanitizer *records* findings rather than raising (so instrumented runs
finish their workload), except for the two violations that cannot be
deferred: re-acquiring a non-reentrant lock (real deadlock) and touching a
reclaimed payload's tombstone.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis import sanitizer
from repro.core.channel_state import ChannelKernel
from repro.errors import StmSanError

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture
def stmsan():
    """Enable the sanitizer for one test, with clean state on both sides."""
    sanitizer.enable()
    sanitizer.reset()
    try:
        yield sanitizer
    finally:
        sanitizer.disable()
        sanitizer.reset()


@pytest.mark.skipif(
    os.environ.get("STMSAN", "") not in ("", "0"),
    reason="this run enables the sanitizer via STMSAN",
)
def test_off_by_default_returns_plain_locks():
    assert not sanitizer.enabled()
    lock = sanitizer.san_lock("X")
    assert not isinstance(lock, sanitizer.SanLock)


def test_enabled_returns_sanlock(stmsan):
    lock = sanitizer.san_lock("X")
    assert isinstance(lock, sanitizer.SanLock)
    with lock:
        assert lock.held_by_current()
    assert not lock.held_by_current()


def test_lock_order_inversion_recorded(stmsan):
    a, b = sanitizer.SanLock("A"), sanitizer.SanLock("B")
    with a:
        with b:
            pass

    def inverted():
        with b:
            with a:
                pass

    t = threading.Thread(target=inverted)
    t.start()
    t.join()
    found = sanitizer.findings()
    assert [f.rule_id for f in found] == ["STM301"]
    assert "inversion" in found[0].message


def test_consistent_order_is_silent(stmsan):
    a, b = sanitizer.SanLock("A"), sanitizer.SanLock("B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert sanitizer.findings() == []


def test_reentrant_acquire_raises(stmsan):
    lock = sanitizer.SanLock("R")
    with lock:
        with pytest.raises(StmSanError):
            lock.acquire()
    # the lock is still usable afterwards
    with lock:
        pass
    assert [f.rule_id for f in sanitizer.findings()] == ["STM301"]


def test_kernel_mutation_without_lock_recorded(stmsan):
    kernel = ChannelKernel(7)
    lock = sanitizer.SanLock("LocalChannel.lock")
    sanitizer.guard_kernel(kernel, lock)
    kernel.attach_output(1)  # mutation without the owning lock
    with lock:
        kernel.attach_input(2, 0)  # properly locked: silent
    found = sanitizer.findings()
    assert [f.rule_id for f in found] == ["STM302"]
    assert "attach_output" in found[0].message


def test_tombstone_after_refcount_reclaim(stmsan):
    kernel = ChannelKernel(8)
    lock = sanitizer.SanLock("LocalChannel.lock")
    sanitizer.guard_kernel(kernel, lock)
    with lock:
        kernel.attach_output(1)
        kernel.attach_input(2, 0)
        kernel.put(1, 5, b"payload", size=7, refcount=1)
        record = kernel.items.get(5)
        kernel.consume(2, 5)  # refcount hits zero -> eager reclaim
    assert len(kernel) == 0
    assert isinstance(record.payload, sanitizer.Tombstone)
    with pytest.raises(StmSanError) as exc:
        record.payload.pixels
    assert exc.value.stack  # the reclaiming stack rides along
    assert any(f.rule_id == "STM303" for f in sanitizer.findings())


def test_gc_sweep_releases_zero_copy_views(stmsan):
    kernel = ChannelKernel(9)
    lock = sanitizer.SanLock("LocalChannel.lock")
    sanitizer.guard_kernel(kernel, lock)
    view = memoryview(bytearray(b"framing-payload"))
    with lock:
        kernel.attach_output(1)
        kernel.put(1, 3, view, size=15)
        assert kernel.collect_below(10) == [3]
    # every alias of the zero-copy buffer is dead, not just the record
    with pytest.raises(ValueError):
        view.tobytes()


def test_open_items_are_never_poisoned(stmsan):
    """A reader holding an item open (e.g. a get reply in flight) keeps a
    legitimate reference; reclaim triggered by *another* connection must not
    poison the payload out from under it."""
    kernel = ChannelKernel(10)
    lock = sanitizer.SanLock("LocalChannel.lock")
    sanitizer.guard_kernel(kernel, lock)
    with lock:
        kernel.attach_output(1)
        kernel.attach_input(2, 0)
        kernel.attach_input(3, 0)
        kernel.put(1, 5, b"shared", size=6, refcount=1)
        result = kernel.get(2, 5)       # conn 2 holds ts=5 open
        kernel.consume(3, 5)            # conn 3 drives refcount to zero
    assert result.payload == b"shared"  # untouched, not a tombstone
    assert sanitizer.findings() == []


def test_kiosk_smoke_pipeline_zero_dynamic_findings(stmsan):
    """Acceptance: the kiosk pipeline runs clean under the sanitizer."""
    from repro.kiosk.pipeline import PipelineConfig, run_pipeline
    from repro.runtime import Cluster

    with Cluster(n_spaces=2, gc_period=0.02) as cluster:
        result = run_pipeline(
            cluster,
            PipelineConfig(n_frames=12, fps=480.0, lofi_space=1),
        )
    assert result is not None
    findings = sanitizer.findings()
    assert findings == [], "\n".join(f.render() for f in findings)


def test_stmsan_env_var_enables_at_import():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["STMSAN"] = "1"
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.analysis import sanitizer; "
            "from repro.runtime import Cluster\n"
            "assert sanitizer.enabled()\n"
            "with Cluster(n_spaces=1) as c:\n"
            "    chan = c.space(0)._channels if False else None\n"
            "print('ok')",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert "ok" in proc.stdout
