"""SARIF 2.1.0 export: golden fixture + CLI integration."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.findings import Finding
from repro.analysis.sarif import sarif_report

CORPUS = Path(__file__).parent / "corpus"
FIXTURES = Path(__file__).parent / "fixtures"


def _sample_report() -> dict:
    findings = [
        Finding(
            "STM501",
            "src/app/ring.py",
            24,
            "blocking put to bounded channel 'ring.req' (capacity 1) lies "
            "on a put->get wait cycle client -> server -> client: potential "
            "deadlock once the bounded channel fills",
        ),
        Finding(
            "STM204",
            "src/app/feed.py",
            9,
            "literal timestamps decrease on consecutive puts",
        ),
    ]
    baselined = [
        Finding(
            "STM103",
            "src/app/gc.py",
            88,
            "blocking call under a channel lock",
        ),
    ]
    return sarif_report(findings, baselined)


def test_sarif_matches_golden_fixture():
    golden = json.loads((FIXTURES / "sarif_golden.json").read_text())
    assert _sample_report() == golden


def test_sarif_structure_contract():
    doc = _sample_report()
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == ["STM103", "STM204", "STM501"]
    results = run["results"]
    assert len(results) == 3
    for res in results:
        assert rules[res["ruleIndex"]]["id"] == res["ruleId"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1
    # the baselined finding ships suppressed, not silently dropped
    suppressed = [r for r in results if r.get("suppressions")]
    assert [r["ruleId"] for r in suppressed] == ["STM103"]


def test_static_cli_emits_sarif(capsys):
    assert main([str(CORPUS / "protocol_bad.py"), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
    assert ids and all(i.startswith("STM2") for i in ids)


def test_stmgraph_cli_emits_sarif(capsys):
    assert (
        main(
            [
                "stmgraph",
                str(CORPUS / "graph_deadlock.py"),
                "--format",
                "sarif",
            ]
        )
        == 1
    )
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro.analysis.stmgraph"
    assert {r["ruleId"] for r in doc["runs"][0]["results"]} == {"STM501"}


def test_stmgraph_cli_sarif_clean_is_empty_and_exits_zero(capsys):
    assert (
        main(
            ["stmgraph", str(CORPUS / "graph_clean.py"), "--format", "sarif"]
        )
        == 0
    )
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []
