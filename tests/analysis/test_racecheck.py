"""The vector-clock race detector: clocks, lock edges, STM304/305."""

from __future__ import annotations

import os
import threading

import pytest

from repro.analysis import racecheck, sanitizer
from repro.analysis.racecheck import VectorClock
from repro.core.channel_state import ChannelKernel


@pytest.fixture
def racing():
    """Enable detector + sanitizer for one test; pristine state on both
    sides so suite-level STMSAN settings are preserved."""
    was_san = sanitizer.enabled()
    racecheck.enable()
    sanitizer.reset()
    racecheck.reset()
    try:
        yield racecheck
    finally:
        racecheck.disable()
        racecheck.reset()
        if not was_san:
            sanitizer.disable()
        sanitizer.reset()


def rules(findings):
    return sorted({f.rule_id for f in findings})


# ---------------------------------------------------------------------------
# vector clocks
# ---------------------------------------------------------------------------


def test_vector_clock_join_and_tick():
    a = VectorClock({1: 3})
    b = VectorClock({1: 1, 2: 5})
    a.join(b)
    assert a.clocks == {1: 3, 2: 5}
    a.tick(1)
    assert a.time_of(1) == 4
    assert a.time_of(99) == 0


def test_vector_clock_copy_is_independent():
    a = VectorClock({1: 1})
    b = a.copy()
    b.tick(1)
    assert a.time_of(1) == 1 and b.time_of(1) == 2


# ---------------------------------------------------------------------------
# lock-induced happens-before
# ---------------------------------------------------------------------------


def _run_pair(first, second):
    """Run ``first`` then (after it finishes) ``second`` on real threads."""
    t1 = threading.Thread(target=first)
    t1.start()
    t1.join()
    t2 = threading.Thread(target=second)
    t2.start()
    t2.join()


def test_same_lock_handoff_orders_accesses(racing):
    kernel = ChannelKernel(0)
    lock = sanitizer.san_lock("chan")
    sanitizer.guard_kernel(kernel, lock)

    def attach(conn):
        def body():
            with lock:
                kernel.attach_output(conn)

        return body

    _run_pair(attach(1), attach(2))
    assert racecheck.findings() == []


def test_different_locks_are_an_stm305_race(racing):
    kernel = ChannelKernel(0)
    lock_a = sanitizer.san_lock("chan.A")
    lock_b = sanitizer.san_lock("chan.B")
    sanitizer.guard_kernel(kernel, lock_a)

    def mutate(lock, conn):
        def body():
            with lock:
                kernel.attach_output(conn)

        return body

    # Sequential in wall-clock time, but no common lock: no
    # happens-before edge, hence a (write/write) race.
    _run_pair(mutate(lock_a, 1), mutate(lock_b, 2))
    assert "STM305" in rules(racecheck.findings())


def test_unlocked_read_against_locked_write_is_stm304(racing):
    kernel = ChannelKernel(0)
    lock = sanitizer.san_lock("chan")
    sanitizer.guard_kernel(kernel, lock)

    def write():
        with lock:
            kernel.attach_output(1)

    def read():
        kernel.unconsumed_min()  # no lock: unordered with the write

    _run_pair(write, read)
    assert "STM304" in rules(racecheck.findings())


def test_reads_alone_never_race(racing):
    kernel = ChannelKernel(0)
    lock = sanitizer.san_lock("chan")
    sanitizer.guard_kernel(kernel, lock)

    _run_pair(lambda: kernel.unconsumed_min(), lambda: kernel.unconsumed_min())
    assert racecheck.findings() == []


@pytest.mark.skipif(
    os.environ.get("STMSAN") == "race",
    reason="this run enables the detector via STMSAN=race",
)
def test_disabled_detector_records_nothing():
    assert not racecheck.enabled()
    kernel = ChannelKernel(0)
    racecheck.on_write(kernel, "k", "nowhere")
    racecheck.on_write(kernel, "k", "nowhere")
    assert racecheck.findings() == []


# ---------------------------------------------------------------------------
# the bundled workload (the ``racecheck`` CLI subcommand's engine)
# ---------------------------------------------------------------------------


def test_builtin_workload_is_race_free():
    was_enabled = racecheck.enabled()
    found = racecheck.run_builtin_workload(pairs=2, items=40)
    assert found == [], "\n".join(f.render() for f in found)
    # the workload restores the global detector/sanitizer state
    assert racecheck.enabled() == was_enabled
