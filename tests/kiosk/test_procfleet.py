"""The spawn-picklable kiosk fleet, on both runtimes.

The fleet must produce the *same* tracking results whether its stages share
a heap (thread runtime) or nothing (process runtime) — STM channels are the
only coupling, so the runtimes cannot diverge semantically.
"""

import pickle

from repro.kiosk.procfleet import FleetConfig, run_fleet
from repro.runtime import Cluster, ProcCluster


class TestFleet:
    def test_config_pickles(self):
        config = FleetConfig(n_frames=3)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_fleet_on_thread_runtime(self):
        config = FleetConfig(n_frames=10)
        with Cluster(n_spaces=3, gc_period=0.05) as cluster:
            result = run_fleet(cluster, config)
        assert result.frames_tracked == 10
        assert result.frames_detected > 0
        assert len(result.decisions) == 10
        assert result.mean_tracking_error < 5.0

    def test_fleet_on_process_runtime_matches(self):
        config = FleetConfig(n_frames=10)
        with Cluster(n_spaces=3, gc_period=0.05) as cluster:
            threads = run_fleet(cluster, config)
        with ProcCluster(n_spaces=3, gc_period=0.05) as cluster:
            procs = run_fleet(cluster, config)
        assert procs.frames_tracked == threads.frames_tracked
        assert procs.frames_detected == threads.frames_detected
        assert procs.mean_tracking_error == threads.mean_tracking_error
        assert [d.action for d in procs.decisions] == [
            d.action for d in threads.decisions
        ]
