"""Unit tests for the synthetic video source."""

import numpy as np
import pytest

from repro.kiosk.frames import (
    FRAME_HEIGHT,
    FRAME_WIDTH,
    Actor,
    SyntheticScene,
    frame_bytes,
)


@pytest.fixture(scope="module")
def scene():
    return SyntheticScene(seed=1)


class TestGeometry:
    def test_frame_shape_matches_paper(self, scene):
        frame = scene.render(0)
        assert frame.shape == (FRAME_HEIGHT, FRAME_WIDTH, 3)
        assert frame.dtype == np.uint8
        assert frame.nbytes == frame_bytes() == 230_400

    def test_determinism(self):
        a = SyntheticScene(seed=5).render(3)
        b = SyntheticScene(seed=5).render(3)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SyntheticScene(seed=5).render(3)
        b = SyntheticScene(seed=6).render(3)
        assert not np.array_equal(a, b)

    def test_noise_is_per_frame_deterministic(self, scene):
        np.testing.assert_array_equal(scene.render(7), scene.render(7))


class TestActors:
    def test_default_scene_has_two_actors(self, scene):
        assert len(scene.actors) == 2
        assert len(scene.ground_truth(0)) == 1  # second enters at 40
        assert len(scene.ground_truth(50)) == 2

    def test_enter_leave_windows(self):
        actor = Actor(color=(255, 0, 0), start=(50, 50), velocity=(1, 0),
                      enters_at=10, leaves_at=20)
        assert not actor.present(9)
        assert actor.present(10)
        assert actor.present(19)
        assert not actor.present(20)

    def test_position_moves_linearly(self):
        actor = Actor(color=(255, 0, 0), start=(50.0, 60.0), velocity=(2.0, 1.0))
        x0, y0 = actor.position(0)
        x5, y5 = actor.position(5)
        assert (x5 - x0, y5 - y0) == (10.0, 5.0)

    def test_position_reflects_at_borders(self):
        actor = Actor(color=(255, 0, 0), start=(300.0, 120.0),
                      velocity=(10.0, 0.0), radii=(10.0, 10.0))
        for t in range(200):
            x, y = actor.position(t)
            assert 10.0 <= x <= FRAME_WIDTH - 10.0
            assert 10.0 <= y <= FRAME_HEIGHT - 10.0

    def test_actor_pixels_present_in_frame(self, scene):
        frame = scene.render(0, with_noise=False)
        (cx, cy) = scene.ground_truth(0)[0]
        color = np.asarray(scene.actors[0].color)
        np.testing.assert_array_equal(frame[int(cy), int(cx)], color)

    def test_background_where_no_actor(self, scene):
        frame = scene.render(0, with_noise=False)
        # corner far from both actor trajectories equals the background
        np.testing.assert_array_equal(frame[0, 0], scene.background[0, 0])
