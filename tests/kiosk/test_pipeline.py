"""End-to-end tests of the Smart Kiosk pipeline on STM (paper Figs. 2-7)."""

import pytest

from repro.kiosk import PipelineConfig, run_pipeline
from repro.runtime import Cluster


@pytest.fixture(scope="module")
def single_space_result():
    with Cluster(n_spaces=1, gc_period=0.02) as cluster:
        yield run_pipeline(
            cluster, PipelineConfig(n_frames=50, fps=200.0, scene_seed=11)
        )


class TestSingleSpace:
    def test_all_frames_digitized(self, single_space_result):
        assert single_space_result.frames_digitized == 50

    def test_lofi_analyzed_most_frames(self, single_space_result):
        r = single_space_result
        assert r.frames_analyzed_lofi >= 25
        assert r.frames_analyzed_lofi + r.frames_skipped_lofi <= 50

    def test_records_inherit_frame_timestamps(self, single_space_result):
        for record in single_space_result.lofi_records:
            assert 0 <= record.timestamp < 50

    def test_customer_greeted(self, single_space_result):
        assert single_space_result.gui.greetings >= 1

    def test_decisions_cover_analyzed_frames(self, single_space_result):
        r = single_space_result
        assert len(r.decisions) == r.frames_analyzed_lofi

    def test_tracking_accuracy(self, single_space_result):
        assert single_space_result.mean_tracking_error < 10.0

    def test_hifi_spawned_dynamically(self, single_space_result):
        r = single_space_result
        assert r.hifi_spawned >= 1
        assert r.frames_analyzed_hifi >= 1

    def test_hifi_is_temporally_sparser_or_equal(self, single_space_result):
        """§3: higher levels become temporally sparser (they start later
        and may drop frames)."""
        r = single_space_result
        assert r.frames_analyzed_hifi <= r.frames_digitized


class TestMultiSpace:
    def test_pipeline_across_three_spaces(self):
        with Cluster(n_spaces=3, gc_period=0.02) as cluster:
            config = PipelineConfig(
                n_frames=40,
                fps=200.0,
                digitizer_space=0,
                lofi_space=1,
                hifi_space=1,
                decision_space=2,
                gui_space=2,
                scene_seed=11,
            )
            result = run_pipeline(cluster, config)
        assert result.frames_digitized == 40
        assert result.frames_analyzed_lofi >= 15
        assert result.gui.greetings >= 1
        assert result.mean_tracking_error < 10.0


class TestVariants:
    def test_without_hifi(self):
        with Cluster(n_spaces=1, gc_period=0.02) as cluster:
            result = run_pipeline(
                cluster,
                PipelineConfig(n_frames=25, fps=200.0, enable_hifi=False,
                               scene_seed=11),
            )
        assert result.hifi_spawned == 0
        assert result.frames_analyzed_hifi == 0
        assert result.gui.greetings >= 1  # lofi alone suffices to greet

    def test_without_color_refinement(self):
        with Cluster(n_spaces=1, gc_period=0.02) as cluster:
            result = run_pipeline(
                cluster,
                PipelineConfig(n_frames=25, fps=200.0, enable_color=False,
                               scene_seed=11),
            )
        assert result.frames_analyzed_lofi >= 10
        assert result.mean_tracking_error < 10.0

    def test_bounded_frame_channel(self):
        """A small frame channel throttles but must not deadlock (GC frees
        slots as the trackers consume)."""
        with Cluster(n_spaces=1, gc_period=0.01) as cluster:
            result = run_pipeline(
                cluster,
                PipelineConfig(n_frames=30, fps=200.0,
                               frame_channel_capacity=4, scene_seed=11),
            )
        assert result.frames_digitized == 30
        assert result.frames_analyzed_lofi >= 10

    def test_gc_reclaims_frames_during_run(self):
        with Cluster(n_spaces=1, gc_period=0.01) as cluster:
            result = run_pipeline(
                cluster, PipelineConfig(n_frames=40, fps=200.0, scene_seed=11)
            )
            stm_space = cluster.space(0)
            video = [
                ch for ch in stm_space.local_channels()
                if ch.handle.name == "kiosk.video"
            ][0]
            # after the run, everything is consumable; a final GC round
            # leaves (at most) the sentinel column
            cluster.gc_once()
            assert len(video.kernel) <= 1
        assert result.frames_digitized == 40


class TestMultiModal:
    @pytest.fixture(scope="class")
    def result(self):
        with Cluster(n_spaces=1, gc_period=0.02) as cluster:
            yield run_pipeline(
                cluster,
                PipelineConfig(
                    n_frames=50, fps=200.0, scene_seed=11,
                    enable_audio=True, enable_gesture=True,
                    speech_frames=tuple(range(10, 30)),
                ),
            )

    def test_audio_stream_covers_every_frame(self, result):
        assert len(result.audio_records) == 50

    def test_speech_detected_on_schedule(self, result):
        """The detector finds (almost exactly) the scheduled speech burst."""
        assert 15 <= result.speech_frames_detected <= 22
        speech_ts = {r.timestamp for r in result.audio_records if r.speech}
        assert speech_ts <= set(range(10, 32))  # no far-off false positives

    def test_audio_boosts_decision_confidence(self, result):
        by_ts = {d.timestamp: d for d in result.decisions}
        speaking = [d.confidence for ts, d in by_ts.items() if 12 <= ts < 28]
        silent = [d.confidence for ts, d in by_ts.items() if ts < 8 or ts > 35]
        assert speaking and silent
        assert max(speaking) > max(silent)

    def test_gesture_stage_produces_events(self, result):
        assert result.gestures
        # the synthetic customer walks across the scene
        assert any(e.gesture == "walk" for e in result.gestures)

    def test_gesture_events_inherit_column_timestamps(self, result):
        for event in result.gestures:
            assert 0 <= event.timestamp < 50
