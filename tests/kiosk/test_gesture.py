"""Tests for gesture recognition over a sliding STM window (paper §1)."""

import math

import pytest

from repro.core import INFINITY
from repro.kiosk.gesture import (
    GestureRecognizer,
    classify_trajectory,
    run_gesture_stage,
)
from repro.kiosk.records import Region, TrackRecord
from repro.runtime import Cluster
from repro.stm import STM


def track(ts, x, y):
    region = Region(int(x) - 5, int(y) - 5, int(x) + 5, int(y) + 5,
                    float(x), float(y), 100)
    return TrackRecord(timestamp=ts, tracker="lofi", regions=[region],
                       scores=[0.9])


class TestClassifier:
    def test_wave(self):
        xs = [100, 110, 100, 110, 100, 110, 100]
        ys = [50.0] * 7
        label, conf = classify_trajectory(xs, ys)
        assert label == "wave"
        assert conf > 0.5

    def test_walk(self):
        xs = [100 + 4 * i for i in range(8)]
        ys = [50 + 1 * i for i in range(8)]
        label, conf = classify_trajectory(xs, ys)
        assert label == "walk"
        assert conf > 0.7

    def test_still(self):
        xs = [100 + 0.2 * math.sin(i) for i in range(8)]
        ys = [50.0] * 8
        label, conf = classify_trajectory(xs, ys)
        assert label == "still"

    def test_too_short_is_still(self):
        assert classify_trajectory([1, 2], [1, 2])[0] == "still"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            classify_trajectory([1, 2, 3], [1, 2])

    def test_jittery_walk_is_not_wave(self):
        """Small oscillation on top of strong drift stays a walk."""
        xs = [100 + 5 * i + (0.3 if i % 2 else -0.3) for i in range(10)]
        ys = [50.0] * 10
        assert classify_trajectory(xs, ys)[0] == "walk"


class TestRecognizer:
    def test_needs_min_records(self):
        rec = GestureRecognizer(window=8, min_records=5)
        for ts in range(4):
            assert rec.feed(track(ts, 100 + ts, 50)) is None
        assert rec.feed(track(4, 104, 50)) is not None

    def test_wave_detected_in_stream(self):
        rec = GestureRecognizer(window=8, min_records=6)
        events = []
        for ts in range(12):
            x = 100 + (8 if ts % 2 else 0)
            event = rec.feed(track(ts, x, 50))
            if event:
                events.append(event)
        assert any(e.gesture == "wave" for e in events)

    def test_window_slides(self):
        rec = GestureRecognizer(window=5, min_records=3)
        for ts in range(10):
            rec.feed(track(ts, 100, 50))
        assert rec.trailing_edge == 5  # only the last window retained

    def test_missing_detections_tolerated(self):
        rec = GestureRecognizer(window=8, min_records=3)
        rec.feed(track(0, 100, 50))
        empty = TrackRecord(timestamp=1, tracker="lofi")  # no region
        rec.feed(empty)
        rec.feed(track(2, 104, 50))
        event = rec.feed(track(3, 108, 50))
        assert event is not None

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            GestureRecognizer(window=2)


class TestGestureStageOnSTM:
    def test_stage_consumes_trailing_edge_only(self):
        """The §1 sliding-window pattern: the GC horizon trails the window."""
        with Cluster(n_spaces=1, gc_period=None) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("tracks")
            out = chan.attach_output()
            events = {}

            def stage():
                inp = chan.attach_input()
                recognizer = GestureRecognizer(window=6, min_records=4)
                events["list"] = run_gesture_stage(inp, recognizer)
                inp.detach()

            handle = cluster.space(0).spawn(stage, virtual_time=0)
            n = 20
            for ts in range(n):
                boot.set_virtual_time(ts)
                x = 100 + (6 if ts % 2 else 0)  # waving
                out.put(ts, track(ts, x, 50))
            boot.set_virtual_time(n)
            out.put(n, None)
            handle.join(30)
            boot.set_virtual_time(INFINITY)
            out.detach()
            assert any(e.gesture == "wave" for e in events["list"])
            boot.exit()

    def test_stage_keeps_window_alive_in_channel(self):
        """While the stage is mid-stream, items inside its window survive
        GC; items behind the trailing edge are reclaimed."""
        import threading
        import time

        with Cluster(n_spaces=1, gc_period=0.01) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            chan = stm.create_channel("tracks2")
            out = chan.attach_output()
            window = 6
            paused = threading.Event()

            def stage():
                inp = chan.attach_input()
                recognizer = GestureRecognizer(window=window, min_records=4)
                from repro.core import STM_OLDEST_UNSEEN
                from repro.runtime import current_thread

                current_thread().set_virtual_time(INFINITY)
                for _ in range(12):
                    item = inp.get(STM_OLDEST_UNSEEN)
                    recognizer.feed(item.value)
                    edge = recognizer.trailing_edge
                    if edge is not None and edge > 0:
                        inp.consume_until(edge - 1)
                paused.set()
                time.sleep(0.2)  # hold the window while we inspect
                inp.consume_until(10**6)
                inp.detach()

            handle = cluster.space(0).spawn(stage, virtual_time=0)
            for ts in range(12):
                boot.set_virtual_time(ts)
                out.put(ts, track(ts, 100 + ts, 50))
            boot.set_virtual_time(INFINITY)
            assert paused.wait(20)
            time.sleep(0.05)  # several GC rounds
            kernel = cluster.space(0)._channel(chan.channel_id).kernel
            stored = kernel.timestamps()
            # the last `window` columns are alive; older ones are collected
            assert stored and min(stored) >= 12 - window
            handle.join(20)
            boot.exit()
