"""Unit tests for the color-histogram tracker."""

import numpy as np
import pytest

from repro.kiosk.color_tracker import ColorTracker, back_project, color_histogram
from repro.kiosk.frames import SyntheticScene
from repro.kiosk.records import Region


def solid(color, h=16, w=16):
    return np.tile(np.asarray(color, dtype=np.uint8).reshape(1, 1, 3), (h, w, 1))


class TestHistogram:
    def test_normalized(self):
        hist = color_histogram(solid((200, 40, 40)))
        assert hist.sum() == pytest.approx(1.0)
        assert (hist >= 0).all()

    def test_solid_patch_single_bin(self):
        hist = color_histogram(solid((200, 40, 40)))
        assert (hist > 0).sum() == 1
        assert hist.max() == pytest.approx(1.0)

    def test_empty_patch_rejected(self):
        with pytest.raises(ValueError):
            color_histogram(np.empty((0, 3), dtype=np.uint8))

    def test_bins_parameter(self):
        hist = color_histogram(solid((10, 20, 30)), bins=4)
        assert hist.shape == (64,)


class TestBackProjection:
    def test_discriminates_colors(self):
        model = color_histogram(solid((200, 40, 40)))
        frame = np.concatenate(
            [solid((200, 40, 40), 8, 8), solid((40, 60, 210), 8, 8)], axis=1
        )
        bp = back_project(frame, model)
        assert bp[:, :8].mean() == pytest.approx(1.0)
        assert bp[:, 8:].mean() == pytest.approx(0.0)

    def test_shape_matches_frame(self):
        model = color_histogram(solid((1, 2, 3)))
        bp = back_project(np.zeros((5, 7, 3), dtype=np.uint8), model)
        assert bp.shape == (5, 7)

    def test_wrong_histogram_shape_rejected(self):
        with pytest.raises(ValueError):
            back_project(np.zeros((4, 4, 3), dtype=np.uint8), np.zeros(10))


class TestColorTracker:
    @pytest.fixture(scope="class")
    def scene(self):
        return SyntheticScene(seed=2, noise_sigma=0.0)

    @pytest.fixture(scope="class")
    def tracker(self, scene):
        return ColorTracker(color_histogram(solid(scene.actors[0].color)))

    def test_localize_converges_to_actor(self, scene, tracker):
        frame = scene.render(0)
        (gx, gy) = scene.ground_truth(0)[0]
        # start the mean-shift 15 px off target
        cx, cy, score = tracker.localize(frame, (gx + 15, gy - 12))
        assert abs(cx - gx) < 5 and abs(cy - gy) < 5
        assert score > tracker.accept_score

    def test_score_region_discriminates(self, scene, tracker):
        frame = scene.render(50)  # both actors present
        (x0, y0) = scene.ground_truth(50)[0]
        right = Region(int(x0) - 10, int(y0) - 10, int(x0) + 10, int(y0) + 10,
                       x0, y0, 400)
        wrong = Region(0, 0, 20, 20, 10, 10, 400)
        assert tracker.score_region(frame, right) > 5 * max(
            tracker.score_region(frame, wrong), 1e-6
        )

    def test_analyze_confirms_candidates(self, scene, tracker):
        frame = scene.render(0)
        (gx, gy) = scene.ground_truth(0)[0]
        candidate = Region(int(gx) - 12, int(gy) - 12, int(gx) + 12,
                           int(gy) + 12, gx, gy, 500)
        record = tracker.analyze(0, frame, [candidate])
        assert record.detected
        best, score = record.best()
        assert abs(best.cx - gx) < 5

    def test_analyze_rejects_wrong_color_candidate(self, scene, tracker):
        frame = scene.render(50)
        # candidate over the BLUE actor scored against the RED model:
        (bx, by) = scene.ground_truth(50)[1]
        candidate = Region(int(bx) - 10, int(by) - 10, int(bx) + 10,
                           int(by) + 10, bx, by, 400)
        record = tracker.analyze(50, frame, [candidate])
        assert not record.detected

    def test_analyze_whole_frame_scan(self, scene, tracker):
        record = tracker.analyze(0, scene.render(0), candidates=None)
        assert record.detected
        (gx, gy) = scene.ground_truth(0)[0]
        best, _ = record.best()
        assert abs(best.cx - gx) < 6 and abs(best.cy - gy) < 6

    def test_empty_region_scores_zero(self, tracker, scene):
        frame = scene.render(0)
        degenerate = Region(5, 5, 5, 5, 5, 5, 0)
        assert tracker.score_region(frame, degenerate) == 0.0
