"""Unit + differential tests for the NCC hi-fi tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kiosk.frames import SyntheticScene
from repro.kiosk.hifi_tracker import HifiTracker, normalized_cross_correlation
from repro.kiosk.records import Region


def naive_ncc(image, template):
    """Reference O(HW·th·tw) implementation for differential testing."""
    image = image.astype(np.float64)
    t = template.astype(np.float64)
    t = t - t.mean()
    t_norm = np.sqrt((t * t).sum())
    th, tw = t.shape
    out = np.zeros((image.shape[0] - th + 1, image.shape[1] - tw + 1))
    if t_norm <= 1e-12:
        return out
    for y in range(out.shape[0]):
        for x in range(out.shape[1]):
            win = image[y : y + th, x : x + tw]
            w = win - win.mean()
            denom = np.sqrt((w * w).sum()) * t_norm
            out[y, x] = (w * t).sum() / denom if denom > 1e-9 else 0.0
    return np.clip(out, -1, 1)


class TestNCC:
    def test_self_match_is_one(self):
        rng = np.random.default_rng(0)
        img = rng.uniform(0, 255, (20, 20))
        ncc = normalized_cross_correlation(img, img)
        assert ncc.shape == (1, 1)
        assert ncc[0, 0] == pytest.approx(1.0, abs=1e-9)

    def test_peak_at_embedded_template(self):
        rng = np.random.default_rng(1)
        img = rng.uniform(0, 255, (60, 80))
        template = img[20:35, 30:50].copy()
        ncc = normalized_cross_correlation(img, template)
        peak = np.unravel_index(np.argmax(ncc), ncc.shape)
        assert peak == (20, 30)
        assert ncc[peak] == pytest.approx(1.0, abs=1e-9)

    def test_values_bounded(self):
        rng = np.random.default_rng(2)
        img = rng.uniform(0, 255, (40, 40))
        ncc = normalized_cross_correlation(img, rng.uniform(0, 255, (8, 8)))
        assert (ncc <= 1.0 + 1e-9).all() and (ncc >= -1.0 - 1e-9).all()

    def test_flat_template_scores_zero(self):
        img = np.random.default_rng(3).uniform(0, 255, (20, 20))
        ncc = normalized_cross_correlation(img, np.full((5, 5), 7.0))
        assert not ncc.any()

    def test_flat_image_region_scores_zero(self):
        img = np.full((20, 20), 3.0)
        template = np.random.default_rng(4).uniform(0, 255, (5, 5))
        ncc = normalized_cross_correlation(img, template)
        assert not ncc.any()

    def test_template_larger_than_image_rejected(self):
        with pytest.raises(ValueError):
            normalized_cross_correlation(np.zeros((4, 4)), np.zeros((8, 8)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            normalized_cross_correlation(np.zeros((4, 4, 3)), np.zeros((2, 2)))

    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(6, 18), st.integers(6, 18)),
                   elements=st.floats(0, 255)),
        st.integers(2, 5),
        st.integers(2, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_reference(self, img, th, tw):
        template = img[:th, :tw].copy()
        fast = normalized_cross_correlation(img, template)
        slow = naive_ncc(img, template)
        # Near-zero-variance windows are threshold cases where the two
        # implementations may legitimately disagree about "flat"; compare
        # only where the correlation is numerically meaningful.
        t = template - template.mean()
        t_norm = np.sqrt((t * t).sum())
        meaningful = np.zeros_like(slow, dtype=bool)
        for y in range(slow.shape[0]):
            for x in range(slow.shape[1]):
                win = img[y : y + th, x : x + tw]
                w = win - win.mean()
                # Denominators below ~1 pixel² suffer catastrophic
                # cancellation in the box-sum variance; real matches have
                # denominators in the thousands.
                meaningful[y, x] = np.sqrt((w * w).sum()) * t_norm > 1.0
        np.testing.assert_allclose(
            fast[meaningful], slow[meaningful], atol=1e-5
        )


class TestHifiTracker:
    @pytest.fixture(scope="class")
    def scene(self):
        return SyntheticScene(seed=4, noise_sigma=0.0)

    def make_region(self, scene, t):
        (cx, cy) = scene.ground_truth(t)[0]
        return Region(int(cx) - 14, int(cy) - 20, int(cx) + 14, int(cy) + 20,
                      cx, cy, 400)

    def test_acquire_then_track(self, scene):
        tracker = HifiTracker()
        assert not tracker.acquired
        tracker.acquire(scene.render(0), self.make_region(scene, 0))
        assert tracker.acquired
        for t in range(1, 6):
            record = tracker.analyze(t, scene.render(t))
            assert record.detected, f"lost target at frame {t}"
            best, score = record.best()
            (gx, gy) = scene.ground_truth(t)[0]
            assert abs(best.cx - gx) < 6 and abs(best.cy - gy) < 6
            assert score > tracker.accept_score

    def test_analyze_before_acquire_rejected(self, scene):
        with pytest.raises(RuntimeError):
            HifiTracker().analyze(0, scene.render(0))

    def test_empty_region_rejected(self, scene):
        tracker = HifiTracker()
        with pytest.raises(ValueError):
            tracker.acquire(scene.render(0), Region(5, 5, 5, 9, 5, 7, 0))

    def test_miss_grows_search_margin(self, scene):
        tracker = HifiTracker(search_margin=10, search_growth=15)
        tracker.acquire(scene.render(0), self.make_region(scene, 0))
        empty = SyntheticScene(actors=[], seed=4, noise_sigma=0.0)
        record = tracker.analyze(1, empty.render(1))
        assert not record.detected
        assert tracker._margin == 25

    def test_reacquires_after_jump(self, scene):
        """Target jumps further than one frame of motion; the growing search
        window recovers it within a few frames."""
        tracker = HifiTracker(search_margin=6, search_growth=20)
        tracker.acquire(scene.render(0), self.make_region(scene, 0))
        # skip ahead 15 frames: the actor moved ~30 px
        detected_at = None
        for attempt, t in enumerate([15, 15, 15, 15]):
            record = tracker.analyze(t, scene.render(t))
            if record.detected:
                detected_at = attempt
                break
        assert detected_at is not None
