"""Unit tests for the decision module and GUI state machine."""

import pytest

from repro.kiosk.decision import DecisionModule, GuiModule
from repro.kiosk.records import Region, TrackRecord


def track(ts, detected=True, tracker="lofi", score=0.8):
    regions = (
        [Region(10, 10, 30, 30, 20.0, 20.0, 400)] if detected else []
    )
    scores = [score] if detected else []
    return TrackRecord(timestamp=ts, tracker=tracker, regions=regions,
                       scores=scores)


class TestDecisionModule:
    def test_idle_when_nothing_detected(self):
        module = DecisionModule()
        dec = module.decide(0, lofi=track(0, detected=False))
        assert dec.action == "idle"
        assert dec.customers_present == 0
        assert dec.focus is None

    def test_greet_after_streak(self):
        module = DecisionModule(present_after=2)
        assert module.decide(0, lofi=track(0)).action == "idle"
        dec = module.decide(1, lofi=track(1))
        assert dec.action == "greet"
        assert module.decide(2, lofi=track(2)).action == "engage"

    def test_farewell_after_absence(self):
        module = DecisionModule(present_after=1, absent_after=2)
        module.decide(0, lofi=track(0))  # greet
        module.decide(1, lofi=track(1, detected=False))
        dec = module.decide(2, lofi=track(2, detected=False))
        assert dec.action == "farewell"

    def test_flapping_suppressed_by_hysteresis(self):
        module = DecisionModule(present_after=2, absent_after=3)
        actions = []
        pattern = [True, False, True, False, True, True]
        for ts, present in enumerate(pattern):
            actions.append(module.decide(ts, lofi=track(ts, present)).action)
        assert "greet" not in actions[:4]  # never two in a row until the end
        assert actions[-1] == "greet"

    def test_hifi_takes_precedence(self):
        module = DecisionModule(present_after=1)
        dec = module.decide(
            0, lofi=track(0, score=0.2), hifi=track(0, tracker="hifi", score=0.9)
        )
        assert dec.confidence > 0.9  # 0.5 + 0.5*0.9
        assert dec.focus == (20.0, 20.0)

    def test_lofi_only_confidence_lower(self):
        module = DecisionModule(present_after=1)
        dec = module.decide(0, lofi=track(0, score=0.8), hifi=None)
        assert dec.confidence == pytest.approx(0.4)

    def test_counts_customers(self):
        record = TrackRecord(
            timestamp=0,
            tracker="lofi",
            regions=[Region(0, 0, 5, 5, 2, 2, 25),
                     Region(10, 10, 15, 15, 12, 12, 25)],
            scores=[0.5, 0.7],
        )
        module = DecisionModule(present_after=1)
        dec = module.decide(0, lofi=record)
        assert dec.customers_present == 2
        assert dec.focus == (12, 12)  # highest score wins


class TestGuiModule:
    def test_transcript_records_greet_and_farewell(self):
        module = DecisionModule(present_after=1, absent_after=1)
        gui = GuiModule()
        gui.react(module.decide(0, lofi=track(0)))
        gui.react(module.decide(1, lofi=track(1)))
        gui.react(module.decide(2, lofi=track(2, detected=False)))
        assert gui.greetings == 1
        assert gui.farewells == 1
        assert "Welcome" in gui.transcript[0].utterance

    def test_engage_and_idle_are_silent(self):
        module = DecisionModule(present_after=1)
        gui = GuiModule()
        assert gui.react(module.decide(0, lofi=track(0, detected=False))) is None
        module.decide(1, lofi=track(1))  # greet consumed silently
        assert gui.react(module.decide(2, lofi=track(2))) is None  # engage
        assert gui.transcript == []
