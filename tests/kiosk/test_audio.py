"""Tests for the audio modality and multi-modal fusion (paper §2-3)."""

import numpy as np
import pytest

from repro.core import INFINITY
from repro.kiosk.audio import (
    AUDIO_RATE,
    SAMPLES_PER_FRAME,
    AudioChunk,
    SpeechDetector,
    SyntheticMicrophone,
)
from repro.kiosk.decision import DecisionModule
from repro.kiosk.records import Region, TrackRecord
from repro.runtime import Cluster
from repro.stm import STM


class TestSyntheticMicrophone:
    def test_chunk_shape(self):
        mic = SyntheticMicrophone()
        chunk = mic.chunk(0)
        assert chunk.samples.shape == (SAMPLES_PER_FRAME,)
        assert chunk.samples.dtype == np.float32
        assert SAMPLES_PER_FRAME == AUDIO_RATE // 30

    def test_deterministic(self):
        a = SyntheticMicrophone().chunk(7).samples
        b = SyntheticMicrophone().chunk(7).samples
        np.testing.assert_array_equal(a, b)

    def test_speech_louder_than_silence(self):
        mic = SyntheticMicrophone(speech_frames=frozenset([5]))
        quiet = np.sqrt(np.mean(mic.chunk(0).samples ** 2))
        loud = np.sqrt(np.mean(mic.chunk(5).samples ** 2))
        assert loud > 5 * quiet

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            AudioChunk(0, np.zeros((2, 3), dtype=np.float32))


class TestSpeechDetector:
    def test_detects_scheduled_speech(self):
        mic = SyntheticMicrophone(speech_frames=frozenset(range(10, 20)))
        detector = SpeechDetector()
        records = [detector.analyze(mic.chunk(t)) for t in range(30)]
        for t in range(12, 20):  # allow a couple frames of calibration slack
            assert records[t].speech, f"missed speech at frame {t}"
        for t in range(0, 10):
            assert not records[t].speech, f"false positive at frame {t}"
        for t in range(21, 30):
            assert not records[t].speech, f"false positive at frame {t}"

    def test_white_noise_burst_rejected_by_zcr(self):
        """A loud *unvoiced* burst (white noise) is not speech."""
        detector = SpeechDetector()
        rng = np.random.default_rng(0)
        for t in range(5):  # calibration
            quiet = rng.standard_normal(SAMPLES_PER_FRAME).astype(np.float32) * 0.01
            detector.analyze(AudioChunk(t, quiet))
        loud_noise = rng.standard_normal(SAMPLES_PER_FRAME).astype(np.float32) * 0.5
        record = detector.analyze(AudioChunk(5, loud_noise))
        assert not record.speech  # high ZCR vetoes it
        assert record.zero_crossing_rate > 0.25

    def test_features(self):
        silent = np.zeros(100, dtype=np.float32)
        energy, zcr = SpeechDetector.features(silent)
        assert energy == 0.0
        assert zcr == 0.0
        alternating = np.array([1.0, -1.0] * 50, dtype=np.float32)
        _, zcr = SpeechDetector.features(alternating)
        assert zcr == pytest.approx(1.0)


class TestMultiModalFusion:
    def _track(self, ts, detected=True):
        regions = [Region(10, 10, 30, 30, 20.0, 20.0, 400)] if detected else []
        return TrackRecord(timestamp=ts, tracker="lofi", regions=regions,
                           scores=[0.6] if detected else [])

    def _audio(self, ts, speech):
        from repro.kiosk.audio import AudioRecord

        return AudioRecord(timestamp=ts, speech=speech, energy=0.1,
                           zero_crossing_rate=0.1)

    def test_speech_boosts_confidence(self):
        module = DecisionModule(present_after=1)
        silent = module.decide(0, lofi=self._track(0), audio=self._audio(0, False))
        module2 = DecisionModule(present_after=1)
        speaking = module2.decide(0, lofi=self._track(0),
                                  audio=self._audio(0, True))
        assert speaking.confidence > silent.confidence

    def test_voice_alone_counts_as_presence(self):
        """§2: the kiosk reacts to being addressed from off-camera."""
        module = DecisionModule(present_after=1)
        dec = module.decide(0, lofi=self._track(0, detected=False),
                            audio=self._audio(0, True))
        assert dec.customers_present == 1
        assert dec.action == "greet"

    def test_fusion_over_stm_columns(self):
        """Video and audio channels joined per timestamp column (§3)."""
        mic = SyntheticMicrophone(speech_frames=frozenset(range(8, 16)))
        n = 20
        decisions = {}
        with Cluster(n_spaces=1, gc_period=None) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            stm = STM(cluster.space(0))
            tracks = stm.create_channel("fusion.tracks")
            audio = stm.create_channel("fusion.audio")
            t_out, a_out = tracks.attach_output(), audio.attach_output()

            def fuser():
                from repro.runtime import current_thread

                t_in = tracks.attach_input()
                a_in = audio.attach_input()
                current_thread().set_virtual_time(INFINITY)
                module = DecisionModule(present_after=1)
                detector = SpeechDetector()
                for ts in range(n):
                    track_item = t_in.get(ts)  # temporal join: same column,
                    chunk_item = a_in.get(ts)  # two modalities (§3)
                    record = detector.analyze(chunk_item.value)
                    decisions[ts] = module.decide(
                        ts, lofi=track_item.value, audio=record
                    )
                    t_in.consume_until(ts)
                    a_in.consume_until(ts)
                t_in.detach()
                a_in.detach()

            handle = cluster.space(0).spawn(fuser, virtual_time=0)
            for ts in range(n):
                boot.set_virtual_time(ts)
                t_out.put(ts, self._track(ts, detected=ts >= 4))
                a_out.put(ts, mic.chunk(ts))
            handle.join(30)
            boot.exit()
        # during overlapping speech+vision, confidence beats vision alone
        vision_only = decisions[5].confidence
        fused = decisions[12].confidence
        assert fused > vision_only
