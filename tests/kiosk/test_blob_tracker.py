"""Unit + differential tests for the image-differencing blob tracker."""

import numpy as np
import pytest
import scipy.ndimage as ndi
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kiosk.blob_tracker import BlobTracker, connected_components
from repro.kiosk.frames import SyntheticScene


class TestConnectedComponents:
    def test_empty_mask(self):
        labels, n = connected_components(np.zeros((5, 5), dtype=bool))
        assert n == 0
        assert not labels.any()

    def test_single_blob(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2:4, 2:5] = True
        labels, n = connected_components(mask)
        assert n == 1
        assert (labels > 0).sum() == 6

    def test_two_separate_blobs(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 0] = True
        mask[5, 5] = True
        labels, n = connected_components(mask)
        assert n == 2
        assert labels[0, 0] != labels[5, 5]

    def test_diagonal_is_not_connected(self):
        """4-connectivity: diagonal touch is two components."""
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        _, n = connected_components(mask)
        assert n == 2

    def test_u_shape_merges_via_union_find(self):
        mask = np.array(
            [
                [1, 0, 1],
                [1, 0, 1],
                [1, 1, 1],
            ],
            dtype=bool,
        )
        labels, n = connected_components(mask)
        assert n == 1
        assert len(np.unique(labels[mask])) == 1

    def test_bad_input_rejected(self):
        with pytest.raises(ValueError):
            connected_components(np.zeros((3, 3), dtype=np.uint8))

    @given(
        hnp.arrays(dtype=bool, shape=st.tuples(st.integers(1, 24),
                                               st.integers(1, 24)))
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy(self, mask):
        """Differential test against scipy.ndimage.label (4-connectivity)."""
        ours, n_ours = connected_components(mask)
        structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
        theirs, n_theirs = ndi.label(mask, structure=structure)
        assert n_ours == n_theirs
        # label values may differ; the partition must be identical
        for component in range(1, n_ours + 1):
            cells = ours == component
            their_labels = np.unique(theirs[cells])
            assert len(their_labels) == 1
            assert (theirs == their_labels[0]).sum() == cells.sum()


class TestBlobTracker:
    @pytest.fixture(scope="class")
    def scene(self):
        return SyntheticScene(seed=3)

    def test_detects_actor(self, scene):
        tracker = BlobTracker(scene.background)
        record = tracker.analyze(0, scene.render(0))
        assert record.detected
        assert record.tracker == "lofi"
        (gx, gy) = scene.ground_truth(0)[0]
        best, score = record.best()
        assert abs(best.cx - gx) < 4 and abs(best.cy - gy) < 4
        assert 0 < score <= 1

    def test_empty_scene_no_detection(self, scene):
        empty = SyntheticScene(actors=[], seed=3)
        tracker = BlobTracker(empty.background)
        record = tracker.analyze(0, empty.render(0))
        assert not record.detected
        assert record.best() is None

    def test_two_actors_two_regions(self, scene):
        record = BlobTracker(scene.background).analyze(50, scene.render(50))
        assert len(record.regions) == 2

    def test_min_area_filters_noise(self, scene):
        frame = scene.render(0)
        huge_min = BlobTracker(scene.background, min_area=10_000)
        assert not huge_min.analyze(0, frame).detected

    def test_region_geometry_consistent(self, scene):
        record = BlobTracker(scene.background).analyze(0, scene.render(0))
        for region in record.regions:
            assert region.x0 < region.x1 and region.y0 < region.y1
            assert region.contains(region.cx, region.cy)
            assert region.area <= region.width * region.height

    def test_background_adaptation(self):
        """With adaptation on, a permanent change fades into the background."""
        base = np.full((40, 40, 3), 100, dtype=np.uint8)
        changed = base.copy()
        changed[10:30, 10:30] = 180
        tracker = BlobTracker(base, threshold=20, min_area=10, adapt=0.5)
        assert tracker.analyze(0, changed).detected
        # the changed region is 'active', so it does NOT adapt; but change
        # the scene back and the quiet pixels converge again
        for t in range(1, 4):
            tracker.analyze(t, base)
        record = tracker.analyze(5, base)
        assert not record.detected

    def test_frames_processed_counter(self, scene):
        tracker = BlobTracker(scene.background)
        for t in range(3):
            tracker.analyze(t, scene.render(t))
        assert tracker.frames_processed == 3
