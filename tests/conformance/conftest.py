"""Fixtures for the runtime-parametrized conformance suite.

``harness`` parametrizes each test over every STM driver (threads, sim,
asyncio, procs); invariants that only apply to a subset filter via the
harness capability flags.  A SIGALRM watchdog bounds every test so a
blocked STM program fails loudly instead of hanging the suite
(pytest-timeout is not a dependency; see tests/_timeout_guard.py).
"""

from __future__ import annotations

import pytest

from tests._timeout_guard import install_timeout_guard
from tests.conformance.harness import HARNESSES

#: generous per-test ceiling; procs runs fork real processes.
TIMEOUT_S = 120

install_timeout_guard(globals(), TIMEOUT_S)


@pytest.fixture(params=HARNESSES, ids=[h.name for h in HARNESSES])
def harness(request):
    return request.param
