"""Runtime-parametrized STM conformance harness.

One tiny program DSL, four interpreters — the thread runtime, the process
runtime, the discrete-event simulator, and the asyncio runtime.  Each
invariant in ``test_invariants.py`` is written *once* as a
:class:`Program` and executed on every driver; the traces the program's
threads produce must be identical, because STM semantics (§4.2) do not
mention the scheduling substrate at all.

A :class:`Program` declares channels and threads; each thread is a list of
op tuples::

    ("attach_in", chan_key, conn_key)     attach an input connection
    ("attach_out", chan_key, conn_key)    attach an output connection
    ("detach", conn_key)
    ("put", conn_key, ts, value[, opts])  opts: refcount/block/expect
    ("get", conn_key, request[, opts])    opts: block/expect; traces ts+value
    ("consume", conn_key, ts[, opts])
    ("consume_until", conn_key, ts)
    ("set_vt", value[, opts])             opts: expect
    ("vis",)                              trace (virtual_time, visibility)
    ("signal", name) / ("barrier", name)  runtime-native one-shot events
    ("gc",)                               one forced GC round; traces horizon
    ("destroy", chan_key)                 destroy a channel (not on sim)
    ("crash", message)                    raise RuntimeError(message)

``opts`` is an optional trailing dict.  ``expect`` names an exception type:
the op must raise it (an instance of it), and the trace records the
exception type actually raised — so the *error semantics* are conformance-
checked too, not just the happy path.

Blocking programs synchronize with ``signal``/``barrier`` (threading /
asyncio / simulated events — never wall-clock sleeps), which keeps every
program's trace deterministic across schedulers.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.core.time import INFINITY, VirtualTime
from repro.runtime import Cluster, ProcCluster
from repro.runtime.aio import AioCluster
from repro.sim import SimStampede
from repro.stm import STM
from repro.stm.aio import AioSTM

__all__ = [
    "ChannelSpec",
    "ThreadSpec",
    "Program",
    "RuntimeHarness",
    "ThreadsHarness",
    "ProcsHarness",
    "SimHarness",
    "AioHarness",
    "HARNESSES",
]

JOIN_TIMEOUT = 30.0


@dataclass(frozen=True)
class ChannelSpec:
    key: str
    capacity: int | None = None
    home: int = 0


@dataclass(frozen=True)
class ThreadSpec:
    key: str
    ops: tuple
    virtual_time: VirtualTime = 0
    space: int = 0


@dataclass(frozen=True)
class Program:
    channels: tuple
    threads: tuple
    n_spaces: int = 1


def _split(op: tuple) -> tuple[str, tuple, dict]:
    """(verb, args, opts) — opts is the optional trailing dict."""
    if op and isinstance(op[-1], dict):
        return op[0], op[1:-1], op[-1]
    return op[0], op[1:], {}


@dataclass
class _Trace:
    """Mutable per-thread trace being built by an interpreter."""

    entries: list = field(default_factory=list)

    def add(self, *entry: Any) -> None:
        self.entries.append(tuple(entry))


class RuntimeHarness:
    """Common surface of the four drivers."""

    name = "abstract"
    #: channel destruction (the sim models no destroy operation).
    supports_destroy = True
    #: thread crashes surface at join (sim + asyncio re-raise; OS threads
    #: and cross-process spawns do not propagate exceptions).
    crash_surfaces_at_join = False

    def run(self, program: Program) -> dict[str, list]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# thread runtime (and, by subclassing, the process runtime)
# ----------------------------------------------------------------------
class ThreadsHarness(RuntimeHarness):
    name = "threads"

    def _make_cluster(self, n_spaces: int):
        return Cluster(n_spaces=n_spaces, gc_period=None)

    def run(self, program: Program) -> dict[str, list]:
        n_spaces = program.n_spaces
        barriers: dict[str, threading.Event] = {}
        barrier_lock = threading.Lock()

        def barrier(name: str) -> threading.Event:
            with barrier_lock:
                event = barriers.get(name)
                if event is None:
                    event = barriers[name] = threading.Event()
                return event

        with self._make_cluster(n_spaces) as cluster:
            driver_space = cluster.space(0)
            # Spawning a child below the parent's visibility is illegal
            # (§4.2), so the driver adopts at 0, spawns, raises itself to
            # INFINITY, and only then opens the start gate — guaranteeing
            # no program thread ever sees the driver pinning the horizon.
            driver = driver_space.adopt_current_thread(virtual_time=0)
            start_gate = threading.Event()
            try:
                stm0 = STM(driver_space)
                channels = {
                    spec.key: stm0.create_channel(
                        capacity=spec.capacity, home=spec.home
                    )
                    for spec in program.channels
                }
                traces = {spec.key: _Trace() for spec in program.threads}

                def interp(tspec: ThreadSpec) -> None:
                    start_gate.wait(JOIN_TIMEOUT)
                    stm = STM(cluster.space(tspec.space))
                    trace = traces[tspec.key]
                    conns: dict[str, Any] = {}
                    try:
                        for op in tspec.ops:
                            self._step(
                                op, stm, cluster, channels, conns, trace,
                                barrier,
                            )
                    except BaseException as exc:  # crash invariant
                        # Recorded, not re-raised: OS threads don't propagate
                        # exceptions anyway, and re-raising only trips
                        # pytest's unhandled-thread-exception warning.
                        trace.add("crashed", type(exc).__name__)
                    finally:
                        for conn in conns.values():
                            try:
                                if not conn.closed:
                                    conn.detach()
                            except Exception:
                                pass  # e.g. channel destroyed mid-program

                threads = [
                    cluster.space(tspec.space).spawn(
                        interp, (tspec,), virtual_time=tspec.virtual_time,
                        name=f"conf-{tspec.key}",
                    )
                    for tspec in program.threads
                ]
                driver.set_virtual_time(INFINITY)
                start_gate.set()
                for thread in threads:
                    thread.join(JOIN_TIMEOUT)
            finally:
                driver.exit()
        return {key: trace.entries for key, trace in traces.items()}

    def _step(self, op, stm, cluster, channels, conns, trace, barrier):
        verb, args, opts = _split(op)
        expect = opts.get("expect")
        try:
            if verb == "attach_in":
                conns[args[1]] = stm.channel(channels[args[0]].handle).attach_input()
            elif verb == "attach_out":
                conns[args[1]] = stm.channel(channels[args[0]].handle).attach_output()
            elif verb == "detach":
                conns[args[0]].detach()
            elif verb == "put":
                conn, ts, value = args
                conns[conn].put(
                    ts, value,
                    refcount=opts.get("refcount", -1),
                    block=opts.get("block", True),
                )
                trace.add("put", conn, ts)
            elif verb == "get":
                conn, request = args
                item = conns[conn].get(request, block=opts.get("block", True))
                trace.add("get", conn, item.timestamp, item.value)
            elif verb == "consume":
                conns[args[0]].consume(args[1])
                trace.add("consume", args[0], args[1])
            elif verb == "consume_until":
                conns[args[0]].consume_until(args[1])
                trace.add("consume_until", args[0], args[1])
            elif verb == "set_vt":
                from repro.runtime.threads import require_current_thread

                require_current_thread().set_virtual_time(args[0])
            elif verb == "vis":
                from repro.runtime.threads import require_current_thread

                me = require_current_thread()
                trace.add("vis", str(me.virtual_time), str(me.visibility()))
            elif verb == "signal":
                barrier(args[0]).set()
            elif verb == "barrier":
                assert barrier(args[0]).wait(JOIN_TIMEOUT)
            elif verb == "gc":
                horizon = cluster.gc_once()
                trace.add("gc", str(horizon))
            elif verb == "destroy":
                stm.channel(channels[args[0]].handle).destroy()
                trace.add("destroy", args[0])
            elif verb == "crash":
                raise RuntimeError(args[0])
            else:  # pragma: no cover - DSL misuse
                raise ValueError(f"unknown conformance op {verb!r}")
        except Exception as exc:
            if expect is not None and isinstance(exc, expect):
                trace.add("error", verb, type(exc).__name__)
                return
            raise
        if expect is not None:
            trace.add("noerror", verb)


class ProcsHarness(ThreadsHarness):
    """Process runtime: program logic runs in the driver process (closures
    stay unpickled) while every channel is homed in a *child* process, so
    each op crosses the real shm/TCP wire."""

    name = "procs"
    #: destroying a remotely homed channel while a local get is parked
    #: exercises the cancel path differently; the invariant that matters
    #: (ChannelDestroyedError) is covered on the in-process drivers.
    supports_destroy = False

    def _make_cluster(self, n_spaces: int):
        return ProcCluster(n_spaces=n_spaces, gc_period=None)

    def run(self, program: Program) -> dict[str, list]:
        remapped = Program(
            channels=tuple(
                ChannelSpec(spec.key, spec.capacity, home=1)
                for spec in program.channels
            ),
            threads=tuple(
                ThreadSpec(spec.key, spec.ops, spec.virtual_time, space=0)
                for spec in program.threads
            ),
            n_spaces=2,
        )
        return super().run(remapped)


# ----------------------------------------------------------------------
# discrete-event simulator
# ----------------------------------------------------------------------
class SimHarness(RuntimeHarness):
    name = "sim"
    supports_destroy = False
    crash_surfaces_at_join = True

    #: nominal payload size; the simulator charges time, not bytes.
    NBYTES = 8

    def run(self, program: Program) -> dict[str, list]:
        sim = SimStampede(n_spaces=max(program.n_spaces, 1))
        channels = {
            spec.key: sim.create_channel(
                home=spec.home, capacity=spec.capacity, name=spec.key
            )
            for spec in program.channels
        }
        barriers: dict[str, Any] = {}

        def barrier(name: str):
            event = barriers.get(name)
            if event is None:
                event = barriers[name] = sim.engine.event(f"conf-{name}")
            return event

        traces = {spec.key: _Trace() for spec in program.threads}

        def make_task(tspec: ThreadSpec):
            def task(t):
                trace = traces[tspec.key]
                conns: dict[str, tuple] = {}
                try:
                    for op in tspec.ops:
                        yield from self._step(
                            op, t, sim, channels, conns, trace, barrier
                        )
                except BaseException as exc:
                    trace.add("crashed", type(exc).__name__)
                    raise
                finally:
                    for chan, conn_id in conns.values():
                        if conn_id is not None:
                            try:
                                yield from t.detach(chan, conn_id)
                            except Exception:
                                pass

            return task

        for tspec in program.threads:
            sim.spawn(
                make_task(tspec), space=tspec.space,
                virtual_time=tspec.virtual_time, name=f"conf-{tspec.key}",
            )
        # A crashing program task re-raises out of engine.run(); its trace
        # already recorded the crash, so resume the remaining tasks.
        while True:
            try:
                sim.run()
                break
            except Exception as exc:
                crash = ("crashed", type(exc).__name__)
                if not any(
                    crash in trace.entries for trace in traces.values()
                ):
                    raise
        for thread in sim.threads:
            if thread.handle is not None and not thread.handle.done:
                raise AssertionError(
                    f"sim conformance thread {thread.name!r} never finished"
                )
        return {key: trace.entries for key, trace in traces.items()}

    def _step(self, op, t, sim, channels, conns, trace, barrier):
        verb, args, opts = _split(op)
        expect = opts.get("expect")
        try:
            if verb == "attach_in":
                chan = channels[args[0]]
                conn_id = yield from t.attach_input(chan)
                conns[args[1]] = (chan, conn_id)
            elif verb == "attach_out":
                chan = channels[args[0]]
                conn_id = yield from t.attach_output(chan)
                conns[args[1]] = (chan, conn_id)
            elif verb == "detach":
                chan, conn_id = conns[args[0]]
                yield from t.detach(chan, conn_id)
                conns[args[0]] = (chan, None)
            elif verb == "put":
                conn, ts, value = args
                yield from t.put(
                    conns[conn], ts, nbytes=self.NBYTES, payload=value,
                    refcount=opts.get("refcount", -1),
                    block=opts.get("block", True),
                )
                trace.add("put", conn, ts)
            elif verb == "get":
                conn, request = args
                payload, ts, _size = yield from t.get(
                    conns[conn], request, block=opts.get("block", True)
                )
                trace.add("get", conn, ts, payload)
            elif verb == "consume":
                yield from t.consume(conns[args[0]], args[1])
                trace.add("consume", args[0], args[1])
            elif verb == "consume_until":
                yield from t.consume_until(conns[args[0]], args[1])
                trace.add("consume_until", args[0], args[1])
            elif verb == "set_vt":
                t.set_virtual_time(args[0])
            elif verb == "vis":
                trace.add("vis", str(t.virtual_time), str(t.visibility()))
            elif verb == "signal":
                barrier(args[0]).set()
            elif verb == "barrier":
                event = barrier(args[0])
                while not event.is_set:
                    yield ("wait", event)
            elif verb == "gc":
                report = sim.gc_once_instant()
                trace.add("gc", str(report.horizon))
            elif verb == "crash":
                raise RuntimeError(args[0])
            elif verb == "destroy":  # pragma: no cover - capability-gated
                raise NotImplementedError("sim models no channel destroy")
            else:  # pragma: no cover - DSL misuse
                raise ValueError(f"unknown conformance op {verb!r}")
        except Exception as exc:
            if expect is not None and isinstance(exc, expect):
                trace.add("error", verb, type(exc).__name__)
                return
            raise
        if expect is not None:
            trace.add("noerror", verb)


# ----------------------------------------------------------------------
# asyncio runtime
# ----------------------------------------------------------------------
class AioHarness(RuntimeHarness):
    name = "aio"
    crash_surfaces_at_join = True

    def run(self, program: Program) -> dict[str, list]:
        return asyncio.run(self._arun(program))

    async def _arun(self, program: Program) -> dict[str, list]:
        barriers: dict[str, asyncio.Event] = {}

        def barrier(name: str) -> asyncio.Event:
            event = barriers.get(name)
            if event is None:
                event = barriers[name] = asyncio.Event()
            return event

        async with AioCluster(n_spaces=program.n_spaces, gc_period=None) as cluster:
            driver_space = cluster.space(0)
            driver = driver_space.adopt_current_task(virtual_time=0)
            start_gate = asyncio.Event()
            try:
                stm0 = AioSTM(driver_space)
                channels = {
                    spec.key: await stm0.create_channel(
                        capacity=spec.capacity, home=spec.home
                    )
                    for spec in program.channels
                }
                traces = {spec.key: _Trace() for spec in program.threads}

                async def interp(tspec: ThreadSpec) -> None:
                    await asyncio.wait_for(start_gate.wait(), JOIN_TIMEOUT)
                    stm = AioSTM(cluster.space(tspec.space))
                    trace = traces[tspec.key]
                    conns: dict[str, Any] = {}
                    try:
                        for op in tspec.ops:
                            await self._step(
                                op, stm, cluster, channels, conns, trace,
                                barrier,
                            )
                    except BaseException as exc:
                        trace.add("crashed", type(exc).__name__)
                        raise
                    finally:
                        for conn in conns.values():
                            try:
                                if not conn.closed:
                                    await conn.detach()
                            except Exception:
                                pass  # e.g. channel destroyed mid-program

                tasks = [
                    cluster.space(tspec.space).spawn_task(
                        interp, (tspec,), virtual_time=tspec.virtual_time,
                        name=f"conf-{tspec.key}",
                    )
                    for tspec in program.threads
                ]
                driver.set_virtual_time(INFINITY)
                start_gate.set()
                for tspec, thread in zip(program.threads, tasks):
                    try:
                        await cluster.space(tspec.space).ajoin(
                            thread, timeout=JOIN_TIMEOUT
                        )
                    except RuntimeError:
                        pass  # crash programs: recorded in the trace
            finally:
                driver.exit()
        return {key: trace.entries for key, trace in traces.items()}

    async def _step(self, op, stm, cluster, channels, conns, trace, barrier):
        verb, args, opts = _split(op)
        expect = opts.get("expect")
        try:
            if verb == "attach_in":
                conns[args[1]] = await stm.channel(
                    channels[args[0]].handle
                ).attach_input()
            elif verb == "attach_out":
                conns[args[1]] = await stm.channel(
                    channels[args[0]].handle
                ).attach_output()
            elif verb == "detach":
                await conns[args[0]].detach()
            elif verb == "put":
                conn, ts, value = args
                await conns[conn].put(
                    ts, value,
                    refcount=opts.get("refcount", -1),
                    block=opts.get("block", True),
                )
                trace.add("put", conn, ts)
            elif verb == "get":
                conn, request = args
                item = await conns[conn].get(
                    request, block=opts.get("block", True)
                )
                trace.add("get", conn, item.timestamp, item.value)
            elif verb == "consume":
                await conns[args[0]].consume(args[1])
                trace.add("consume", args[0], args[1])
            elif verb == "consume_until":
                await conns[args[0]].consume_until(args[1])
                trace.add("consume_until", args[0], args[1])
            elif verb == "set_vt":
                from repro.runtime.threads import require_current_thread

                require_current_thread().set_virtual_time(args[0])
            elif verb == "vis":
                from repro.runtime.threads import require_current_thread

                me = require_current_thread()
                trace.add("vis", str(me.virtual_time), str(me.visibility()))
            elif verb == "signal":
                barrier(args[0]).set()
            elif verb == "barrier":
                await asyncio.wait_for(barrier(args[0]).wait(), JOIN_TIMEOUT)
            elif verb == "gc":
                horizon = await cluster.agc_once()
                trace.add("gc", str(horizon))
            elif verb == "destroy":
                await stm.channel(channels[args[0]].handle).destroy()
                trace.add("destroy", args[0])
            elif verb == "crash":
                raise RuntimeError(args[0])
            else:  # pragma: no cover - DSL misuse
                raise ValueError(f"unknown conformance op {verb!r}")
        except Exception as exc:
            if expect is not None and isinstance(exc, expect):
                trace.add("error", verb, type(exc).__name__)
                return
            raise
        if expect is not None:
            trace.add("noerror", verb)


#: every driver the conformance suite runs on; ``procs`` spawns real OS
#: processes per run, so the fixture list puts it last (slowest first-fail).
HARNESSES = [ThreadsHarness(), SimHarness(), AioHarness(), ProcsHarness()]
