"""The STM semantic invariants, pinned on every runtime driver.

Each test is one :class:`~tests.conformance.harness.Program` executed by the
``harness`` fixture — the thread runtime, the discrete-event simulator, the
asyncio runtime, and (wire-crossing) the process runtime.  The *expected
trace* in each assertion is shared by all drivers: §4.2 semantics are
scheduler-independent, so a driver that produces a different trace has a
semantics bug, not a scheduling difference.

Sections mirror the paper:

* gets and wildcards (§4.1) — ordering, UNSEEN progression, specific gets
* put/consume discipline (§4.2) — duplicates, double consume, capacity
* virtual time and visibility (§4.2) — VT/visibility interlock
* garbage collection (§4.2, §6) — horizons, reclamation, error surfaces
* connections and lifecycle — isolation, implicit consume, detach, destroy
"""

from __future__ import annotations

import pytest

from repro.core import (
    INFINITY,
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    STM_OLDEST_UNSEEN,
)
from repro.errors import (
    AlreadyConsumedError,
    ChannelDestroyedError,
    ChannelEmptyError,
    ChannelFullError,
    DuplicateTimestampError,
    ItemGarbageCollectedError,
    VirtualTimeError,
    VisibilityError,
)

from tests.conformance.harness import ChannelSpec, Program, ThreadSpec

pytestmark = pytest.mark.conformance


def one_thread(ops, channels=(ChannelSpec("ch"),), virtual_time=0):
    """A single-threaded program over ``channels``."""
    return Program(
        channels=tuple(channels),
        threads=(ThreadSpec("t", tuple(ops), virtual_time=virtual_time),),
    )


# ======================================================================
# gets and wildcards (§4.1)
# ======================================================================
def test_put_get_roundtrip(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 7, "v7"),
        ("get", "i", 7),
        ("consume", "i", 7),
    ]))
    assert traces["t"] == [
        ("put", "o", 7),
        ("get", "i", 7, "v7"),
        ("consume", "i", 7),
    ]


def test_oldest_returns_minimum_timestamp(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 5, "v5"),
        ("put", "o", 2, "v2"),
        ("put", "o", 9, "v9"),
        ("get", "i", STM_OLDEST),
        ("get", "i", STM_OLDEST),  # not consumed: OLDEST is idempotent
    ]))
    assert traces["t"] == [
        ("put", "o", 5),
        ("put", "o", 2),
        ("put", "o", 9),
        ("get", "i", 2, "v2"),
        ("get", "i", 2, "v2"),
    ]


def test_latest_returns_maximum_timestamp(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 5, "v5"),
        ("put", "o", 9, "v9"),
        ("put", "o", 2, "v2"),
        ("get", "i", STM_LATEST),
    ]))
    assert traces["t"][-1] == ("get", "i", 9, "v9")


def test_oldest_unseen_progresses_in_order(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 3, "v3"),
        ("put", "o", 1, "v1"),
        ("put", "o", 2, "v2"),
        ("get", "i", STM_OLDEST_UNSEEN),
        ("get", "i", STM_OLDEST_UNSEEN),
        ("get", "i", STM_OLDEST_UNSEEN),
        ("get", "i", STM_OLDEST_UNSEEN, {"block": False,
                                         "expect": ChannelEmptyError}),
    ]))
    assert traces["t"][3:] == [
        ("get", "i", 1, "v1"),
        ("get", "i", 2, "v2"),
        ("get", "i", 3, "v3"),
        ("error", "get", "ChannelEmptyError"),
    ]


def test_latest_unseen_skips_stale_items(harness):
    """The paper's headline wildcard: a slow consumer drops stale frames."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 1, "v1"),
        ("put", "o", 2, "v2"),
        ("put", "o", 3, "v3"),
        ("get", "i", STM_LATEST_UNSEEN),   # 3; marks 1-3 seen
        ("get", "i", STM_LATEST_UNSEEN, {"block": False,
                                         "expect": ChannelEmptyError}),
        ("put", "o", 4, "v4"),
        ("get", "i", STM_LATEST_UNSEEN),   # 4
    ]))
    assert traces["t"][3:] == [
        ("get", "i", 3, "v3"),
        ("error", "get", "ChannelEmptyError"),
        ("put", "o", 4),
        ("get", "i", 4, "v4"),
    ]


def test_specific_timestamp_get(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 1, "v1"),
        ("put", "o", 2, "v2"),
        ("get", "i", 1),
        ("get", "i", 2),
        ("get", "i", 1),  # re-get of an unconsumed item is legal
    ]))
    assert traces["t"][2:] == [
        ("get", "i", 1, "v1"),
        ("get", "i", 2, "v2"),
        ("get", "i", 1, "v1"),
    ]


def test_nonblocking_miss_raises_channel_empty(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 5, "v5"),
        ("get", "i", 3, {"block": False, "expect": ChannelEmptyError}),
    ]))
    assert traces["t"][-1] == ("error", "get", "ChannelEmptyError")


# ======================================================================
# put/consume discipline (§4.2)
# ======================================================================
def test_duplicate_timestamp_rejected(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("put", "o", 4, "first"),
        ("put", "o", 4, "second", {"expect": DuplicateTimestampError}),
    ]))
    assert traces["t"] == [
        ("put", "o", 4),
        ("error", "put", "DuplicateTimestampError"),
    ]


def test_double_consume_is_idempotent(harness):
    """Consume marks disinterest; re-marking (or marking an absent ts) is
    legal — only the *marking* matters for GC progress (§4.2)."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 1, "v1"),
        ("get", "i", 1),
        ("consume", "i", 1),
        ("consume", "i", 1),
        ("consume", "i", 99),             # never put: still legal
    ]))
    assert traces["t"][2:] == [
        ("consume", "i", 1),
        ("consume", "i", 1),
        ("consume", "i", 99),
    ]


def test_get_after_consume_rejected(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 1, "v1"),
        ("get", "i", 1),
        ("consume", "i", 1),
        ("get", "i", 1, {"expect": AlreadyConsumedError}),
    ]))
    assert traces["t"][-1] == ("error", "get", "AlreadyConsumedError")


def test_consume_without_get_is_legal(harness):
    """§4.2: consume declares disinterest; a prior get is not required."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 1, "v1"),
        ("consume", "i", 1),
        ("get", "i", 1, {"expect": AlreadyConsumedError}),
    ]))
    assert traces["t"][1:] == [
        ("consume", "i", 1),
        ("error", "get", "AlreadyConsumedError"),
    ]


def test_consume_until_consumes_prefix(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 1, "v1"),
        ("put", "o", 2, "v2"),
        ("put", "o", 3, "v3"),
        ("consume_until", "i", 2),
        ("get", "i", 1, {"expect": AlreadyConsumedError}),
        ("get", "i", 2, {"expect": AlreadyConsumedError}),
        ("get", "i", 3),
    ]))
    assert traces["t"][3:] == [
        ("consume_until", "i", 2),
        ("error", "get", "AlreadyConsumedError"),
        ("error", "get", "AlreadyConsumedError"),
        ("get", "i", 3, "v3"),
    ]


def test_nonblocking_put_on_full_channel_raises(harness):
    traces = harness.run(one_thread(
        [
            ("attach_out", "ch", "o"),
            ("put", "o", 0, "v0"),
            ("put", "o", 1, "v1", {"block": False,
                                   "expect": ChannelFullError}),
        ],
        channels=[ChannelSpec("ch", capacity=1)],
    ))
    assert traces["t"] == [
        ("put", "o", 0),
        ("error", "put", "ChannelFullError"),
    ]


def test_bounded_put_blocks_until_consume(harness):
    """capacity=1 + refcount=1: each consume reclaims the slot and wakes
    the parked producer — the §6 eager-reclamation flow."""
    program = Program(
        channels=(ChannelSpec("ch", capacity=1),),
        threads=(
            ThreadSpec("prod", (
                ("attach_out", "ch", "o"),
                ("signal", "attached"),
                ("put", "o", 0, "v0", {"refcount": 1}),
                ("put", "o", 1, "v1", {"refcount": 1}),
                ("put", "o", 2, "v2", {"refcount": 1}),
            )),
            ThreadSpec("cons", (
                ("barrier", "attached"),
                ("attach_in", "ch", "i"),
                ("get", "i", 0), ("consume", "i", 0),
                ("get", "i", 1), ("consume", "i", 1),
                ("get", "i", 2), ("consume", "i", 2),
            )),
        ),
    )
    traces = harness.run(program)
    assert traces["prod"] == [("put", "o", ts) for ts in (0, 1, 2)]
    assert traces["cons"] == [
        ("get", "i", 0, "v0"), ("consume", "i", 0),
        ("get", "i", 1, "v1"), ("consume", "i", 1),
        ("get", "i", 2, "v2"), ("consume", "i", 2),
    ]


def test_blocking_get_woken_by_later_put(harness):
    program = Program(
        channels=(ChannelSpec("ch"),),
        threads=(
            ThreadSpec("cons", (
                ("attach_in", "ch", "i"),
                ("signal", "attached"),
                ("get", "i", 0),          # parks until the producer puts
                ("consume", "i", 0),
            )),
            ThreadSpec("prod", (
                ("barrier", "attached"),
                ("attach_out", "ch", "o"),
                ("put", "o", 0, "v0"),
            )),
        ),
    )
    traces = harness.run(program)
    assert traces["cons"] == [("get", "i", 0, "v0"), ("consume", "i", 0)]
    assert traces["prod"] == [("put", "o", 0)]


def test_refcount_reaching_zero_reclaims_item(harness):
    """refcount=1: the single consume reclaims the item immediately (§6).
    The consuming connection then sees AlreadyConsumed; a second,
    non-consuming connection simply no longer finds the item."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "a"),
        ("attach_in", "ch", "b"),
        ("put", "o", 0, "v0", {"refcount": 1}),
        ("get", "a", 0),
        ("consume", "a", 0),
        ("get", "a", 0, {"expect": AlreadyConsumedError}),
        ("get", "b", 0, {"block": False, "expect": ChannelEmptyError}),
    ]))
    assert traces["t"][1:] == [
        ("get", "a", 0, "v0"),
        ("consume", "a", 0),
        ("error", "get", "AlreadyConsumedError"),
        ("error", "get", "ChannelEmptyError"),
    ]


# ======================================================================
# virtual time and visibility (§4.2)
# ======================================================================
def test_put_below_virtual_time_rejected(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("set_vt", 5),
        ("put", "o", 3, "late", {"expect": VisibilityError}),
        ("put", "o", 5, "ontime"),
    ]))
    assert traces["t"] == [
        ("error", "put", "VisibilityError"),
        ("put", "o", 5),
    ]


def test_open_item_holds_visibility_down(harness):
    """While an item is open, its timestamp — not the VT — bounds legal
    puts; closing it snaps visibility back up to the VT."""
    traces = harness.run(one_thread(
        [
            ("attach_out", "src", "so"),
            ("attach_in", "src", "i"),
            ("attach_out", "dst", "o"),
            ("put", "so", 2, "frame"),
            ("set_vt", 10),
            ("vis",),                      # vt=10, but nothing open yet
            ("get", "i", 2),               # opens ts=2
            ("vis",),                      # visibility drops to 2
            ("put", "o", 2, "derived"),    # inherit the open timestamp: legal
            ("consume", "i", 2),
            ("vis",),                      # back to 10
            ("put", "o", 3, "late", {"expect": VisibilityError}),
        ],
        channels=[ChannelSpec("src"), ChannelSpec("dst")],
    ))
    assert traces["t"] == [
        ("put", "so", 2),
        ("vis", "10", "10"),
        ("get", "i", 2, "frame"),
        ("vis", "10", "2"),
        ("put", "o", 2),
        ("consume", "i", 2),
        ("vis", "10", "10"),
        ("error", "put", "VisibilityError"),
    ]


def test_set_virtual_time_below_visibility_rejected(harness):
    traces = harness.run(one_thread([
        ("set_vt", 5),
        ("set_vt", 3, {"expect": VirtualTimeError}),
        ("set_vt", 5),  # idempotent re-set stays legal
        ("vis",),
    ]))
    assert traces["t"] == [
        ("error", "set_vt", "VirtualTimeError"),
        ("vis", "5", "5"),
    ]


def test_open_item_permits_lowering_virtual_time(harness):
    """set_virtual_time may go *below* the current VT as long as an open
    item already holds visibility down that far."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 2, "v2"),
        ("set_vt", 8),
        ("get", "i", 2),                  # visibility: min(8, 2) = 2
        ("set_vt", 4),                    # legal: 4 >= 2
        ("set_vt", 1, {"expect": VirtualTimeError}),  # 1 < 2
        ("vis",),
    ]))
    assert traces["t"][-2:] == [
        ("error", "set_vt", "VirtualTimeError"),
        ("vis", "4", "2"),
    ]


def test_infinity_forbids_all_puts(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("set_vt", INFINITY),
        ("vis",),
        ("put", "o", 10 ** 9, "never", {"expect": VisibilityError}),
    ]))
    assert traces["t"] == [
        ("vis", "INFINITY", "INFINITY"),
        ("error", "put", "VisibilityError"),
    ]


# ======================================================================
# garbage collection (§4.2, §6)
# ======================================================================
def test_gc_horizon_is_channel_unconsumed_minimum(harness):
    """With the thread at INFINITY, the channel's oldest unconsumed item
    bounds the horizon; items strictly below it are collected, the
    unconsumed minimum itself is never reclaimed."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 0, "v0"),
        ("put", "o", 1, "v1"),
        ("put", "o", 2, "v2"),
        ("get", "i", 0),
        ("consume", "i", 0),
        ("set_vt", INFINITY),
        ("gc",),
        ("get", "i", 1),                  # the unconsumed minimum survives
        ("get", "i", 2),
        ("get", "i", 0, {"expect": ItemGarbageCollectedError}),
    ]))
    assert traces["t"][5:] == [
        ("gc", "1"),
        ("get", "i", 1, "v1"),
        ("get", "i", 2, "v2"),
        ("error", "get", "ItemGarbageCollectedError"),
    ]


def test_consume_until_then_gc_collects_prefix(harness):
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 0, "v0"),
        ("put", "o", 1, "v1"),
        ("put", "o", 2, "v2"),
        ("put", "o", 3, "v3"),
        ("consume_until", "i", 1),
        ("set_vt", 2),
        ("gc",),
        ("get", "i", 0, {"expect": ItemGarbageCollectedError}),
        ("get", "i", 2),
    ]))
    assert traces["t"][4:] == [
        ("consume_until", "i", 1),
        ("gc", "2"),
        ("error", "get", "ItemGarbageCollectedError"),
        ("get", "i", 2, "v2"),
    ]


def test_thread_virtual_time_pins_gc_horizon(harness):
    """A thread sitting at VT=1 holds the horizon at 1 even though the
    channel itself has no unconsumed claim below 2."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 0, "v0"),
        ("get", "i", 0),
        ("consume", "i", 0),              # channel minimum now clear
        ("set_vt", 1),
        ("gc",),                          # horizon: this thread's VT
        ("get", "i", 0, {"expect": ItemGarbageCollectedError}),
    ]))
    # ts=0 < horizon=1 was consumed everywhere, so it is collected; the
    # horizon itself is the thread's virtual time.
    assert traces["t"][2:] == [
        ("consume", "i", 0),
        ("gc", "1"),
        ("error", "get", "ItemGarbageCollectedError"),
    ]


def test_detach_releases_gc_claim(harness):
    """An idle input connection holds every item; detaching it lets the
    horizon jump to INFINITY."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "i"),
        ("put", "o", 0, "v0"),
        ("put", "o", 1, "v1"),
        ("set_vt", INFINITY),
        ("gc",),                          # held at 0 by the idle input conn
        ("detach", "i"),
        ("gc",),                          # claim gone
    ]))
    assert traces["t"][2:] == [
        ("gc", "0"),
        ("gc", "INFINITY"),
    ]


# ======================================================================
# connections and lifecycle
# ======================================================================
def test_unseen_state_is_per_connection(harness):
    """Two input connections each have their own UNSEEN frontier."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "a"),
        ("attach_in", "ch", "b"),
        ("put", "o", 1, "v1"),
        ("put", "o", 2, "v2"),
        ("get", "a", STM_OLDEST_UNSEEN),
        ("get", "a", STM_OLDEST_UNSEEN),
        ("get", "b", STM_OLDEST_UNSEEN),  # b starts from scratch
    ]))
    assert traces["t"][2:] == [
        ("get", "a", 1, "v1"),
        ("get", "a", 2, "v2"),
        ("get", "b", 1, "v1"),
    ]


def test_consume_is_per_connection(harness):
    """Consuming on one connection leaves the item visible to another."""
    traces = harness.run(one_thread([
        ("attach_out", "ch", "o"),
        ("attach_in", "ch", "a"),
        ("attach_in", "ch", "b"),
        ("put", "o", 0, "v0"),
        ("consume", "a", 0),
        ("get", "b", 0),                  # still there for b
        ("get", "a", 0, {"expect": AlreadyConsumedError}),
    ]))
    assert traces["t"][1:] == [
        ("consume", "a", 0),
        ("get", "b", 0, "v0"),
        ("error", "get", "AlreadyConsumedError"),
    ]


def test_attach_implicitly_consumes_below_visibility(harness):
    """§4.2: a connection attached at VT=5 has items below 5 implicitly
    consumed — it can never reach back before its own visibility."""
    program = Program(
        channels=(ChannelSpec("ch"),),
        threads=(
            ThreadSpec("prod", (
                ("attach_out", "ch", "o"),
                ("put", "o", 3, "v3"),
                ("put", "o", 7, "v7"),
                ("signal", "filled"),
            )),
            ThreadSpec("late", (
                ("barrier", "filled"),
                ("attach_in", "ch", "i"),
                ("get", "i", 3, {"expect": AlreadyConsumedError}),
                ("get", "i", 7),
            ), virtual_time=5),
        ),
    )
    traces = harness.run(program)
    assert traces["late"] == [
        ("error", "get", "AlreadyConsumedError"),
        ("get", "i", 7, "v7"),
    ]


def test_crash_in_one_thread_does_not_corrupt_channel(harness):
    """A thread dying mid-pipeline leaves items intact for other conns."""
    program = Program(
        channels=(ChannelSpec("ch"),),
        threads=(
            ThreadSpec("doomed", (
                ("attach_out", "ch", "o"),
                ("put", "o", 0, "v0"),
                ("signal", "put-done"),
                ("crash", "boom"),
            )),
            ThreadSpec("survivor", (
                ("barrier", "put-done"),
                ("attach_in", "ch", "i"),
                ("get", "i", 0),
                ("consume", "i", 0),
            )),
        ),
    )
    traces = harness.run(program)
    assert traces["doomed"] == [
        ("put", "o", 0),
        ("crashed", "RuntimeError"),
    ]
    assert traces["survivor"] == [
        ("get", "i", 0, "v0"),
        ("consume", "i", 0),
    ]


def test_destroy_wakes_blocked_getter(harness):
    """A destroy must *fail* a parked get, never strand it.  The exact
    error class depends on the race (parked waiter vs. op-after-destroy),
    so only the family is pinned."""
    if not harness.supports_destroy:
        pytest.skip(f"{harness.name} runtime models no channel destroy")
    from repro.errors import StampedeError

    program = Program(
        channels=(ChannelSpec("ch"),),
        threads=(
            ThreadSpec("blocked", (
                ("attach_in", "ch", "i"),
                ("signal", "attached"),
                ("get", "i", 0, {"expect": StampedeError}),
            )),
            ThreadSpec("destroyer", (
                ("barrier", "attached"),
                ("destroy", "ch"),
            )),
        ),
    )
    traces = harness.run(program)
    [(kind, verb, error)] = traces["blocked"]
    assert (kind, verb) == ("error", "get")
    assert error in {"ChannelDestroyedError", "NoSuchChannelError"}
    assert traces["destroyer"] == [("destroy", "ch")]


# ======================================================================
# cross-runtime differential check
# ======================================================================
def test_identical_traces_across_all_runtimes():
    """One richer mixed program, run on every driver; the traces must be
    *equal across runtimes*, not merely each plausible in isolation."""
    from tests.conformance.harness import HARNESSES

    program = Program(
        channels=(ChannelSpec("video", capacity=4), ChannelSpec("tracks")),
        threads=(
            ThreadSpec("producer", (
                ("attach_out", "video", "o"),
                ("put", "o", 0, "f0", {"refcount": 1}),
                ("put", "o", 1, "f1", {"refcount": 1}),
                ("put", "o", 2, "f2", {"refcount": 1}),
                ("set_vt", INFINITY),
            )),
            ThreadSpec("stage", (
                ("attach_in", "video", "i"),
                ("attach_out", "tracks", "o"),
                ("get", "i", 0),
                ("put", "o", 0, ("track", 0)),
                ("consume", "i", 0),
                ("get", "i", 1),
                ("put", "o", 1, ("track", 1)),
                ("consume", "i", 1),
                ("get", "i", 2),
                ("put", "o", 2, ("track", 2)),
                ("consume", "i", 2),
                ("set_vt", INFINITY),
            )),
            ThreadSpec("sink", (
                ("attach_in", "tracks", "i"),
                ("get", "i", 0), ("consume", "i", 0), ("set_vt", 1),
                ("get", "i", 1), ("consume", "i", 1), ("set_vt", 2),
                ("get", "i", 2), ("consume", "i", 2),
                ("set_vt", INFINITY),
            )),
        ),
    )
    results = {h.name: h.run(program) for h in HARNESSES}
    reference = results["threads"]
    for name, traces in results.items():
        assert traces == reference, (
            f"runtime {name!r} diverged from the thread runtime"
        )
