"""End-to-end conformance: the kiosk fleet on every runtime driver.

The Fig. 2 pipeline (digitizer -> blob tracker -> decision/GUI) runs real
trackers on real synthetic pixels, so its output is a scalar fingerprint of
the whole runtime: if any driver delivered a different frame, dropped an
item, or mis-sequenced a timestamp, the tracking error and decision stream
would change.  All drivers must match the thread runtime exactly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.kiosk.aiofleet import run_aio_fleet
from repro.kiosk.procfleet import FleetConfig, run_fleet
from repro.kiosk.simfleet import run_sim_fleet
from repro.runtime import Cluster, ProcCluster
from repro.runtime.aio import AioCluster

pytestmark = pytest.mark.conformance

N_FRAMES = 8


@pytest.fixture(scope="module")
def reference():
    """The thread runtime's fleet output, shared by every comparison."""
    config = FleetConfig(n_frames=N_FRAMES)
    with Cluster(n_spaces=3, gc_period=0.05) as cluster:
        return run_fleet(cluster, config)


def assert_identical(result, reference):
    assert result.frames_tracked == reference.frames_tracked
    assert result.frames_detected == reference.frames_detected
    assert result.mean_tracking_error == reference.mean_tracking_error
    assert [d.action for d in result.decisions] == [
        d.action for d in reference.decisions
    ]


def test_thread_fleet_is_sane(reference):
    assert reference.frames_tracked == N_FRAMES
    assert reference.frames_detected > 0
    assert len(reference.decisions) == N_FRAMES
    assert reference.mean_tracking_error < 5.0


def test_aio_fleet_matches_thread_fleet(reference):
    async def main():
        async with AioCluster(n_spaces=3, gc_period=0.05) as cluster:
            return await run_aio_fleet(cluster, FleetConfig(n_frames=N_FRAMES))

    assert_identical(asyncio.run(main()), reference)


def test_sim_fleet_matches_thread_fleet(reference):
    result = run_sim_fleet(FleetConfig(n_frames=N_FRAMES))
    assert_identical(result, reference)
    assert result.wall_seconds > 0  # simulated time was actually charged


def test_proc_fleet_matches_thread_fleet(reference):
    with ProcCluster(n_spaces=3, gc_period=0.05) as cluster:
        result = run_fleet(cluster, FleetConfig(n_frames=N_FRAMES))
    assert_identical(result, reference)
