"""End-to-end tests for IBR on STM: replicated workers, out-of-order puts."""

import pytest

from repro.ibr import IbrConfig, run_ibr
from repro.runtime import Cluster


@pytest.fixture(scope="module")
def result():
    with Cluster(n_spaces=2, gc_period=0.02) as cluster:
        yield run_ibr(
            cluster,
            IbrConfig(n_requests=18, n_workers=3, worker_space=1,
                      view_size=64),
        )


class TestIbrPipeline:
    def test_every_request_rendered(self, result):
        assert len(result.views) == 18
        assert sorted(result.views) == list(range(18))

    def test_work_partitioned_modulo(self, result):
        assert result.per_worker == {0: 6, 1: 6, 2: 6}

    def test_quality_threshold(self, result):
        assert result.mean_psnr > 25.0
        assert all(q > 15.0 for q in result.views.values())

    def test_display_reassembled_in_order(self, result):
        # run_ibr's display thread asserts in-order delivery implicitly by
        # doing blocking specific-ts gets 0..n-1; reaching here means it
        # completed.  Verify the completion order itself was NOT sorted
        # (otherwise the test shows nothing about reassembly).
        assert len(result.completion_order) == 18

    def test_single_worker_is_in_order(self):
        with Cluster(n_spaces=1, gc_period=0.02) as cluster:
            r = run_ibr(cluster, IbrConfig(n_requests=8, n_workers=1,
                                           view_size=64))
        assert r.completion_order == sorted(r.completion_order)
        assert r.per_worker == {0: 8}

    def test_more_workers_than_requests(self):
        with Cluster(n_spaces=1, gc_period=0.02) as cluster:
            r = run_ibr(cluster, IbrConfig(n_requests=3, n_workers=5,
                                           view_size=64))
        assert len(r.views) == 3
        assert sum(r.per_worker.values()) == 3
