"""Unit tests for the image-based rendering view synthesizer."""

import math

import numpy as np
import pytest

from repro.ibr.renderer import ViewSynthesizer, psnr, render_view


class TestRenderView:
    def test_deterministic(self):
        np.testing.assert_array_equal(render_view(3.5), render_view(3.5))

    def test_angles_differ(self):
        assert not np.array_equal(render_view(0.0), render_view(5.0))

    def test_shape_and_dtype(self):
        view = render_view(1.0, size=64)
        assert view.shape == (64, 64)
        assert view.dtype == np.uint8

    def test_nearby_angles_are_similar(self):
        close = psnr(render_view(0.0), render_view(0.5))
        far = psnr(render_view(0.0), render_view(8.0))
        assert close > far


class TestPsnr:
    def test_identical_is_infinite(self):
        img = render_view(0.0)
        assert math.isinf(psnr(img, img))

    def test_known_value(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 255, dtype=np.uint8)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4), np.uint8), np.zeros((5, 5), np.uint8))


class TestViewSynthesizer:
    @pytest.fixture(scope="class")
    def synth(self):
        return ViewSynthesizer([-10.0, -5.0, 0.0, 5.0, 10.0], size=96)

    def test_needs_two_references(self):
        with pytest.raises(ValueError):
            ViewSynthesizer([0.0])

    def test_nearest_references_bracket(self, synth):
        assert synth.nearest_references(2.0) == (0.0, 5.0)
        assert synth.nearest_references(-7.0) == (-10.0, -5.0)

    def test_clamped_outside_range(self, synth):
        assert synth.nearest_references(-99.0) == (-10.0, -5.0)
        assert synth.nearest_references(99.0) == (5.0, 10.0)

    def test_reference_angle_reproduces_reference(self, synth):
        out = synth.synthesize(5.0)
        assert psnr(out, render_view(5.0, 96)) > 40.0

    def test_interpolation_quality_reasonable(self, synth):
        for angle in [-7.3, -2.0, 2.5, 8.9]:
            assert synth.quality(angle) > 25.0, f"poor synthesis at {angle}"

    def test_interpolation_beats_nearest_snap(self, synth):
        angle = 2.5  # midway between references 0 and 5
        synthesized = synth.synthesize(angle)
        truth = render_view(angle, 96)
        snap = synth.references[0.0]
        assert psnr(synthesized, truth) > psnr(snap, truth)

    def test_denser_references_improve_quality(self):
        sparse = ViewSynthesizer([-10.0, 10.0], size=96)
        dense = ViewSynthesizer([-10.0, -5.0, 0.0, 5.0, 10.0], size=96)
        angle = 2.5
        assert dense.quality(angle) > sparse.quality(angle)

    def test_views_synthesized_counter(self, synth):
        before = synth.views_synthesized
        synth.synthesize(1.0)
        assert synth.views_synthesized == before + 1
