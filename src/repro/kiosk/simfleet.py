"""The kiosk fleet on the simulated runtime (discrete-event retelling).

Third retelling of the Fig. 2 fleet — digitizer -> low-fi tracker ->
decision + GUI — as generator tasks on :class:`~repro.sim.SimStampede`.
The simulator charges virtual microseconds for copies/transfers but runs
the *real* trackers on *real* pixels, so its tracking output is directly
comparable with the thread, process, and asyncio fleets: identical scene
seed + identical column-by-column gets => identical records, regardless of
the (simulated or wall-clock) scheduler.
"""

from __future__ import annotations

import numpy as np

from repro.core import INFINITY
from repro.kiosk.blob_tracker import BlobTracker
from repro.kiosk.decision import DecisionModule, GuiModule
from repro.kiosk.frames import SyntheticScene
from repro.kiosk.procfleet import FleetConfig, FleetResult
from repro.sim import SimStampede

__all__ = ["run_sim_fleet"]

#: nominal wire size of a track/decision record in the simulated cluster.
RECORD_BYTES = 256


def run_sim_fleet(
    config: FleetConfig | None = None, sim: SimStampede | None = None
) -> FleetResult:
    """Run the fleet inside a simulated cluster and report.

    Spaces mirror the fleet defaults (driver stage on space 0, digitizer
    and tracker on their configured spaces); ``sim`` may be passed in to
    control topology/costs, otherwise a cluster wide enough for the
    placement is built.
    """
    config = config or FleetConfig()
    n_spaces = max(1, config.digitizer_space, config.tracker_space) + 1
    if sim is None:
        sim = SimStampede(n_spaces=n_spaces)
    result = FleetResult()
    video = sim.create_channel(
        home=config.digitizer_space,
        capacity=config.frame_channel_capacity,
        name="kiosk.fleet.video",
    )
    tracks = sim.create_channel(
        home=config.tracker_space, name="kiosk.fleet.tracks"
    )
    scene_cfg = dict(seed=config.scene_seed, noise_sigma=config.noise_sigma)

    def digitizer(t):
        out = yield from t.attach_output(video)
        scene = SyntheticScene(**scene_cfg)
        for ts in range(config.n_frames):
            t.set_virtual_time(ts)
            frame = scene.render(ts)
            yield from t.put(out, ts, nbytes=frame.nbytes, payload=frame,
                             refcount=1)
        t.set_virtual_time(config.n_frames)
        yield from t.put(out, config.n_frames, nbytes=1, payload=None,
                         refcount=1)
        yield from t.detach(video, out)
        t.set_virtual_time(INFINITY)

    def tracker_stage(t):
        inp = yield from t.attach_input(video)
        out = yield from t.attach_output(tracks)
        t.set_virtual_time(INFINITY)
        scene = SyntheticScene(**scene_cfg)
        tracker = BlobTracker(
            scene.background, threshold=config.threshold,
            min_area=config.min_area,
        )
        for ts in range(config.n_frames + 1):
            pixels, got_ts, _size = yield from t.get(inp, ts)
            if pixels is None:
                yield from t.put(out, ts, nbytes=1, payload=None, refcount=1)
                yield from t.consume(inp, ts)
                break
            record = tracker.analyze(ts, pixels)
            yield from t.put(out, ts, nbytes=RECORD_BYTES, payload=record,
                             refcount=1)
            yield from t.consume(inp, ts)
            result.frames_tracked += 1
        yield from t.detach(video, inp)
        yield from t.detach(tracks, out)

    def decision_stage(t):
        inp = yield from t.attach_input(tracks)
        decider = DecisionModule()
        gui = GuiModule()
        scene = SyntheticScene(**scene_cfg)
        errors: list[float] = []
        for ts in range(config.n_frames + 1):
            record, got_ts, _size = yield from t.get(inp, ts)
            yield from t.consume(inp, ts)
            t.set_virtual_time(ts + 1)
            if record is None:
                break
            if record.detected:
                result.frames_detected += 1
                best = record.best()
                truth = scene.ground_truth(ts)
                if best is not None and truth:
                    region, _score = best
                    errors.append(
                        min(
                            float(np.hypot(region.cx - gx, region.cy - gy))
                            for gx, gy in truth
                        )
                    )
            decision = decider.decide(ts, record)
            result.decisions.append(decision)
            event = gui.react(decision)
            if event is not None:
                result.transcript.append(event)
        yield from t.detach(tracks, inp)
        t.set_virtual_time(INFINITY)
        if errors:
            result.mean_tracking_error = float(np.mean(errors))

    sim.spawn(digitizer, space=config.digitizer_space, virtual_time=0,
              name="sim-fleet-digitizer")
    sim.spawn(tracker_stage, space=config.tracker_space, virtual_time=0,
              name="sim-fleet-tracker")
    sim.spawn(decision_stage, space=0, virtual_time=0,
              name="sim-fleet-decision")
    elapsed_us = sim.run()
    result.frames_digitized = config.n_frames
    result.wall_seconds = elapsed_us / 1e6  # *simulated* seconds
    return result
