"""Synthetic video source for the Smart Kiosk pipeline (paper §2, §8.1).

The paper's digitizer grabs 320×240, 24-bit frames at 30 fps from a real
camera — 230 400 bytes per frame, 6.912 MB/s.  We cannot attach a 1998 frame
grabber, so this module synthesizes an equivalent stream: a static noisy
background across which colored "people" (elliptical blobs) move along known
trajectories.  The synthetic scene

* produces byte-identical-shape data (dtype uint8, (240, 320, 3)),
* exercises the same tracker code paths (image differencing fires exactly
  when a blob is present; color histograms discriminate between blobs), and
* carries ground truth, so the pipeline's end-to-end *accuracy* is testable
  — something the real kiosk could not check automatically.

Determinism: everything derives from a seeded :class:`numpy.random.Generator`,
so tests and benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FRAME_WIDTH", "FRAME_HEIGHT", "Actor", "SyntheticScene", "frame_bytes"]

FRAME_WIDTH = 320
FRAME_HEIGHT = 240


def frame_bytes() -> int:
    """Bytes per frame: 230 400, as in §8.1."""
    return FRAME_WIDTH * FRAME_HEIGHT * 3


@dataclass
class Actor:
    """One moving blob: a synthetic kiosk customer.

    The trajectory is linear with reflection off the frame borders; position
    at frame ``t`` is computable in closed form via :meth:`position`, giving
    the tests exact ground truth.
    """

    color: tuple[int, int, int]
    start: tuple[float, float]  # (x, y) at frame 0
    velocity: tuple[float, float]  # pixels per frame
    radii: tuple[float, float] = (14.0, 22.0)  # (rx, ry) of the ellipse
    #: frame at which the actor enters the scene (absent before).
    enters_at: int = 0
    #: frame at which the actor leaves (absent from then on); None = never.
    leaves_at: int | None = None

    def present(self, t: int) -> bool:
        if t < self.enters_at:
            return False
        return self.leaves_at is None or t < self.leaves_at

    def position(self, t: int) -> tuple[float, float]:
        """Ground-truth centre at frame ``t`` (reflecting off borders)."""

        def reflect(p: float, v: float, steps: int, lo: float, hi: float) -> float:
            span = hi - lo
            if span <= 0:
                return lo
            x = p - lo + v * steps
            period = 2.0 * span
            x %= period
            if x < 0:
                x += period
            return lo + (x if x <= span else period - x)

        steps = t - self.enters_at
        rx, ry = self.radii
        x = reflect(self.start[0], self.velocity[0], steps, rx, FRAME_WIDTH - rx)
        y = reflect(self.start[1], self.velocity[1], steps, ry, FRAME_HEIGHT - ry)
        return (x, y)


class SyntheticScene:
    """Deterministic generator of kiosk camera frames.

    Parameters
    ----------
    actors:
        The moving blobs.  Defaults to two "customers" with distinct shirt
        colors, one entering at frame 0 and one at frame 40 — enough to
        exercise dynamic hi-fi tracker creation.
    noise_sigma:
        Std-dev of per-pixel sensor noise added to every frame.
    seed:
        Seed for the background texture and noise.
    """

    def __init__(
        self,
        actors: list[Actor] | None = None,
        noise_sigma: float = 2.0,
        seed: int = 1999,
    ):
        self.actors = actors if actors is not None else _default_actors()
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)
        base = self._rng.integers(96, 128, size=(FRAME_HEIGHT, FRAME_WIDTH, 3))
        self.background = base.astype(np.uint8)
        # Precompute coordinate grids once; rendering is then pure numpy.
        self._yy, self._xx = np.mgrid[0:FRAME_HEIGHT, 0:FRAME_WIDTH]

    def render(self, t: int, with_noise: bool = True) -> np.ndarray:
        """Render frame ``t`` as a (240, 320, 3) uint8 array."""
        frame = self.background.astype(np.int16).copy()
        for actor in self.actors:
            if not actor.present(t):
                continue
            cx, cy = actor.position(t)
            rx, ry = actor.radii
            mask = (
                ((self._xx - cx) / rx) ** 2 + ((self._yy - cy) / ry) ** 2
            ) <= 1.0
            frame[mask] = np.asarray(actor.color, dtype=np.int16)
        if with_noise and self.noise_sigma > 0:
            noise = self._noise_for(t)
            frame = frame + noise
        return np.clip(frame, 0, 255).astype(np.uint8)

    def _noise_for(self, t: int) -> np.ndarray:
        """Per-frame noise, deterministic in ``t`` (independent of call order)."""
        rng = np.random.default_rng((hash(("noise", t)) & 0x7FFFFFFF) + 1)
        return (rng.standard_normal((FRAME_HEIGHT, FRAME_WIDTH, 3)) *
                self.noise_sigma).astype(np.int16)

    def ground_truth(self, t: int) -> list[tuple[float, float]]:
        """Centres of all actors present at frame ``t``."""
        return [a.position(t) for a in self.actors if a.present(t)]

    def present_actors(self, t: int) -> list[Actor]:
        return [a for a in self.actors if a.present(t)]


def _default_actors() -> list[Actor]:
    return [
        Actor(color=(200, 40, 40), start=(60.0, 120.0), velocity=(2.0, 0.7)),
        Actor(
            color=(40, 60, 210),
            start=(250.0, 90.0),
            velocity=(-1.5, 1.1),
            enters_at=40,
        ),
    ]
