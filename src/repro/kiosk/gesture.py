"""Gesture recognition over a sliding window of tracking records (paper §1).

    "...a gesture recognition module may need to analyze a sliding window
    over a video stream."

This is the third distinctive STM access pattern (after LATEST_UNSEEN
skipping and specific-timestamp re-analysis): the recognizer keeps the last
``window`` columns of the track channel *alive* by consuming only the
trailing edge — ``consume_until(t - window)`` — while repeatedly getting the
leading edge.  The window's items stay retrievable purely through STM's
timestamp addressing and GC contract; no application-side ring buffer
exists.

The classifier itself is deliberately simple (this is a systems paper): a
trajectory is a **wave** when the horizontal velocity alternates sign with
sufficient amplitude, a **walk** when displacement is consistently
directional, and **still** otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import INFINITY, STM_OLDEST_UNSEEN
from repro.kiosk.records import TrackRecord
from repro.runtime import current_thread
from repro.stm.api import InputConnection

__all__ = ["GestureEvent", "classify_trajectory", "GestureRecognizer",
           "run_gesture_stage"]


@dataclass(frozen=True)
class GestureEvent:
    """A recognized gesture ending at frame ``timestamp``."""

    timestamp: int
    gesture: str  # "wave" | "walk" | "still"
    #: frames of evidence behind the classification.
    span: int
    confidence: float


def classify_trajectory(
    xs: list[float],
    ys: list[float],
    *,
    wave_min_swings: int = 2,
    wave_min_amplitude: float = 3.0,
    walk_min_displacement: float = 2.0,
) -> tuple[str, float]:
    """Classify a trajectory of per-frame positions; returns (label, conf).

    * **wave**: the x-velocity changes sign at least ``wave_min_swings``
      times with mean |vx| above ``wave_min_amplitude``.
    * **walk**: mean per-frame displacement exceeds
      ``walk_min_displacement`` in a consistent direction.
    * **still**: anything else.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 3:
        return ("still", 0.0)
    vx = np.diff(np.asarray(xs, dtype=np.float64))
    vy = np.diff(np.asarray(ys, dtype=np.float64))
    speed = np.hypot(vx, vy)
    moving = speed.mean()

    signs = np.sign(vx[np.abs(vx) > 0.5])
    swings = int(np.count_nonzero(np.diff(signs) != 0)) if signs.size else 0
    if swings >= wave_min_swings and np.abs(vx).mean() >= wave_min_amplitude:
        confidence = min(1.0, swings / (2.0 * wave_min_swings) + 0.25)
        return ("wave", confidence)

    net = np.hypot(xs[-1] - xs[0], ys[-1] - ys[0])
    path = float(speed.sum())
    if moving >= walk_min_displacement and path > 0 and net / path > 0.7:
        return ("walk", min(1.0, net / path))

    return ("still", 1.0 - min(moving / walk_min_displacement, 1.0))


class GestureRecognizer:
    """Streaming classifier over the last ``window`` tracking records."""

    def __init__(self, window: int = 10, min_records: int = 5):
        if window < 3:
            raise ValueError(f"window must be >= 3, got {window}")
        self.window = window
        self.min_records = min_records
        self._history: dict[int, tuple[float, float]] = {}
        self.events: list[GestureEvent] = []

    def feed(self, record: TrackRecord) -> GestureEvent | None:
        """Add one tracking record; returns a gesture event when one fires."""
        best = record.best()
        if best is not None:
            self._history[record.timestamp] = (best[0].cx, best[0].cy)
        # drop everything outside the window
        floor = record.timestamp - self.window + 1
        self._history = {t: p for t, p in self._history.items() if t >= floor}
        points = sorted(self._history.items())
        if len(points) < self.min_records:
            return None
        xs = [p[1][0] for p in points]
        ys = [p[1][1] for p in points]
        label, confidence = classify_trajectory(xs, ys)
        event = GestureEvent(
            timestamp=record.timestamp,
            gesture=label,
            span=len(points),
            confidence=confidence,
        )
        self.events.append(event)
        return event

    @property
    def trailing_edge(self) -> int | None:
        """Oldest timestamp still needed; everything below is consumable."""
        if not self._history:
            return None
        return min(self._history)


def run_gesture_stage(
    inp: InputConnection,
    recognizer: GestureRecognizer,
    *,
    stop_on_none: bool = True,
) -> list[GestureEvent]:
    """Run the recognizer as an STM pipeline stage until end-of-stream.

    The sliding window is maintained with STM semantics: each record is
    fetched in order with OLDEST_UNSEEN (a gesture needs the full
    trajectory, not just the freshest sample); records that fell out of the
    window are
    released with ``consume_until`` so the GC horizon trails the window by
    exactly ``recognizer.window`` frames.  The thread parks its virtual time
    at INFINITY (it only inherits timestamps).
    """
    me = current_thread()
    me.set_virtual_time(INFINITY)
    events: list[GestureEvent] = []
    while True:
        item = inp.get(STM_OLDEST_UNSEEN)
        if stop_on_none and item.value is None:
            inp.consume_until(item.timestamp)
            break
        event = recognizer.feed(item.value)
        if event is not None:
            events.append(event)
        # release only what slid out of the window (§1's pattern):
        edge = recognizer.trailing_edge
        if edge is not None and edge > 0:
            inp.consume_until(edge - 1)
    return events
