"""Synthetic audio modality for the kiosk (paper §2-3).

    "A future kiosk will use microphone arrays to acquire speech input from
    customers" ... "Similar hierarchies can exist for audio and other input
    modalities, and these hierarchies can merge as multiple modalities are
    combined to further refine the understanding of the environment."

We synthesize a microphone signal aligned to the video timeline: each audio
item covers one video frame interval (33.3 ms at 16 kHz = 533 samples), so
an audio item and a video frame with the same timestamp are temporally
correlated — they share a column of the space-time table, which is what
lets the decision module fuse them with two same-timestamp gets (§3).

The analysis stage is a classic energy + zero-crossing-rate speech/activity
detector; the synthetic signal interleaves silence (noise floor) with
"speech" bursts (amplitude-modulated harmonics) on a known schedule, giving
tests exact ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AUDIO_RATE",
    "SAMPLES_PER_FRAME",
    "AudioChunk",
    "AudioRecord",
    "SyntheticMicrophone",
    "SpeechDetector",
]

#: microphone sample rate (Hz).
AUDIO_RATE = 16_000
#: samples per video-frame interval (16 kHz / 30 fps).
SAMPLES_PER_FRAME = AUDIO_RATE // 30  # 533


@dataclass
class AudioChunk:
    """One frame-interval of microphone samples, timestamped like video."""

    timestamp: int
    samples: np.ndarray  # float32 in [-1, 1], SAMPLES_PER_FRAME long

    def __post_init__(self):
        if self.samples.ndim != 1:
            raise ValueError(
                f"audio chunk must be 1-D, got {self.samples.ndim}-D"
            )


@dataclass
class AudioRecord:
    """Speech-detector output for the column ``timestamp``."""

    timestamp: int
    speech: bool
    energy: float
    zero_crossing_rate: float


@dataclass
class SyntheticMicrophone:
    """Deterministic microphone: silence with scheduled speech bursts.

    ``speech_frames`` lists the frame indices during which a customer is
    speaking; everything else is sensor noise.
    """

    speech_frames: frozenset = field(
        default_factory=lambda: frozenset(range(10, 25))
    )
    noise_rms: float = 0.01
    speech_rms: float = 0.2
    seed: int = 404

    def speaking(self, t: int) -> bool:
        return t in self.speech_frames

    def chunk(self, t: int) -> AudioChunk:
        """Synthesize the audio chunk for frame ``t`` (deterministic in t)."""
        rng = np.random.default_rng(self.seed * 1_000_003 + t)
        n = SAMPLES_PER_FRAME
        samples = rng.standard_normal(n).astype(np.float32) * self.noise_rms
        if self.speaking(t):
            # a "voiced" burst: low-frequency harmonics with vibrato.
            base = 120.0 + 15.0 * np.sin(t / 3.0)
            time_axis = (np.arange(n) + t * n) / AUDIO_RATE
            voiced = np.zeros(n)
            for harmonic in (1, 2, 3):
                voiced += np.sin(2 * np.pi * base * harmonic * time_axis) / harmonic
            samples = samples + (self.speech_rms * voiced / 1.8).astype(
                np.float32
            )
        return AudioChunk(timestamp=t, samples=np.clip(samples, -1.0, 1.0))


class SpeechDetector:
    """Energy + zero-crossing-rate speech detector.

    Speech is *loud* (energy well above the noise floor) and *voiced*
    (low zero-crossing rate compared to white noise).  The detector
    calibrates its energy threshold from the first ``calibration`` chunks,
    which must be non-speech — the usual bootstrap assumption.
    """

    def __init__(self, energy_factor: float = 4.0, zcr_max: float = 0.25,
                 calibration: int = 5):
        self.energy_factor = energy_factor
        self.zcr_max = zcr_max
        self.calibration = calibration
        self._noise_energies: list[float] = []
        self.chunks_processed = 0

    @staticmethod
    def features(samples: np.ndarray) -> tuple[float, float]:
        """(RMS energy, zero-crossing rate) of a chunk."""
        energy = float(np.sqrt(np.mean(samples.astype(np.float64) ** 2)))
        signs = np.sign(samples)
        signs[signs == 0] = 1
        zcr = float(np.count_nonzero(np.diff(signs)) / max(len(samples) - 1, 1))
        return energy, zcr

    def analyze(self, chunk: AudioChunk) -> AudioRecord:
        energy, zcr = self.features(chunk.samples)
        if len(self._noise_energies) < self.calibration:
            self._noise_energies.append(energy)
            speech = False
        else:
            floor = float(np.median(self._noise_energies))
            speech = energy > self.energy_factor * floor and zcr < self.zcr_max
        self.chunks_processed += 1
        return AudioRecord(
            timestamp=chunk.timestamp,
            speech=speech,
            energy=energy,
            zero_crossing_rate=zcr,
        )
