"""Hi-fi tracker: expensive model-based target tracking (paper §2-3).

The paper's hi-fi stage runs "a more sophisticated articulated-body or
face-recognition algorithm on the region of interest, beginning again with
the original camera images that led to this hypothesis".  We stand in a
normalized cross-correlation (NCC) template tracker: it acquires a template
from the hypothesis region of the *original* frame (re-analysis of earlier
data — the dynamism that complicates buffer recycling, §3 bullet 3) and then
matches it in a search window of each later frame.

NCC over a search window is deliberately the heavyweight stage — a couple of
orders of magnitude more compute than the blob tracker — giving the pipeline
the paper's property that higher levels are temporally sparser because they
cannot keep up with the full frame rate (§3 bullet 4).  The search is
vectorized with stride tricks (one big einsum instead of Python loops).
"""

from __future__ import annotations

import numpy as np

from repro.kiosk.records import Region, TrackRecord

__all__ = ["normalized_cross_correlation", "HifiTracker"]


def _box_sums(a: np.ndarray, th: int, tw: int) -> np.ndarray:
    """Sum of every ``th x tw`` window of ``a`` via an integral image.

    O(HW) regardless of window size — the standard trick that keeps dense
    template matching tractable.
    """
    c = np.cumsum(np.cumsum(a, axis=0, dtype=np.float64), axis=1)
    c = np.pad(c, ((1, 0), (1, 0)))
    return c[th:, tw:] - c[:-th, tw:] - c[th:, :-tw] + c[:-th, :-tw]


def normalized_cross_correlation(
    image: np.ndarray, template: np.ndarray
) -> np.ndarray:
    """Dense NCC of a grayscale ``template`` over ``image``.

    Returns a map of shape ``(H - th + 1, W - tw + 1)`` with values in
    [-1, 1].  Flat image patches (zero variance) score 0.

    Implementation: the numerator (correlation with the zero-mean template)
    is computed with one FFT-based correlation; the per-window energies in
    the denominator come from integral images — O(HW log HW) total instead
    of the naive O(HW·th·tw).
    """
    if image.ndim != 2 or template.ndim != 2:
        raise ValueError("image and template must be 2-D grayscale arrays")
    th, tw = template.shape
    if th > image.shape[0] or tw > image.shape[1]:
        raise ValueError(
            f"template {template.shape} larger than image {image.shape}"
        )
    image = image.astype(np.float64)
    template = template.astype(np.float64)
    h, w = image.shape
    t = template - template.mean()
    t_norm = np.sqrt((t * t).sum())
    if t_norm <= 1e-12:  # flat template matches nothing meaningfully
        return np.zeros((h - th + 1, w - tw + 1))
    # Correlation == convolution with the flipped kernel; since sum(t) == 0,
    # corr already equals the centered-window dot product.
    fshape = (h + th - 1, w + tw - 1)
    fi = np.fft.rfft2(image, fshape)
    ft = np.fft.rfft2(t[::-1, ::-1], fshape)
    conv = np.fft.irfft2(fi * ft, fshape)
    numer = conv[th - 1 : h, tw - 1 : w]
    # Window energy around the window mean: sum(x^2) - (sum x)^2 / n.
    n = th * tw
    wsum = _box_sums(image, th, tw)
    wsum2 = _box_sums(image * image, th, tw)
    var = np.maximum(wsum2 - wsum * wsum / n, 0.0)
    denom = np.sqrt(var) * t_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        ncc = np.where(denom > 1e-9, numer / np.where(denom == 0, 1, denom), 0.0)
    return np.clip(ncc, -1.0, 1.0)


def _gray(frame: np.ndarray) -> np.ndarray:
    return frame.astype(np.float64).mean(axis=2)


class HifiTracker:
    """Template tracker instantiated from a hypothesis on an earlier frame.

    Parameters
    ----------
    accept_score:
        Minimum NCC peak to report a detection.
    search_margin:
        How far (pixels) around the last known position to search; the
        window grows by ``search_growth`` each consecutive miss so the
        tracker can reacquire a fast-moving target.
    """

    def __init__(
        self,
        accept_score: float = 0.55,
        search_margin: int = 24,
        search_growth: int = 12,
        max_margin: int = 80,
    ):
        self.accept_score = accept_score
        self.search_margin = search_margin
        self.search_growth = search_growth
        self.max_margin = max_margin
        self.template: np.ndarray | None = None
        self.last_position: tuple[float, float] | None = None
        self._margin = search_margin
        self.frames_processed = 0

    @property
    def acquired(self) -> bool:
        return self.template is not None

    def acquire(self, frame: np.ndarray, region: Region) -> None:
        """Cut the template from ``region`` of the hypothesis frame.

        This is the re-analysis step of §3: the hi-fi tracker begins from
        the *original* image that led to the hypothesis, which the low-fi
        tracker has long since moved past — only STM's timestamp addressing
        keeps that frame retrievable.
        """
        patch = _gray(frame[region.y0 : region.y1, region.x0 : region.x1])
        if patch.size == 0:
            raise ValueError(f"empty acquisition region {region}")
        self.template = patch
        self.last_position = (region.cx, region.cy)
        self._margin = self.search_margin

    def analyze(self, timestamp: int, frame: np.ndarray) -> TrackRecord:
        """Match the template around the last known position."""
        if self.template is None:
            raise RuntimeError("HifiTracker.analyze called before acquire()")
        gray = _gray(frame)
        th, tw = self.template.shape
        h, w = gray.shape
        cx, cy = self.last_position  # type: ignore[misc]
        m = self._margin
        x0 = max(int(cx - tw / 2) - m, 0)
        y0 = max(int(cy - th / 2) - m, 0)
        x1 = min(int(cx + tw / 2) + m, w)
        y1 = min(int(cy + th / 2) + m, h)
        window = gray[y0:y1, x0:x1]
        regions: list[Region] = []
        scores: list[float] = []
        if window.shape[0] >= th and window.shape[1] >= tw:
            ncc = normalized_cross_correlation(window, self.template)
            peak = np.unravel_index(int(np.argmax(ncc)), ncc.shape)
            score = float(ncc[peak])
            if score >= self.accept_score:
                px = x0 + peak[1]
                py = y0 + peak[0]
                ncx = px + tw / 2.0
                ncy = py + th / 2.0
                regions.append(
                    Region(
                        x0=px, y0=py, x1=px + tw, y1=py + th,
                        cx=ncx, cy=ncy, area=tw * th,
                    )
                )
                scores.append(score)
                self.last_position = (ncx, ncy)
                self._margin = self.search_margin
            else:
                self._margin = min(self._margin + self.search_growth,
                                   self.max_margin)
        self.frames_processed += 1
        return TrackRecord(
            timestamp=timestamp, tracker="hifi", regions=regions, scores=scores
        )
