"""Data records flowing through the Smart Kiosk pipeline (paper Fig. 2-3).

Each record type corresponds to one STM channel's item type:

========================  =====================================
channel                   item
========================  =====================================
``video_frame``           :class:`VideoFrame`
``lofi_track``            :class:`TrackRecord` (blob tracker)
``hifi_track``            :class:`TrackRecord` (hi-fi tracker)
``decision``              :class:`DecisionRecord`
``gui``                   :class:`GuiEvent`
========================  =====================================

All records carry the frame timestamp they are temporally correlated with —
the paper's central point being that ``F_t``, ``L_t``, ``H_t`` and ``D_t``
occupy the same *column* of the space-time table even though they are
produced at different real times (§4, Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "VideoFrame",
    "Region",
    "TrackRecord",
    "DecisionRecord",
    "GuiEvent",
]


@dataclass
class VideoFrame:
    """One digitized camera frame."""

    timestamp: int
    pixels: np.ndarray  # (H, W, 3) uint8
    #: wall-clock (or virtual) capture time in seconds, for staleness checks.
    captured_at: float = 0.0

    def __post_init__(self):
        if self.pixels.dtype != np.uint8 or self.pixels.ndim != 3:
            raise ValueError(
                f"frame must be a (H, W, 3) uint8 array, got "
                f"{self.pixels.dtype} {self.pixels.shape}"
            )


@dataclass(frozen=True)
class Region:
    """A detected region of interest (bounding box + centroid + mass)."""

    x0: int
    y0: int
    x1: int  # exclusive
    y1: int  # exclusive
    cx: float
    cy: float
    area: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1


@dataclass
class TrackRecord:
    """Output of a tracker analyzing frame ``timestamp``."""

    timestamp: int
    tracker: str  # "lofi" | "color" | "hifi"
    regions: list[Region] = field(default_factory=list)
    #: per-region confidence in [0, 1] (parallel to ``regions``).
    scores: list[float] = field(default_factory=list)
    #: milliseconds of compute the tracker spent on this frame.
    compute_ms: float = 0.0

    @property
    def detected(self) -> bool:
        return bool(self.regions)

    def best(self) -> tuple[Region, float] | None:
        """Highest-scoring region, or None."""
        if not self.regions:
            return None
        idx = int(np.argmax(self.scores)) if self.scores else 0
        score = self.scores[idx] if self.scores else 1.0
        return self.regions[idx], score


@dataclass
class DecisionRecord:
    """The decision module's fused view of frame ``timestamp`` (Fig. 2)."""

    timestamp: int
    customers_present: int
    #: (cx, cy) of the customer the kiosk is engaging, if any.
    focus: tuple[float, float] | None
    confidence: float
    #: directive for the GUI: "idle" | "greet" | "engage" | "farewell"
    action: str


@dataclass
class GuiEvent:
    """What the kiosk says/shows in response to a decision."""

    timestamp: int
    utterance: str
    action: str
