"""The Smart Kiosk application (paper §2): synthetic multi-modal pipeline on STM."""

from repro.kiosk.audio import (
    AUDIO_RATE,
    AudioChunk,
    AudioRecord,
    SAMPLES_PER_FRAME,
    SpeechDetector,
    SyntheticMicrophone,
)
from repro.kiosk.blob_tracker import BlobTracker, connected_components
from repro.kiosk.color_tracker import ColorTracker, back_project, color_histogram
from repro.kiosk.decision import DecisionModule, GuiModule
from repro.kiosk.gesture import (
    GestureEvent,
    GestureRecognizer,
    classify_trajectory,
    run_gesture_stage,
)
from repro.kiosk.frames import (
    FRAME_HEIGHT,
    FRAME_WIDTH,
    Actor,
    SyntheticScene,
    frame_bytes,
)
from repro.kiosk.hifi_tracker import HifiTracker, normalized_cross_correlation
from repro.kiosk.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.kiosk.procfleet import FleetConfig, FleetResult, run_fleet
from repro.kiosk.records import (
    DecisionRecord,
    GuiEvent,
    Region,
    TrackRecord,
    VideoFrame,
)

__all__ = [
    "AUDIO_RATE",
    "Actor",
    "AudioChunk",
    "AudioRecord",
    "BlobTracker",
    "ColorTracker",
    "DecisionModule",
    "DecisionRecord",
    "FRAME_HEIGHT",
    "FleetConfig",
    "FleetResult",
    "FRAME_WIDTH",
    "GestureEvent",
    "GestureRecognizer",
    "GuiEvent",
    "GuiModule",
    "HifiTracker",
    "PipelineConfig",
    "PipelineResult",
    "Region",
    "SAMPLES_PER_FRAME",
    "SpeechDetector",
    "SyntheticMicrophone",
    "SyntheticScene",
    "TrackRecord",
    "VideoFrame",
    "back_project",
    "classify_trajectory",
    "color_histogram",
    "connected_components",
    "frame_bytes",
    "normalized_cross_correlation",
    "run_fleet",
    "run_gesture_stage",
    "run_pipeline",
]
