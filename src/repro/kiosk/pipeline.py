"""The Smart Kiosk vision pipeline on Space-Time Memory (paper Figs. 2-7).

Wires the full pipeline of the paper onto a running
:class:`~repro.runtime.Cluster`:

* **digitizer** — paced at the (scaled) camera rate (§4.3), uses the frame
  number as its virtual time (Fig. 6), puts :class:`VideoFrame` items;
* **low-fi tracker** — gets LATEST_UNSEEN frames (transparently skipping
  stale ones, §3), runs image differencing, puts a TrackRecord *inheriting
  the frame's timestamp* (Fig. 7), and consumes-through its input so GC can
  reclaim skipped frames;
* **hi-fi tracker** — *dynamically spawned* when the low-fi tracker first
  hypothesizes a customer; its initial virtual time is the hypothesis
  timestamp, so it can re-analyze the original frame that triggered the
  hypothesis (§3 bullet 3) — the signature STM maneuver;
* **decision module** — joins the lofi/hifi records of each timestamp
  column (non-blocking specific-timestamp gets, using ``timestamp_range``
  on misses) and emits decisions;
* **GUI** — consumes decisions and speaks.

End-of-stream: the digitizer puts a ``None`` item one past the last frame;
every stage forwards it downstream and exits.

The builder returns a :class:`PipelineResult` with per-stage statistics and
ground-truth tracking error, so tests can assert end-to-end behaviour.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import INFINITY, STM_LATEST_UNSEEN, STM_OLDEST
from repro.errors import (
    ChannelEmptyError,
    DuplicateTimestampError,
    NoSuchItemError,
)
from repro.kiosk.audio import SpeechDetector, SyntheticMicrophone
from repro.kiosk.blob_tracker import BlobTracker
from repro.kiosk.color_tracker import ColorTracker, color_histogram
from repro.kiosk.decision import DecisionModule, GuiModule
from repro.kiosk.frames import SyntheticScene, frame_bytes
from repro.kiosk.gesture import GestureRecognizer, run_gesture_stage
from repro.kiosk.hifi_tracker import HifiTracker
from repro.kiosk.records import DecisionRecord, TrackRecord, VideoFrame
from repro.runtime import Cluster, Pacer, current_thread
from repro.stm import STM

__all__ = ["PipelineConfig", "PipelineResult", "run_pipeline"]


@dataclass
class PipelineConfig:
    """Knobs of the kiosk pipeline run."""

    n_frames: int = 60
    #: frames per second of the (scaled) camera; 30.0 is the paper's rate,
    #: tests typically run much faster.
    fps: float = 240.0
    #: pacing tolerance as a fraction of the period.
    tolerance_frames: float = 4.0
    #: channel capacity (None = unbounded; GC bounds memory instead).
    frame_channel_capacity: int | None = None
    #: enable the dynamically spawned hi-fi tracker.
    enable_hifi: bool = True
    #: enable the color tracker stage refining low-fi hypotheses.
    enable_color: bool = True
    #: enable the microphone + speech-detector modality (§2-3): an audio
    #: channel temporally correlated with the video stream, fused by the
    #: decision module per timestamp column.
    enable_audio: bool = False
    #: enable the gesture-recognition stage (§1 sliding window) consuming
    #: the low-fi track channel alongside the decision module.
    enable_gesture: bool = False
    #: frames during which the synthetic customer speaks (audio mode).
    speech_frames: tuple[int, ...] = tuple(range(10, 30))
    #: address-space placement of each stage (all 0 by default = the
    #: paper's "useful even on an SMP" configuration).
    digitizer_space: int = 0
    lofi_space: int = 0
    hifi_space: int = 0
    decision_space: int = 0
    gui_space: int = 0
    #: blob-tracker threshold/min-area.
    threshold: float = 25.0
    min_area: int = 60
    scene_seed: int = 1999


@dataclass
class PipelineResult:
    """Everything observable about one pipeline run."""

    frames_digitized: int = 0
    frames_analyzed_lofi: int = 0
    frames_analyzed_hifi: int = 0
    frames_skipped_lofi: int = 0
    lofi_records: list[TrackRecord] = field(default_factory=list)
    hifi_records: list[TrackRecord] = field(default_factory=list)
    decisions: list[DecisionRecord] = field(default_factory=list)
    gui: GuiModule = field(default_factory=GuiModule)
    #: per-analyzed-frame distance between reported and true position.
    tracking_errors: list[float] = field(default_factory=list)
    hifi_spawned: int = 0
    digitizer_slips: int = 0
    wall_seconds: float = 0.0
    audio_records: list = field(default_factory=list)
    speech_frames_detected: int = 0
    gestures: list = field(default_factory=list)

    @property
    def mean_tracking_error(self) -> float:
        return float(np.mean(self.tracking_errors)) if self.tracking_errors else math.inf


def run_pipeline(cluster: Cluster, config: PipelineConfig | None = None) -> PipelineResult:
    """Run the kiosk pipeline to completion on ``cluster``; returns stats."""
    config = config or PipelineConfig()
    scene = SyntheticScene(seed=config.scene_seed)
    result = PipelineResult()
    result_lock = threading.Lock()
    hifi_active = threading.Event()
    # Set whenever no hi-fi instance is running; the builder waits on this
    # instead of polling hifi_active with wall-clock sleeps.
    hifi_idle = threading.Event()
    hifi_idle.set()

    creator_space = cluster.space(config.digitizer_space)
    creator = creator_space.adopt_current_thread(virtual_time=0)
    stm0 = STM(creator_space)
    video_chan = stm0.create_channel(
        "kiosk.video", capacity=config.frame_channel_capacity,
        home=config.digitizer_space,
    )
    lofi_chan = stm0.create_channel("kiosk.lofi", home=config.lofi_space)
    hifi_chan = stm0.create_channel("kiosk.hifi", home=config.hifi_space)
    decision_chan = stm0.create_channel("kiosk.decision", home=config.decision_space)
    if config.enable_audio:
        stm0.create_channel("kiosk.audio", home=config.digitizer_space)
    sentinel_ts = config.n_frames

    # ------------------------------------------------------------------
    def digitizer() -> None:
        me = current_thread()
        stm = STM(cluster.space(config.digitizer_space))
        chan = stm.lookup("kiosk.video")
        out = chan.attach_output()
        pacer = Pacer(
            period=1.0 / config.fps,
            tolerance=config.tolerance_frames / config.fps,
            handler=lambda report: None,  # re-anchor on slippage
        )
        t0 = time.monotonic()
        for t in range(config.n_frames):
            pacer.wait_for_tick()
            me.set_virtual_time(t)  # frame count is the virtual time (Fig. 6)
            frame = VideoFrame(
                timestamp=t,
                pixels=scene.render(t),
                captured_at=time.monotonic() - t0,
            )
            out.put(t, frame)
            with result_lock:
                result.frames_digitized += 1
        me.set_virtual_time(sentinel_ts)
        out.put(sentinel_ts, None)
        out.detach()
        me.set_virtual_time(INFINITY)
        with result_lock:
            result.digitizer_slips = pacer.n_slipped

    # ------------------------------------------------------------------
    def hifi(hypothesis_ts: int, acquired_from: "TrackRecord") -> None:
        me = current_thread()  # initial VT == hypothesis_ts (set by spawner)
        stm = STM(cluster.space(config.hifi_space))
        chan_in = stm.lookup("kiosk.video")
        chan_out = stm.lookup("kiosk.hifi")
        inp = chan_in.attach_input()
        out = chan_out.attach_output()
        tracker = HifiTracker()

        def put_record(ts: int, record: TrackRecord) -> bool:
            # A successor/predecessor hi-fi instance may already have filled
            # this column (e.g. across a tracker hand-off at stream end);
            # first record wins, per the channel's unique-timestamp rule.
            # Returns whether THIS record filled the column, so the caller
            # counts each analyzed column once across hand-offs.
            try:
                out.put(ts, record)
            except DuplicateTimestampError:
                return False
            return True

        try:
            # Re-analyze the ORIGINAL frame that triggered the hypothesis.
            try:
                original = inp.get(hypothesis_ts)
            except NoSuchItemError:
                return  # frame already collected: the hypothesis went stale
            region = acquired_from.best()[0]
            tracker.acquire(original.value.pixels, region)
            record = tracker.analyze(hypothesis_ts, original.value.pixels)
            stored = put_record(hypothesis_ts, record)
            inp.consume_until(hypothesis_ts)
            me.set_virtual_time(INFINITY)
            if stored:
                with result_lock:
                    result.frames_analyzed_hifi += 1
                    if record.detected:
                        result.hifi_records.append(record)
            while True:
                item = inp.get(STM_LATEST_UNSEEN)
                if item.value is None:
                    inp.consume_until(item.timestamp)
                    break
                record = tracker.analyze(item.timestamp, item.value.pixels)
                stored = put_record(item.timestamp, record)
                inp.consume_until(item.timestamp)
                if stored:
                    with result_lock:
                        result.frames_analyzed_hifi += 1
                        if record.detected:
                            result.hifi_records.append(record)
        finally:
            inp.detach()
            out.detach()
            hifi_active.clear()
            hifi_idle.set()

    # ------------------------------------------------------------------
    def lofi() -> None:
        me = current_thread()
        space = cluster.space(config.lofi_space)
        stm = STM(space)
        chan_in = stm.lookup("kiosk.video")
        chan_out = stm.lookup("kiosk.lofi")
        inp = chan_in.attach_input()
        out = chan_out.attach_output()
        # Interior pipeline thread: output timestamps are inherited from
        # open input items, so virtual time can sit at INFINITY (Fig. 7).
        me.set_virtual_time(INFINITY)
        tracker = BlobTracker(
            scene.background, threshold=config.threshold, min_area=config.min_area
        )
        color = (
            ColorTracker(color_histogram(_actor_patch(scene, 0)))
            if config.enable_color
            else None
        )
        last_ts = -1
        while True:
            item = inp.get(STM_LATEST_UNSEEN)
            ts = item.timestamp
            if item.value is None:
                out.put(ts, None)
                inp.consume_until(ts)
                break
            record = tracker.analyze(ts, item.value.pixels)
            if color is not None and record.detected:
                refined = color.analyze(ts, item.value.pixels, record.regions)
                if refined.detected:
                    record = TrackRecord(
                        timestamp=ts,
                        tracker="lofi",
                        regions=refined.regions,
                        scores=refined.scores,
                    )
            # Dynamic hi-fi creation: spawn while the frame is still OPEN so
            # the child's initial virtual time (== ts) is legal and the
            # original frame stays reachable (§3, §4.2).
            if (
                config.enable_hifi
                and record.detected
                and not hifi_active.is_set()
            ):
                hifi_active.set()
                hifi_idle.clear()
                # Spawn directly on the hi-fi space (in-process clusters
                # need no SpawnReq RPC; closures stay unpickled).  The
                # child's initial VT is the hypothesis timestamp — legal
                # because the frame is still OPEN here, holding this
                # thread's visibility at ts (§4.2).
                cluster.space(config.hifi_space).spawn(
                    hifi, (ts, record), virtual_time=ts,
                )
                with result_lock:
                    result.hifi_spawned += 1
            out.put(ts, record)
            inp.consume_until(ts)
            with result_lock:
                result.frames_analyzed_lofi += 1
                result.frames_skipped_lofi += max(ts - last_ts - 1, 0)
                result.lofi_records.append(record)
                best = record.best()
                if best is not None:
                    truths = scene.ground_truth(ts)
                    if truths:
                        err = min(
                            math.hypot(best[0].cx - gx, best[0].cy - gy)
                            for gx, gy in truths
                        )
                        result.tracking_errors.append(err)
            last_ts = ts
        inp.detach()
        out.detach()

    # ------------------------------------------------------------------
    def microphone() -> None:
        """Audio modality (§2-3): chunks aligned to the video timeline."""
        me = current_thread()
        stm = STM(cluster.space(config.digitizer_space))
        out = stm.lookup("kiosk.audio").attach_output()
        mic = SyntheticMicrophone(
            speech_frames=frozenset(config.speech_frames)
        )
        detector = SpeechDetector()
        for t in range(config.n_frames):
            me.set_virtual_time(t)
            record = detector.analyze(mic.chunk(t))
            out.put(t, record)
            with result_lock:
                result.audio_records.append(record)
                if record.speech:
                    result.speech_frames_detected += 1
        me.set_virtual_time(sentinel_ts)
        out.put(sentinel_ts, None)
        out.detach()
        me.set_virtual_time(INFINITY)

    # ------------------------------------------------------------------
    def gesture() -> None:
        """Sliding-window gesture stage (§1) on the low-fi track channel."""
        stm = STM(cluster.space(config.decision_space))
        inp = stm.lookup("kiosk.lofi").attach_input()
        recognizer = GestureRecognizer(window=8, min_records=4)
        events = run_gesture_stage(inp, recognizer)
        inp.detach()
        with result_lock:
            result.gestures.extend(events)

    # ------------------------------------------------------------------
    def decision() -> None:
        stm = STM(cluster.space(config.decision_space))
        chan_lofi = stm.lookup("kiosk.lofi")
        chan_hifi = stm.lookup("kiosk.hifi")
        chan_out = stm.lookup("kiosk.decision")
        in_lofi = chan_lofi.attach_input()
        in_hifi = chan_hifi.attach_input()
        in_audio = (
            stm.lookup("kiosk.audio").attach_input()
            if config.enable_audio
            else None
        )
        out = chan_out.attach_output()
        current_thread().set_virtual_time(INFINITY)
        module = DecisionModule()
        while True:
            item = in_lofi.get(STM_OLDEST)
            ts = item.timestamp
            if item.value is None:
                out.put(ts, None)
                in_lofi.consume_until(ts)
                in_hifi.consume_until(ts)
                if in_audio is not None:
                    in_audio.consume_until(ts)
                break
            # Temporal join: the hi-fi record of the same column, if the
            # hi-fi tracker produced one (it is temporally sparser, §3).
            hifi_rec = None
            try:
                hifi_item = in_hifi.get(ts, block=False)
                hifi_rec = hifi_item.value
            except NoSuchItemError:
                pass
            except ChannelEmptyError:
                pass
            # Multi-modal merge (§2-3): the same column's audio record.
            audio_rec = None
            if in_audio is not None:
                try:
                    audio_rec = in_audio.get(ts, block=False).value
                except (NoSuchItemError, ChannelEmptyError):
                    pass
            dec = module.decide(ts, lofi=item.value, hifi=hifi_rec,
                                audio=audio_rec)
            out.put(ts, dec)
            in_lofi.consume_until(ts)
            in_hifi.consume_until(ts)
            if in_audio is not None:
                in_audio.consume_until(ts)
            with result_lock:
                result.decisions.append(dec)
        in_lofi.detach()
        in_hifi.detach()
        if in_audio is not None:
            in_audio.detach()
        out.detach()

    # ------------------------------------------------------------------
    def gui() -> None:
        stm = STM(cluster.space(config.gui_space))
        chan_in = stm.lookup("kiosk.decision")
        inp = chan_in.attach_input()
        current_thread().set_virtual_time(INFINITY)
        while True:
            item = inp.get(STM_OLDEST)
            if item.value is None:
                inp.consume_until(item.timestamp)
                break
            result.gui.react(item.value)
            inp.consume(item.timestamp)
        inp.detach()

    # ------------------------------------------------------------------
    start = time.monotonic()
    threads = [
        cluster.space(config.gui_space).spawn(
            gui, name="kiosk-gui", virtual_time=0),
        cluster.space(config.decision_space).spawn(
            decision, name="kiosk-decision", virtual_time=0),
        cluster.space(config.lofi_space).spawn(
            lofi, name="kiosk-lofi", virtual_time=0),
        cluster.space(config.digitizer_space).spawn(
            digitizer, name="kiosk-digitizer", virtual_time=0),
    ]
    if config.enable_gesture:
        threads.append(
            cluster.space(config.decision_space).spawn(
                gesture, name="kiosk-gesture", virtual_time=0)
        )
    if config.enable_audio:
        threads.append(
            cluster.space(config.digitizer_space).spawn(
                microphone, name="kiosk-microphone", virtual_time=0)
        )
    # Children are spawned (each with initial VT >= our visibility of 0);
    # now park the builder's virtual time at INFINITY so it stops pinning
    # the GC horizon while the pipeline runs (§4.2 discipline).
    creator.set_virtual_time(INFINITY)
    deadline = max(60.0, config.n_frames / config.fps * 20.0)
    for thread in threads:
        thread.join(deadline)
    # Wait for a possibly still-running hi-fi tracker to notice the sentinel
    # (event-driven: the hi-fi instance sets hifi_idle on exit).
    hifi_idle.wait(deadline)
    result.wall_seconds = time.monotonic() - start
    creator.exit()
    return result


def _actor_patch(scene: SyntheticScene, actor_index: int) -> np.ndarray:
    """A clean patch of the actor's color to train the color model."""
    actor = scene.actors[actor_index]
    return np.tile(
        np.asarray(actor.color, dtype=np.uint8).reshape(1, 1, 3), (8, 8, 1)
    )
