"""Low-fi blob tracker: repetitive image differencing (paper §2).

    "In the quiescent state, a blob tracker does simple repetitive
    image-differencing to detect activity in the field of view."

The tracker diffs each frame against a reference background, thresholds the
per-pixel difference magnitude, and extracts connected components.  It is
deliberately the *cheap* stage of the hierarchy — a few vectorized numpy
passes per frame — in contrast to the hi-fi tracker.

Connected components use a two-pass union-find labeling implemented here
(rather than ``scipy.ndimage.label``) so the core pipeline has no scipy
dependency; the implementation is vectorized row-wise and fast enough for
240×320 masks.
"""

from __future__ import annotations

import numpy as np

from repro.kiosk.records import Region, TrackRecord

__all__ = ["connected_components", "BlobTracker"]


def connected_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected labeling of a boolean mask.

    Returns ``(labels, n)`` where ``labels`` is int32 with 0 = background
    and components numbered 1..n.  Two-pass algorithm with union-find over
    provisional row-run labels.
    """
    if mask.dtype != bool or mask.ndim != 2:
        raise ValueError(f"mask must be a 2-D bool array, got {mask.dtype} {mask.ndim}D")
    h, w = mask.shape
    labels = np.zeros((h, w), dtype=np.int32)
    parent: list[int] = [0]  # parent[i] for union-find; 0 is background

    def find(a: int) -> int:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:  # path compression
            parent[a], a = root, parent[a]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    next_label = 1
    for y in range(h):
        row = mask[y]
        if not row.any():
            continue
        # Find runs of True in this row.
        padded = np.concatenate(([False], row, [False]))
        changes = np.flatnonzero(padded[1:] != padded[:-1])
        starts, ends = changes[0::2], changes[1::2]
        for x0, x1 in zip(starts, ends, strict=True):
            # Labels of the row above overlapping this run (4-connectivity).
            if y > 0:
                above = labels[y - 1, x0:x1]
                touching = np.unique(above[above > 0])
            else:
                touching = np.empty(0, dtype=np.int32)
            if touching.size == 0:
                label = next_label
                parent.append(label)
                next_label += 1
            else:
                label = int(touching.min())
                for other in touching:
                    union(label, int(other))
            labels[y, x0:x1] = label
    if next_label == 1:
        return labels, 0
    # Second pass: map provisional labels to compact roots.
    roots = np.array([find(i) for i in range(next_label)], dtype=np.int32)
    compact = np.zeros(next_label, dtype=np.int32)
    uniq = np.unique(roots[1:])
    compact[uniq] = np.arange(1, uniq.size + 1, dtype=np.int32)
    remap = compact[roots]
    return remap[labels], int(uniq.size)


class BlobTracker:
    """Image-differencing activity detector.

    Parameters
    ----------
    background:
        Reference frame (H, W, 3) uint8; typically the scene with no actors.
    threshold:
        Minimum mean absolute per-channel difference for a pixel to count
        as "active".
    min_area:
        Components smaller than this many pixels are noise and dropped.
    adapt:
        When set, the background is updated with an exponential moving
        average of inactive pixels (rate = ``adapt``), tracking slow
        lighting changes like a long-running kiosk must.
    """

    def __init__(
        self,
        background: np.ndarray,
        threshold: float = 25.0,
        min_area: int = 60,
        adapt: float | None = None,
    ):
        self._background = background.astype(np.float32)
        self.threshold = float(threshold)
        self.min_area = int(min_area)
        self.adapt = adapt
        self.frames_processed = 0

    def analyze(self, timestamp: int, frame: np.ndarray) -> TrackRecord:
        """Detect active regions in ``frame``; returns the tracking record."""
        diff = np.abs(frame.astype(np.float32) - self._background).mean(axis=2)
        mask = diff > self.threshold
        if self.adapt is not None:
            quiet = ~mask
            self._background[quiet] += self.adapt * (
                frame.astype(np.float32)[quiet] - self._background[quiet]
            )
        labels, n = connected_components(mask)
        regions: list[Region] = []
        scores: list[float] = []
        for component in range(1, n + 1):
            ys, xs = np.nonzero(labels == component)
            area = int(xs.size)
            if area < self.min_area:
                continue
            regions.append(
                Region(
                    x0=int(xs.min()),
                    y0=int(ys.min()),
                    x1=int(xs.max()) + 1,
                    y1=int(ys.max()) + 1,
                    cx=float(xs.mean()),
                    cy=float(ys.mean()),
                    area=area,
                )
            )
            # Activity confidence: how far above threshold the region is.
            strength = float(diff[ys, xs].mean())
            scores.append(min(1.0, strength / (2.0 * self.threshold)))
        self.frames_processed += 1
        return TrackRecord(
            timestamp=timestamp, tracker="lofi", regions=regions, scores=scores
        )
