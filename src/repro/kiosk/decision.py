"""Decision module and GUI of the Smart Kiosk (paper Fig. 1-2).

The decision module "combines the analysis of such lower level processing
to produce a decision output which drives the GUI that converses with the
user".  It fuses the low-fi and hi-fi tracking records that share a
timestamp column — the temporal correlation STM exists to provide — into a
:class:`~repro.kiosk.records.DecisionRecord`, and a tiny conversation state
machine turns decisions into GUI utterances (greet / engage / farewell),
mirroring the kiosk behaviours of §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kiosk.records import DecisionRecord, GuiEvent, TrackRecord

__all__ = ["DecisionModule", "GuiModule"]


class DecisionModule:
    """Fuse per-timestamp tracking records into decisions.

    Hi-fi evidence dominates when present (it is more precise); low-fi
    evidence alone yields a lower-confidence decision.  Hysteresis
    (``present_after`` / ``absent_after`` consecutive frames) keeps the
    kiosk from flapping between greeting and farewell on noisy detections.
    """

    def __init__(self, present_after: int = 2, absent_after: int = 5):
        self.present_after = present_after
        self.absent_after = absent_after
        self._present_streak = 0
        self._absent_streak = 0
        self._engaged = False
        self.decisions_made = 0

    def decide(
        self,
        timestamp: int,
        lofi: TrackRecord | None,
        hifi: TrackRecord | None = None,
        audio=None,
    ) -> DecisionRecord:
        """Produce the decision for the column ``timestamp``.

        ``audio`` optionally carries the same column's
        :class:`~repro.kiosk.audio.AudioRecord` — the multi-modal merge of
        §2-3: a speaking customer raises confidence (capped at 1.0), and
        speech alone (voice without a visual track yet) counts as presence,
        so the kiosk reacts to being addressed from off-camera.
        """
        best = None
        confidence = 0.0
        count = 0
        if hifi is not None and hifi.detected:
            best = hifi.best()
            count = len(hifi.regions)
            # Visual evidence alone tops out at 0.95: the last band of the
            # scale is reserved for multi-modal corroboration, so a fused
            # (vision + speech) decision always outranks vision alone.
            confidence = 0.5 + 0.45 * (best[1] if best else 0.0)
        elif lofi is not None and lofi.detected:
            best = lofi.best()
            count = len(lofi.regions)
            confidence = 0.5 * (best[1] if best else 0.0)
        if audio is not None and getattr(audio, "speech", False):
            if count == 0:
                count = 1  # someone is talking to the kiosk
                confidence = max(confidence, 0.3)
            else:
                confidence = min(confidence + 0.25, 1.0)

        if count > 0:
            self._present_streak += 1
            self._absent_streak = 0
        else:
            self._absent_streak += 1
            self._present_streak = 0

        if not self._engaged and self._present_streak >= self.present_after:
            self._engaged = True
            action = "greet"
        elif self._engaged and self._absent_streak >= self.absent_after:
            self._engaged = False
            action = "farewell"
        elif self._engaged:
            action = "engage"
        else:
            action = "idle"

        self.decisions_made += 1
        return DecisionRecord(
            timestamp=timestamp,
            customers_present=count,
            focus=(best[0].cx, best[0].cy) if best else None,
            confidence=confidence,
            action=action,
        )


@dataclass
class GuiModule:
    """The kiosk's face: turns decisions into utterances (paper §2).

    Stateless apart from a transcript; a real kiosk would drive the
    synthetic talking face here.
    """

    transcript: list[GuiEvent] = field(default_factory=list)

    _LINES = {
        "greet": "Hello there! Welcome to the Smart Kiosk.",
        "engage": "…",
        "farewell": "Goodbye! Come back soon.",
        "idle": "",
    }

    def react(self, decision: DecisionRecord) -> GuiEvent | None:
        """Render a decision; returns the event for greet/farewell moments."""
        if decision.action in ("greet", "farewell"):
            event = GuiEvent(
                timestamp=decision.timestamp,
                utterance=self._LINES[decision.action],
                action=decision.action,
            )
            self.transcript.append(event)
            return event
        return None

    @property
    def greetings(self) -> int:
        return sum(1 for e in self.transcript if e.action == "greet")

    @property
    def farewells(self) -> int:
        return sum(1 for e in self.transcript if e.action == "farewell")
