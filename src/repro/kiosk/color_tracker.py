"""Color-histogram tracker (paper §2).

    "a color tracker can be initiated that checks the color histogram of the
    interesting region of the image, to refine the hypothesis that an
    interesting object (e.g., a human) is in view."

Given a target color model (a normalized 3-D RGB histogram learned from an
example patch), the tracker back-projects the model onto a frame — every
pixel gets the probability mass of its color bin — and scores candidate
regions by their mean back-projection.  It can also *localize* the target by
running a few mean-shift iterations on the back-projection inside a search
window, which is how the pipeline refines a low-fi region hypothesis.
"""

from __future__ import annotations

import numpy as np

from repro.kiosk.records import Region, TrackRecord

__all__ = ["color_histogram", "back_project", "ColorTracker"]


def color_histogram(patch: np.ndarray, bins: int = 8) -> np.ndarray:
    """Normalized ``bins³`` RGB histogram of a (N, 3) or (H, W, 3) patch."""
    pixels = patch.reshape(-1, 3)
    if pixels.size == 0:
        raise ValueError("cannot build a color histogram from an empty patch")
    idx = (pixels.astype(np.uint16) * bins) // 256  # per-channel bin indices
    flat = (idx[:, 0] * bins + idx[:, 1]) * bins + idx[:, 2]
    hist = np.bincount(flat, minlength=bins**3).astype(np.float64)
    return hist / hist.sum()


def back_project(frame: np.ndarray, hist: np.ndarray, bins: int = 8) -> np.ndarray:
    """Per-pixel probability of belonging to the histogram's color model."""
    if hist.shape != (bins**3,):
        raise ValueError(f"expected a flat {bins}^3 histogram, got {hist.shape}")
    idx = (frame.astype(np.uint16) * bins) // 256
    flat = (idx[..., 0] * bins + idx[..., 1]) * bins + idx[..., 2]
    return hist[flat]


class ColorTracker:
    """Track a color-modeled target through frames.

    Parameters
    ----------
    model:
        Normalized flat histogram of the target (from :func:`color_histogram`).
    bins:
        Histogram resolution per channel.
    accept_score:
        Minimum mean back-projection for the target to count as present.
    window:
        Half-size of the mean-shift window in pixels.
    """

    def __init__(
        self,
        model: np.ndarray,
        bins: int = 8,
        accept_score: float = 0.02,
        window: int = 24,
    ):
        self.model = model
        self.bins = bins
        self.accept_score = accept_score
        self.window = window
        self.frames_processed = 0

    def score_region(self, frame: np.ndarray, region: Region) -> float:
        """Mean back-projection of the model inside ``region``."""
        patch = frame[region.y0 : region.y1, region.x0 : region.x1]
        if patch.size == 0:
            return 0.0
        return float(back_project(patch, self.model, self.bins).mean())

    def localize(
        self,
        frame: np.ndarray,
        start: tuple[float, float],
        iterations: int = 5,
    ) -> tuple[float, float, float]:
        """Mean-shift from ``start``; returns ``(cx, cy, score)``.

        Runs on the back-projection of the whole frame; each iteration moves
        the window to the probability-weighted centroid.
        """
        bp = back_project(frame, self.model, self.bins)
        h, w = bp.shape
        cx, cy = start
        win = self.window
        for _ in range(iterations):
            x0 = max(int(cx) - win, 0)
            x1 = min(int(cx) + win + 1, w)
            y0 = max(int(cy) - win, 0)
            y1 = min(int(cy) + win + 1, h)
            sub = bp[y0:y1, x0:x1]
            mass = sub.sum()
            if mass <= 0:
                break
            ys, xs = np.mgrid[y0:y1, x0:x1]
            nx = float((xs * sub).sum() / mass)
            ny = float((ys * sub).sum() / mass)
            if abs(nx - cx) < 0.5 and abs(ny - cy) < 0.5:
                cx, cy = nx, ny
                break
            cx, cy = nx, ny
        x0 = max(int(cx) - win, 0)
        x1 = min(int(cx) + win + 1, w)
        y0 = max(int(cy) - win, 0)
        y1 = min(int(cy) + win + 1, h)
        score = float(bp[y0:y1, x0:x1].mean()) if (x1 > x0 and y1 > y0) else 0.0
        return cx, cy, score

    def analyze(
        self,
        timestamp: int,
        frame: np.ndarray,
        candidates: list[Region] | None = None,
    ) -> TrackRecord:
        """Confirm/refine candidate regions (or scan the whole frame).

        With candidates (the normal pipeline path: the low-fi tracker's
        regions), each is scored against the color model and accepted
        regions are refined by mean-shift.  Without candidates the tracker
        localizes from the frame's global back-projection peak.
        """
        regions: list[Region] = []
        scores: list[float] = []
        if candidates:
            for cand in candidates:
                score = self.score_region(frame, cand)
                if score < self.accept_score:
                    continue
                cx, cy, refined = self.localize(frame, (cand.cx, cand.cy))
                win = self.window
                regions.append(
                    Region(
                        x0=max(int(cx) - win, 0),
                        y0=max(int(cy) - win, 0),
                        x1=min(int(cx) + win, frame.shape[1]),
                        y1=min(int(cy) + win, frame.shape[0]),
                        cx=cx,
                        cy=cy,
                        area=cand.area,
                    )
                )
                scores.append(max(score, refined))
        else:
            bp = back_project(frame, self.model, self.bins)
            peak = np.unravel_index(int(np.argmax(bp)), bp.shape)
            cx, cy, score = self.localize(frame, (float(peak[1]), float(peak[0])))
            if score >= self.accept_score:
                win = self.window
                regions.append(
                    Region(
                        x0=max(int(cx) - win, 0),
                        y0=max(int(cy) - win, 0),
                        x1=min(int(cx) + win, frame.shape[1]),
                        y1=min(int(cy) + win, frame.shape[0]),
                        cx=cx,
                        cy=cy,
                        area=(2 * win) ** 2,
                    )
                )
                scores.append(score)
        self.frames_processed += 1
        return TrackRecord(
            timestamp=timestamp, tracker="color", regions=regions, scores=scores
        )
