"""The kiosk pipeline as a *fleet* of spawn-picklable stage functions.

:func:`~repro.kiosk.pipeline.run_pipeline` builds its stages as closures
over shared in-process state (result accumulators, the live scene object),
which is exactly right for the thread runtime and exactly wrong for the
process runtime (:mod:`repro.runtime.procs`): a closure does not pickle
under the ``spawn`` start method, and shared accumulators do not exist
across address-space *processes*.

This module is the cross-process retelling of the same Fig. 2 pipeline:

    digitizer  ->  low-fi tracker  ->  decision + GUI
    (space d)      (space t)           (driver's space)

Every stage is a **module-level function** taking only picklable arguments,
finds its channels by *name* (the registry is reachable from any space),
and binds to its hosting address space with :meth:`~repro.stm.STM.here`.
All cross-stage state travels through STM channels — which is the paper's
whole point: the channels *are* the shared state, so the program is
indifferent to whether its stages share a heap, a node, or nothing.

The stage functions follow the §4.2 timestamp discipline: the digitizer
produces timestamps (virtual time tracks the frame counter), interior
stages attach first and then jump to ``INFINITY``, putting *while the input
item is open* so the output inherits its timestamp.  End of stream is a
``None`` item at timestamp ``n_frames``.

Works unchanged on both the thread runtime (:class:`~repro.runtime.cluster
.Cluster`) and the process runtime (:class:`~repro.runtime.procs
.ProcCluster`) — the benchmark in :mod:`repro.bench.pr6_procs` runs it on
both and compares.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import INFINITY
from repro.kiosk.blob_tracker import BlobTracker
from repro.kiosk.decision import DecisionModule, GuiModule
from repro.kiosk.frames import SyntheticScene
from repro.kiosk.records import DecisionRecord, GuiEvent, VideoFrame
from repro.runtime.threads import current_thread, require_current_thread
from repro.stm import STM

__all__ = ["FleetConfig", "FleetResult", "run_fleet"]

#: channel names — the fleet's only rendezvous besides the name service.
VIDEO_CHANNEL = "kiosk.fleet.video"
TRACK_CHANNEL = "kiosk.fleet.tracks"


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of a cross-process kiosk run (must pickle under ``spawn``)."""

    n_frames: int = 30
    #: address-space placement; the driver's space hosts decision + GUI.
    digitizer_space: int = 1
    tracker_space: int = 2
    #: bound on in-flight frames (backpressure instead of unbounded growth).
    frame_channel_capacity: int = 8
    threshold: float = 25.0
    min_area: int = 60
    scene_seed: int = 1999
    noise_sigma: float = 2.0


@dataclass
class FleetResult:
    """Everything the driver can observe about one fleet run."""

    frames_digitized: int = 0
    frames_tracked: int = 0
    frames_detected: int = 0
    decisions: list[DecisionRecord] = field(default_factory=list)
    transcript: list[GuiEvent] = field(default_factory=list)
    mean_tracking_error: float = float("nan")
    wall_seconds: float = 0.0
    #: cluster-wide harvest (``collect_telemetry=True`` on a ProcCluster
    #: with tracing armed); None otherwise.
    telemetry: object | None = None

    @property
    def fps(self) -> float:
        if self.wall_seconds <= 0:
            return float("nan")
        return self.frames_digitized / self.wall_seconds


# ----------------------------------------------------------------------
# stage functions (module-level: picklable under the spawn start method)
# ----------------------------------------------------------------------
def fleet_digitizer(config: FleetConfig) -> int:
    """Render ``n_frames`` synthetic camera frames into the video channel."""
    stm = STM.here()
    me = require_current_thread()
    out = stm.lookup(VIDEO_CHANNEL, wait=True).attach_output()
    scene = SyntheticScene(seed=config.scene_seed, noise_sigma=config.noise_sigma)
    try:
        for ts in range(config.n_frames):
            # The digitizer *produces* timestamps, so its virtual time
            # tracks the frame counter (§4.2) — that is what lets GC chase
            # the stream instead of waiting for the whole run to end.
            me.set_virtual_time(ts)
            frame = VideoFrame(timestamp=ts, pixels=scene.render(ts))
            out.put(ts, frame, refcount=1)
        me.set_virtual_time(config.n_frames)
        out.put(config.n_frames, None, refcount=1)  # end of stream
    finally:
        out.detach()
    return config.n_frames


def fleet_tracker(config: FleetConfig) -> int:
    """Blob-track every frame; forward TrackRecords with inherited timestamps."""
    stm = STM.here()
    me = require_current_thread()
    inp = stm.lookup(VIDEO_CHANNEL, wait=True).attach_input()
    out = stm.lookup(TRACK_CHANNEL, wait=True).attach_output()
    # Attach first (at the spawn-time visibility), then become an interior
    # thread: all of this stage's puts inherit timestamps from open gets.
    me.set_virtual_time(INFINITY)
    scene = SyntheticScene(seed=config.scene_seed, noise_sigma=config.noise_sigma)
    tracker = BlobTracker(
        scene.background, threshold=config.threshold, min_area=config.min_area
    )
    tracked = 0
    try:
        for ts in range(config.n_frames + 1):
            item = inp.get(ts)
            if item.value is None:  # end of stream: pass the marker on
                out.put(ts, None, refcount=1)
                inp.consume(ts)
                break
            record = tracker.analyze(ts, item.value.pixels)
            # Put while the input item is open so the record inherits ts.
            out.put(ts, record, refcount=1)
            inp.consume(ts)
            tracked += 1
    finally:
        inp.detach()
        out.detach()
    return tracked


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_fleet(
    cluster,
    config: FleetConfig | None = None,
    collect_telemetry: bool = False,
) -> FleetResult:
    """Run the fleet on ``cluster`` (thread or process runtime) and report.

    The driver hosts the decision + GUI stage on the cluster's space 0 —
    the only space a :class:`~repro.runtime.procs.ProcCluster` can address
    in-process — and spawns the digitizer and tracker on the configured
    spaces, which may live in other OS processes.

    ``collect_telemetry`` harvests the whole cluster's telemetry right
    after the run (before the child processes can exit) into
    ``result.telemetry`` — a :class:`~repro.obs.collect.ClusterTelemetry`
    when the cluster supports the harvest RPC (ProcCluster), else a
    single-process snapshot of the local recorder/registry.
    """
    config = config or FleetConfig()
    space = cluster.space(0)
    was_adopted = current_thread()
    me = space.adopt_current_thread()
    result = FleetResult()
    t0 = time.perf_counter()
    stm = STM(space)
    video = stm.create_channel(
        VIDEO_CHANNEL,
        capacity=config.frame_channel_capacity,
        home=config.digitizer_space,
    )
    tracks = stm.create_channel(TRACK_CHANNEL, home=config.tracker_space)
    inp = tracks.attach_input()
    digitizer = space.spawn(
        fleet_digitizer, (config,), on_space=config.digitizer_space,
        name="fleet-digitizer",
    )
    tracker = space.spawn(
        fleet_tracker, (config,), on_space=config.tracker_space,
        name="fleet-tracker",
    )
    decider = DecisionModule()
    gui = GuiModule()
    scene = SyntheticScene(seed=config.scene_seed, noise_sigma=config.noise_sigma)
    errors: list[float] = []
    try:
        for ts in range(config.n_frames + 1):
            item = inp.get_consume(ts)
            me.set_virtual_time(ts + 1)
            if item.value is None:
                break
            record = item.value
            result.frames_tracked += 1
            if record.detected:
                result.frames_detected += 1
                best = record.best()
                truth = scene.ground_truth(ts)
                if best is not None and truth:
                    region, _score = best
                    errors.append(
                        min(
                            float(np.hypot(region.cx - gx, region.cy - gy))
                            for gx, gy in truth
                        )
                    )
            decision = decider.decide(ts, record)
            result.decisions.append(decision)
            event = gui.react(decision)
            if event is not None:
                result.transcript.append(event)
        digitizer.join(timeout=30.0)
        tracker.join(timeout=30.0)
    finally:
        inp.detach()
        if was_adopted is None:
            me.exit()
    result.frames_digitized = config.n_frames
    result.wall_seconds = time.perf_counter() - t0
    if errors:
        result.mean_tracking_error = float(np.mean(errors))
    if collect_telemetry:
        harvest = getattr(cluster, "harvest_telemetry", None)
        if harvest is not None:
            result.telemetry = harvest()
        else:
            # Thread runtime: every space shares this process, so the local
            # snapshot already *is* the cluster-wide telemetry.
            from repro.obs.collect import ClusterTelemetry, snapshot_local

            result.telemetry = ClusterTelemetry([snapshot_local(space=0)])
    return result
