"""The kiosk fleet on the asyncio runtime (coroutine retelling of Fig. 2).

Same pipeline as :mod:`repro.kiosk.procfleet` — digitizer -> low-fi tracker
-> decision + GUI — with every stage an ``async def`` Stampede task on an
:class:`~repro.runtime.aio.AioCluster`.  Stage logic, channel names, and
the §4.2 timestamp discipline are identical to the thread/process fleets;
only the blocking substrate differs, which is exactly what the conformance
suite pins: the three drivers must produce the *same* tracking output.

Deterministic by construction: stages synchronize column-by-column with
specific-timestamp gets (no LATEST_UNSEEN skipping), so the analyzed-frame
set does not depend on scheduling.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import INFINITY
from repro.kiosk.blob_tracker import BlobTracker
from repro.kiosk.decision import DecisionModule, GuiModule
from repro.kiosk.frames import SyntheticScene
from repro.kiosk.procfleet import (
    FleetConfig,
    FleetResult,
    TRACK_CHANNEL,
    VIDEO_CHANNEL,
)
from repro.kiosk.records import VideoFrame
from repro.runtime.aio import AioCluster
from repro.runtime.threads import require_current_thread
from repro.stm.aio import AioSTM

__all__ = ["run_aio_fleet"]


async def aio_digitizer(config: FleetConfig) -> int:
    """Render synthetic camera frames into the video channel (awaitable)."""
    stm = AioSTM.here()
    me = require_current_thread()
    out = await (await stm.lookup(VIDEO_CHANNEL, wait=True)).attach_output()
    scene = SyntheticScene(seed=config.scene_seed, noise_sigma=config.noise_sigma)
    try:
        for ts in range(config.n_frames):
            me.set_virtual_time(ts)
            frame = VideoFrame(timestamp=ts, pixels=scene.render(ts))
            await out.put(ts, frame, refcount=1)
        me.set_virtual_time(config.n_frames)
        await out.put(config.n_frames, None, refcount=1)  # end of stream
    finally:
        await out.detach()
    return config.n_frames


async def aio_tracker(config: FleetConfig) -> int:
    """Blob-track every frame; forward records with inherited timestamps."""
    stm = AioSTM.here()
    me = require_current_thread()
    inp = await (await stm.lookup(VIDEO_CHANNEL, wait=True)).attach_input()
    out = await (await stm.lookup(TRACK_CHANNEL, wait=True)).attach_output()
    me.set_virtual_time(INFINITY)
    scene = SyntheticScene(seed=config.scene_seed, noise_sigma=config.noise_sigma)
    tracker = BlobTracker(
        scene.background, threshold=config.threshold, min_area=config.min_area
    )
    tracked = 0
    try:
        for ts in range(config.n_frames + 1):
            item = await inp.get(ts)
            if item.value is None:
                await out.put(ts, None, refcount=1)
                await inp.consume(ts)
                break
            record = tracker.analyze(ts, item.value.pixels)
            # Put while the input item is open so the record inherits ts.
            await out.put(ts, record, refcount=1)
            await inp.consume(ts)
            tracked += 1
    finally:
        await inp.detach()
        await out.detach()
    return tracked


async def run_aio_fleet(
    cluster: AioCluster, config: FleetConfig | None = None
) -> FleetResult:
    """Run the fleet as asyncio tasks on ``cluster`` and report.

    The driver coroutine hosts the decision + GUI stage, mirroring
    :func:`repro.kiosk.procfleet.run_fleet` line for line.
    """
    config = config or FleetConfig()
    space = cluster.space(0)
    me = space.adopt_current_task()
    result = FleetResult()
    t0 = time.perf_counter()
    stm = AioSTM(space)
    video = await stm.create_channel(
        VIDEO_CHANNEL,
        capacity=config.frame_channel_capacity,
        home=config.digitizer_space,
    )
    tracks = await stm.create_channel(TRACK_CHANNEL, home=config.tracker_space)
    inp = await tracks.attach_input()
    digitizer = cluster.space(config.digitizer_space).spawn_task(
        aio_digitizer, (config,), name="aio-fleet-digitizer"
    )
    tracker = cluster.space(config.tracker_space).spawn_task(
        aio_tracker, (config,), name="aio-fleet-tracker"
    )
    decider = DecisionModule()
    gui = GuiModule()
    scene = SyntheticScene(seed=config.scene_seed, noise_sigma=config.noise_sigma)
    errors: list[float] = []
    try:
        for ts in range(config.n_frames + 1):
            item = await inp.get_consume(ts)
            me.set_virtual_time(ts + 1)
            if item.value is None:
                break
            record = item.value
            result.frames_tracked += 1
            if record.detected:
                result.frames_detected += 1
                best = record.best()
                truth = scene.ground_truth(ts)
                if best is not None and truth:
                    region, _score = best
                    errors.append(
                        min(
                            float(np.hypot(region.cx - gx, region.cy - gy))
                            for gx, gy in truth
                        )
                    )
            decision = decider.decide(ts, record)
            result.decisions.append(decision)
            event = gui.react(decision)
            if event is not None:
                result.transcript.append(event)
        await cluster.space(config.digitizer_space).ajoin(digitizer, timeout=30.0)
        await cluster.space(config.tracker_space).ajoin(tracker, timeout=30.0)
    finally:
        await inp.detach()
        me.exit()
    result.frames_digitized = config.n_frames
    result.wall_seconds = time.perf_counter() - t0
    if errors:
        result.mean_tracking_error = float(np.mean(errors))
    return result
