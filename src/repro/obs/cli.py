"""Command line for repro.obs: trace a workload, inspect a trace.

Subcommands::

    python -m repro.obs kiosk --frames 60 --trace out.json
        Run the Smart Kiosk pipeline with tracing armed; write the Chrome
        trace, print the trace summary, the space-time lag report, and the
        metrics registry snapshot.  Open ``out.json`` in Perfetto
        (https://ui.perfetto.dev) or chrome://tracing.

    python -m repro.obs report TRACE.json [--format text|json]
        Validate and summarize a previously captured trace.

    python -m repro.obs lag TRACE.json [--fps F]
        The space-time lag report (per-thread virtual time vs. wall clock,
        paper §8) reconstructed from a captured trace.

    python -m repro.obs validate TRACE.json
        Schema-check a trace; exit 1 with the problems listed otherwise.

Exit codes: 0 ok, 1 invalid trace / failed run, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import events as obs_events
from repro.obs.export import (
    lag_report,
    lag_report_from_doc,
    render_lag_report,
    render_trace_summary,
    summarize_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import REGISTRY

__all__ = ["main"]


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _cmd_kiosk(args: argparse.Namespace) -> int:
    # Imported lazily: the CLI must stay usable for trace inspection even
    # where numpy (pulled in by the kiosk stages) is unavailable.
    from repro.kiosk import PipelineConfig, run_pipeline
    from repro.runtime import Cluster

    if args.spaces == 3:
        config = PipelineConfig(
            n_frames=args.frames, fps=args.fps,
            digitizer_space=0, lofi_space=1, hifi_space=1,
            decision_space=2, gui_space=2,
        )
    else:
        config = PipelineConfig(n_frames=args.frames, fps=args.fps)
    with obs_events.trace(capacity=args.capacity) as rec:
        with Cluster(n_spaces=args.spaces, gc_period=0.02) as cluster:
            result = run_pipeline(cluster, config)
    doc = write_chrome_trace(args.trace, rec)
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - would be a bug in the exporter
        print("exported trace failed schema validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps({
            "trace": str(args.trace),
            "frames_digitized": result.frames_digitized,
            "summary": summarize_trace(doc),
            "lag": lag_report(rec, fps=args.fps),
            "metrics": REGISTRY.snapshot(),
        }, indent=2, default=str))
        return 0
    print(f"kiosk run: {result.frames_digitized} frames digitized, "
          f"{result.frames_analyzed_lofi} analyzed, "
          f"{len(result.decisions)} decisions, "
          f"{result.wall_seconds:.2f} s wall")
    print(f"trace written to {args.trace} "
          f"(open in https://ui.perfetto.dev or chrome://tracing)")
    print()
    print(render_trace_summary(summarize_trace(doc)))
    print()
    print(render_lag_report(lag_report(rec, fps=args.fps)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    problems = validate_chrome_trace(doc)
    if problems:
        print(f"{args.trace}: not a valid trace_event document:",
              file=sys.stderr)
        for problem in problems[:20]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    summary = summarize_trace(doc)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(render_trace_summary(summary))
    return 0


def _cmd_lag(args: argparse.Namespace) -> int:
    report = lag_report_from_doc(_load(args.trace), fps=args.fps)
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_lag_report(report))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems = validate_chrome_trace(_load(args.trace))
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print(f"{args.trace}: valid trace_event document")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tracing, metrics, and timeline export for the STM runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    kiosk = sub.add_parser("kiosk", help="run the kiosk pipeline traced")
    kiosk.add_argument("--frames", type=int, default=60)
    kiosk.add_argument("--fps", type=float, default=120.0)
    kiosk.add_argument("--spaces", type=int, default=1, choices=[1, 3])
    kiosk.add_argument("--trace", default="kiosk_trace.json",
                       help="output Chrome trace path (default %(default)s)")
    kiosk.add_argument("--capacity", type=int,
                       default=obs_events.DEFAULT_CAPACITY,
                       help="per-thread ring capacity in events")
    kiosk.add_argument("--format", choices=["text", "json"], default="text")
    kiosk.set_defaults(fn=_cmd_kiosk)

    report = sub.add_parser("report", help="summarize a captured trace")
    report.add_argument("trace")
    report.add_argument("--format", choices=["text", "json"], default="text")
    report.set_defaults(fn=_cmd_report)

    lag = sub.add_parser("lag", help="space-time lag report from a trace")
    lag.add_argument("trace")
    lag.add_argument("--fps", type=float, default=None,
                     help="intended tick rate, for absolute lag")
    lag.add_argument("--format", choices=["text", "json"], default="text")
    lag.set_defaults(fn=_cmd_lag)

    validate = sub.add_parser("validate", help="schema-check a trace file")
    validate.add_argument("trace")
    validate.set_defaults(fn=_cmd_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `... | head`; not an error
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
