"""Command line for repro.obs: trace a workload, inspect a trace.

Subcommands::

    python -m repro.obs kiosk --frames 60 --trace out.json
        Run the Smart Kiosk pipeline with tracing armed; write the Chrome
        trace, print the trace summary, the space-time lag report, and the
        metrics registry snapshot.  Open ``out.json`` in Perfetto
        (https://ui.perfetto.dev) or chrome://tracing.

    python -m repro.obs report TRACE.json [--format text|json]
        Validate and summarize a previously captured trace.

    python -m repro.obs lag TRACE.json [--fps F]
        The space-time lag report (per-thread virtual time vs. wall clock,
        paper §8) reconstructed from a captured trace.

    python -m repro.obs validate TRACE.json
        Schema-check a trace; exit 1 with the problems listed otherwise.

    python -m repro.obs serve --port 9464 [--frames 200] [--procs]
        Run the kiosk workload with a live Prometheus exposition endpoint:
        ``curl http://127.0.0.1:9464/metrics`` during the run returns the
        current metrics in text exposition format (merged across all
        address-space processes under ``--procs``, each series labelled by
        space); ``/snapshot`` is the same data as JSON.

    python -m repro.obs top TARGET [--watch SECONDS]
        The stmtop view — per-channel latency percentiles, GC epochs, wire
        traffic, per-thread virtual time — from a serve endpoint URL or a
        saved JSON snapshot; ``--watch`` refreshes until interrupted.

Exit codes: 0 ok, 1 invalid trace / failed run, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import events as obs_events
from repro.obs.export import (
    lag_report,
    lag_report_from_doc,
    render_lag_report,
    render_trace_summary,
    summarize_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import REGISTRY

__all__ = ["main"]


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _cmd_kiosk(args: argparse.Namespace) -> int:
    # Imported lazily: the CLI must stay usable for trace inspection even
    # where numpy (pulled in by the kiosk stages) is unavailable.
    if args.procs:
        return _kiosk_procs(args)
    from repro.kiosk import PipelineConfig, run_pipeline
    from repro.runtime import Cluster

    if args.spaces == 3:
        config = PipelineConfig(
            n_frames=args.frames, fps=args.fps,
            digitizer_space=0, lofi_space=1, hifi_space=1,
            decision_space=2, gui_space=2,
        )
    else:
        config = PipelineConfig(n_frames=args.frames, fps=args.fps)
    with obs_events.trace(capacity=args.capacity) as rec:
        with Cluster(n_spaces=args.spaces, gc_period=0.02) as cluster:
            result = run_pipeline(cluster, config)
    doc = write_chrome_trace(args.trace, rec)
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - would be a bug in the exporter
        print("exported trace failed schema validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps({
            "trace": str(args.trace),
            "frames_digitized": result.frames_digitized,
            "summary": summarize_trace(doc),
            "lag": lag_report(rec, fps=args.fps),
            "metrics": REGISTRY.snapshot(),
        }, indent=2, default=str))
        return 0
    print(f"kiosk run: {result.frames_digitized} frames digitized, "
          f"{result.frames_analyzed_lofi} analyzed, "
          f"{len(result.decisions)} decisions, "
          f"{result.wall_seconds:.2f} s wall")
    print(f"trace written to {args.trace} "
          f"(open in https://ui.perfetto.dev or chrome://tracing)")
    print()
    print(render_trace_summary(summarize_trace(doc)))
    print()
    print(render_lag_report(lag_report(rec, fps=args.fps)))
    return 0


def _kiosk_procs(args: argparse.Namespace) -> int:
    """The kiosk fleet on a 3-space ProcCluster, harvested and merged."""
    from repro.kiosk.procfleet import FleetConfig, run_fleet
    from repro.runtime.procs import ProcCluster

    was_armed = obs_events.armed()
    obs_events.enable(capacity=args.capacity)
    try:
        with ProcCluster(n_spaces=3, gc_period=0.02) as cluster:
            result = run_fleet(
                cluster, FleetConfig(n_frames=args.frames),
                collect_telemetry=True,
            )
    finally:
        if not was_armed:
            obs_events.disable()
    telemetry = result.telemetry
    doc = telemetry.write_chrome_trace(args.trace)
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - would be a bug in the merger
        print("merged trace failed schema validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    summary = summarize_trace(doc)
    lag = lag_report_from_doc(doc, fps=args.fps)
    if args.format == "json":
        print(json.dumps({
            "trace": str(args.trace),
            "processes": len(telemetry.processes),
            "frames_tracked": result.frames_tracked,
            "summary": summary,
            "lag": lag,
            "metrics": telemetry.metrics_snapshot(),
        }, indent=2, default=str))
        return 0
    print(f"kiosk fleet run across {len(telemetry.processes)} processes: "
          f"{result.frames_tracked} frames tracked, "
          f"{result.wall_seconds:.2f} s wall")
    print(f"merged cluster trace written to {args.trace} "
          f"({summary['flows']} cross-process flows; open in "
          f"https://ui.perfetto.dev)")
    print()
    print(render_trace_summary(summary))
    print()
    print(render_lag_report(lag))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    problems = validate_chrome_trace(doc)
    if problems:
        print(f"{args.trace}: not a valid trace_event document:",
              file=sys.stderr)
        for problem in problems[:20]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    summary = summarize_trace(doc)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(render_trace_summary(summary))
    return 0


def _cmd_lag(args: argparse.Namespace) -> int:
    report = lag_report_from_doc(_load(args.trace), fps=args.fps)
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_lag_report(report))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems = validate_chrome_trace(_load(args.trace))
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print(f"{args.trace}: valid trace_event document")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.promtext import ExpositionServer

    # The source is swapped under the scraper's feet as the run progresses:
    # registry-only before the cluster is up, live cluster harvest during a
    # --procs run, the final merged harvest after teardown.
    source_holder = {"fn": REGISTRY.dump}
    server = ExpositionServer(
        source=lambda: source_holder["fn"](), port=args.port
    )
    server.start()
    print(f"exposition endpoint: {server.url} (/snapshot for JSON, /healthz)")
    sys.stdout.flush()
    try:
        if args.frames > 0:
            if args.procs:
                from repro.kiosk.procfleet import FleetConfig, run_fleet
                from repro.runtime.procs import ProcCluster

                was_armed = obs_events.armed()
                obs_events.enable(capacity=args.capacity)
                try:
                    with ProcCluster(n_spaces=3, gc_period=0.02) as cluster:
                        source_holder["fn"] = (
                            lambda: cluster.harvest_telemetry().metrics_dump()
                        )
                        result = run_fleet(
                            cluster, FleetConfig(n_frames=args.frames),
                            collect_telemetry=True,
                        )
                        source_holder["fn"] = result.telemetry.metrics_dump
                finally:
                    if not was_armed:
                        obs_events.disable()
                print(f"fleet run done: {result.frames_tracked} frames "
                      f"tracked across 3 processes")
            else:
                from repro.kiosk import PipelineConfig, run_pipeline
                from repro.runtime import Cluster

                with Cluster(n_spaces=args.spaces, gc_period=0.02) as cluster:
                    result = run_pipeline(
                        cluster, PipelineConfig(n_frames=args.frames)
                    )
                print(f"kiosk run done: {result.frames_digitized} frames "
                      f"digitized")
        if args.linger > 0:
            _time.sleep(args.linger)
        elif args.frames <= 0:
            print("no workload requested; serving until interrupted (Ctrl-C)")
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time
    from urllib.request import urlopen

    from repro.obs.promtext import render_top

    def fetch() -> dict:
        if args.target.startswith(("http://", "https://")):
            url = args.target.rstrip("/")
            if not url.endswith("/snapshot"):
                url += "/snapshot"
            with urlopen(url) as resp:
                return json.load(resp)
        with open(args.target) as fh:
            return json.load(fh)

    while True:
        snapshot = fetch()
        if args.watch:
            print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
        print(render_top(snapshot))
        if not args.watch:
            return 0
        try:
            _time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tracing, metrics, and timeline export for the STM runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    kiosk = sub.add_parser("kiosk", help="run the kiosk pipeline traced")
    kiosk.add_argument("--frames", type=int, default=60)
    kiosk.add_argument("--fps", type=float, default=120.0)
    kiosk.add_argument("--spaces", type=int, default=1, choices=[1, 3])
    kiosk.add_argument("--trace", default="kiosk_trace.json",
                       help="output Chrome trace path (default %(default)s)")
    kiosk.add_argument("--capacity", type=int,
                       default=obs_events.DEFAULT_CAPACITY,
                       help="per-thread ring capacity in events")
    kiosk.add_argument("--format", choices=["text", "json"], default="text")
    kiosk.add_argument("--procs", action="store_true",
                       help="run the fleet on a 3-space ProcCluster and "
                            "write the harvested, merged cluster trace")
    kiosk.set_defaults(fn=_cmd_kiosk)

    report = sub.add_parser("report", help="summarize a captured trace")
    report.add_argument("trace")
    report.add_argument("--format", choices=["text", "json"], default="text")
    report.set_defaults(fn=_cmd_report)

    lag = sub.add_parser("lag", help="space-time lag report from a trace")
    lag.add_argument("trace")
    lag.add_argument("--fps", type=float, default=None,
                     help="intended tick rate, for absolute lag")
    lag.add_argument("--format", choices=["text", "json"], default="text")
    lag.set_defaults(fn=_cmd_lag)

    validate = sub.add_parser("validate", help="schema-check a trace file")
    validate.add_argument("trace")
    validate.set_defaults(fn=_cmd_validate)

    serve = sub.add_parser(
        "serve", help="Prometheus exposition endpoint over a kiosk run"
    )
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: ephemeral, printed)")
    serve.add_argument("--frames", type=int, default=60,
                       help="kiosk workload length; 0 = serve idle forever")
    serve.add_argument("--spaces", type=int, default=1, choices=[1, 3])
    serve.add_argument("--procs", action="store_true",
                       help="drive a 3-space ProcCluster; /metrics serves "
                            "the live cluster-merged harvest")
    serve.add_argument("--capacity", type=int,
                       default=obs_events.DEFAULT_CAPACITY)
    serve.add_argument("--linger", type=float, default=0.0,
                       help="keep serving this many seconds after the run")
    serve.set_defaults(fn=_cmd_serve)

    top = sub.add_parser(
        "top", help="stmtop: live metrics view from a serve endpoint"
    )
    top.add_argument("target",
                     help="serve endpoint URL or a saved /snapshot JSON file")
    top.add_argument("--watch", type=float, default=None,
                     help="refresh every N seconds until interrupted")
    top.set_defaults(fn=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `... | head`; not an error
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
