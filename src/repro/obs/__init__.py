"""repro.obs: end-to-end observability for the STM runtime.

The paper leans on exactly this kind of instrumentation — §6's "debugging
or a monitoring connection", §8's real-time guarantees, and §9's call for
"more detailed performance analysis" — and this package supplies it in
three layers:

* :mod:`repro.obs.events` — a low-overhead **event-tracing layer**:
  thread-local ring buffers of structured spans, instants, and counter
  samples, emitted from instrumentation points threaded through the STM
  kernel (put/get/consume including block/wakeup sub-spans), the GC daemon
  (epoch scatter/collect, per-space reclaim), ``runtime.threads``
  (virtual-time ticks), and the CLF transport (packet send/recv with byte
  counts).  Armed by ``STMOBS=1`` or the :func:`trace` context manager;
  a single ``recorder is None`` check when off.
* :mod:`repro.obs.metrics` — a **metrics registry** of counters, gauges,
  and fixed-bucket latency histograms (p50/p95/p99), keyed by
  channel/connection/space.  The canonical home of the streaming-statistics
  helpers formerly in ``repro.util.stats`` (shim removed in PR 6).
* :mod:`repro.obs.export` — **exporters**: Chrome ``trace_event`` JSON
  (loadable in Perfetto / ``chrome://tracing``; one track per thread per
  address space, spans colored by op), the space-time lag report
  (per-thread virtual time vs. wall clock, paper §8), and text/JSON dumps.

Command line: ``python -m repro.obs`` (see :mod:`repro.obs.cli`), plus a
``--trace OUT.json`` flag on ``examples/vision_pipeline.py`` and on the
benchmark suite (``pytest benchmarks --trace OUT.json``).
"""

from repro.obs.events import (
    Recorder,
    Ring,
    TraceEvent,
    armed,
    disable,
    enable,
    get_recorder,
    trace,
)
from repro.obs.export import (
    lag_report,
    render_lag_report,
    summarize_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OnlineStats,
    percentile,
    summarize,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OnlineStats",
    "Recorder",
    "Ring",
    "TraceEvent",
    "armed",
    "disable",
    "enable",
    "get_recorder",
    "lag_report",
    "percentile",
    "render_lag_report",
    "summarize",
    "summarize_trace",
    "to_chrome_trace",
    "trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
