"""repro.obs: end-to-end observability for the STM runtime.

The paper leans on exactly this kind of instrumentation — §6's "debugging
or a monitoring connection", §8's real-time guarantees, and §9's call for
"more detailed performance analysis" — and this package supplies it in
three layers:

* :mod:`repro.obs.events` — a low-overhead **event-tracing layer**:
  thread-local ring buffers of structured spans, instants, and counter
  samples, emitted from instrumentation points threaded through the STM
  kernel (put/get/consume including block/wakeup sub-spans), the GC daemon
  (epoch scatter/collect, per-space reclaim), ``runtime.threads``
  (virtual-time ticks), and the CLF transport (packet send/recv with byte
  counts).  Armed by ``STMOBS=1`` or the :func:`trace` context manager;
  a single ``recorder is None`` check when off.
* :mod:`repro.obs.metrics` — a **metrics registry** of counters, gauges,
  and fixed-bucket latency histograms (p50/p95/p99), keyed by
  channel/connection/space.  The canonical home of the streaming-statistics
  helpers formerly in ``repro.util.stats`` (shim removed in PR 6).
* :mod:`repro.obs.export` — **exporters**: Chrome ``trace_event`` JSON
  (loadable in Perfetto / ``chrome://tracing``; one track per thread per
  address space, spans colored by op), the space-time lag report
  (per-thread virtual time vs. wall clock, paper §8), and text/JSON dumps.

PR 10 adds the **distributed telemetry plane** on top:

* :mod:`repro.obs.collect` — cross-process harvest: a ``ProcCluster``
  drains every child's rings + registry over a control RPC, estimates each
  child's monotonic-clock offset, and merges everything into one Perfetto
  document with cross-process flow arrows (CLF send/recv pairs stitched by
  per-message flow ids).
* :mod:`repro.obs.promtext` — Prometheus text exposition (format 0.0.4)
  over stdlib ``http.server`` (``python -m repro.obs serve``), plus the
  ``stmtop`` terminal view (``python -m repro.obs top``).

Command line: ``python -m repro.obs`` (see :mod:`repro.obs.cli`), plus a
``--trace OUT.json`` flag on ``examples/vision_pipeline.py`` and on the
benchmark suite (``pytest benchmarks --trace OUT.json``).
"""

from repro.obs.collect import (
    ClusterTelemetry,
    ProcessTelemetry,
    estimate_clock_offset,
    snapshot_local,
)
from repro.obs.events import (
    Recorder,
    Ring,
    TraceEvent,
    armed,
    disable,
    enable,
    get_recorder,
    trace,
)
from repro.obs.export import (
    add_flow_events,
    lag_report,
    lag_report_from_doc,
    render_lag_report,
    summarize_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OnlineStats,
    dump_as_snapshot,
    merge_dumps,
    percentile,
    summarize,
)
from repro.obs.promtext import (
    CONTENT_TYPE,
    ExpositionServer,
    render_prometheus,
    render_top,
)

__all__ = [
    "CONTENT_TYPE",
    "REGISTRY",
    "ClusterTelemetry",
    "Counter",
    "ExpositionServer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OnlineStats",
    "ProcessTelemetry",
    "Recorder",
    "Ring",
    "TraceEvent",
    "add_flow_events",
    "armed",
    "disable",
    "dump_as_snapshot",
    "enable",
    "estimate_clock_offset",
    "get_recorder",
    "lag_report",
    "lag_report_from_doc",
    "merge_dumps",
    "percentile",
    "render_lag_report",
    "render_prometheus",
    "render_top",
    "snapshot_local",
    "summarize",
    "summarize_trace",
    "to_chrome_trace",
    "trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
