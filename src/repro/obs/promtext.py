"""Prometheus text exposition + the ``stmtop`` live view.

:func:`render_prometheus` turns any mergeable metrics dump (one process's
:meth:`~repro.obs.metrics.MetricsRegistry.dump`, or a cluster-merged dump
from :meth:`~repro.obs.collect.ClusterTelemetry.metrics_dump` where every
series carries a ``space`` label) into `Prometheus text exposition format
0.0.4 <https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
``# TYPE`` headers, cumulative ``_bucket{le=...}`` series, ``_sum`` and
``_count``, escaped label values, deterministically ordered output.

:class:`ExpositionServer` serves it over stdlib ``http.server`` — no new
dependencies — so ``curl localhost:PORT/metrics`` or a Prometheus scrape
job works against a live cluster run (``python -m repro.obs serve``).

:func:`render_top` is the terminal view of the same snapshot: per-channel
put/get latency percentiles, GC epoch times, wire traffic, and per-thread
virtual time — the paper-§8 space-time picture, one screenful at a time.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs import metrics as _metrics
from repro.obs.metrics import dump_as_snapshot

__all__ = [
    "CONTENT_TYPE",
    "render_prometheus",
    "ExpositionServer",
    "render_top",
]

#: The exposition-format content type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def _escape_label_value(value: object) -> str:
    """Escape a label value per the exposition format (\\\\, \\", \\n)."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value: float | int | None) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(float(bound))


def _label_str(labels: dict, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(k, _escape_label_value(v)) for k, v in sorted(labels.items())]
    pairs += list(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _sanitize_name(name: str) -> str:
    out = "".join(
        c if c.isalnum() or c in ("_", ":") else "_" for c in name
    )
    if out and out[0].isdigit():
        out = "_" + out
    return out


def render_prometheus(dump: dict | _metrics.MetricsRegistry) -> str:
    """Render a metrics dump in Prometheus text exposition format 0.0.4.

    Accepts a live registry (dumped on the spot) or any mergeable dump —
    including a cluster-merged one whose entries carry ``space`` labels.
    Output is deterministic: metric names sorted, series sorted by label
    string, labels sorted by key inside each series.
    """
    if isinstance(dump, _metrics.MetricsRegistry):
        dump = dump.dump()
    lines: list[str] = []
    for name in sorted(dump):
        entries = dump[name]
        if not entries:
            continue
        pname = _sanitize_name(name)
        kind = entries[0]["kind"]
        lines.append(f"# TYPE {pname} {kind}")
        series: list[str] = []
        for entry in entries:
            labels = entry["labels"]
            if entry["kind"] == "counter":
                series.append(
                    f"{pname}{_label_str(labels)} "
                    f"{_format_value(entry['value'])}"
                )
            elif entry["kind"] == "gauge":
                if entry["value"] is None:
                    continue  # never set: no sample to expose
                series.append(
                    f"{pname}{_label_str(labels)} "
                    f"{_format_value(entry['value'])}"
                )
            elif entry["kind"] == "histogram":
                chunk: list[str] = []
                cumulative = 0
                bounds = [*entry["buckets"], math.inf]
                for bound, count in zip(
                    bounds, entry["bucket_counts"], strict=True
                ):
                    cumulative += count
                    le = (("le", _format_le(bound)),)
                    chunk.append(
                        f"{pname}_bucket{_label_str(labels, le)} {cumulative}"
                    )
                chunk.append(
                    f"{pname}_sum{_label_str(labels)} "
                    f"{_format_value(entry['sum'])}"
                )
                chunk.append(
                    f"{pname}_count{_label_str(labels)} {entry['count']}"
                )
                series.append("\n".join(chunk))
        lines.extend(sorted(series))
    return "\n".join(lines) + "\n" if lines else "\n"


# ----------------------------------------------------------------------
# the exposition endpoint
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    server: "ExpositionServer"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        try:
            if path in ("/metrics", "/"):
                body = render_prometheus(self.server.source()).encode()
                ctype = CONTENT_TYPE
            elif path == "/snapshot":
                snap = dump_as_snapshot(self.server.source())
                body = json.dumps(snap, indent=1, default=str).encode()
                ctype = "application/json; charset=utf-8"
            elif path == "/healthz":
                body = b"ok\n"
                ctype = "text/plain; charset=utf-8"
            else:
                self.send_error(404, "unknown path (try /metrics)")
                return
        except Exception as exc:  # pragma: no cover - defensive
            self.send_error(500, f"snapshot failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        pass  # scrapes every few seconds; keep stderr quiet


class ExpositionServer(ThreadingHTTPServer):
    """A stdlib HTTP endpoint exposing a metrics source to Prometheus.

    ``source`` is any zero-argument callable returning a mergeable dump —
    the process-wide registry by default, or a cluster harvest for the
    merged multi-process view::

        server = ExpositionServer(port=9464)
        server.start()          # daemon thread; server.port is bound
        ... curl http://127.0.0.1:9464/metrics ...
        server.stop()

    Routes: ``/metrics`` (Prometheus text), ``/snapshot`` (JSON stats
    view), ``/healthz``.
    """

    daemon_threads = True
    #: socketserver's default listen backlog is 5 — a fleet of Prometheus
    #: instances scraping in lockstep overflows that and sees connection
    #: resets (repro.bench.pr10_telemetry drives exactly that stampede).
    request_queue_size = 128

    def __init__(
        self,
        source: Callable[[], dict] | None = None,
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        super().__init__((host, port), _Handler)
        self.source = source if source is not None else _metrics.REGISTRY.dump
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}/metrics"

    def start(self) -> "ExpositionServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="stm-exposition", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------------------------
# stmtop: the terminal view
# ----------------------------------------------------------------------
def _fmt_ns(ns: float | None) -> str:
    if ns is None:
        return "      -"
    if ns >= 1e9:
        return f"{ns / 1e9:6.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:5.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:5.1f}µs"
    return f"{ns:5.0f}ns"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:7.1f} {unit}"
        n /= 1024
    return f"{n:7.1f} GiB"  # pragma: no cover - loop always returns


def render_top(snapshot: dict) -> str:
    """An ``stmtop`` screen from a metrics snapshot (single- or multi-space).

    Sections: per-channel put/get latency (count, p50/p95/p99), GC epochs,
    CLF wire traffic, and per-thread virtual time — whatever the snapshot
    actually carries; absent sections are omitted.
    """
    lines: list[str] = []
    ops = []
    for op, metric in (("put", "stm_put_ns"), ("get", "stm_get_ns"),
                       ("consume", "stm_consume_ns")):
        for entry in snapshot.get(metric, []):
            if entry.get("count"):
                ops.append((op, entry))
    if ops:
        lines.append("channel ops (latency)")
        lines.append(
            f"  {'op':<8} {'channel':<20} {'space':>5} {'count':>8} "
            f"{'p50':>8} {'p95':>8} {'p99':>8}"
        )
        for op, entry in ops:
            labels = entry["labels"]
            lines.append(
                f"  {op:<8} {str(labels.get('channel', '-')):<20} "
                f"{str(labels.get('space', '-')):>5} {entry['count']:>8} "
                f"{_fmt_ns(entry.get('p50')):>8} "
                f"{_fmt_ns(entry.get('p95')):>8} "
                f"{_fmt_ns(entry.get('p99')):>8}"
            )
    gc_entries = [e for e in snapshot.get("gc_epoch_seconds", [])
                  if e.get("count")]
    if gc_entries:
        lines.append("garbage collector")
        for entry in gc_entries:
            labels = entry["labels"]
            space = labels.get("space", "-")
            lines.append(
                f"  space {space}: {entry['count']} epochs, "
                f"mean {entry['mean'] * 1e3:.2f} ms, "
                f"p95 {entry['p95'] * 1e3:.2f} ms"
            )
        collected = snapshot.get("gc_collected_total", [])
        total = sum(e.get("value") or 0 for e in collected)
        if total:
            lines.append(f"  items reclaimed: {int(total)}")
    wire = snapshot.get("clf_wire_bytes_total", [])
    if wire:
        lines.append("clf wire traffic")
        for entry in sorted(
            wire, key=lambda e: tuple(sorted(e["labels"].items()))
        ):
            labels = entry["labels"]
            lines.append(
                f"  space {labels.get('space', '-')} "
                f"{str(labels.get('medium', '?')):<4} "
                f"{str(labels.get('direction', '?')):<2} "
                f"{_fmt_bytes(entry.get('value') or 0)}"
            )
    vt = [e for e in snapshot.get("stm_virtual_time", [])
          if e.get("value") is not None]
    if vt:
        lines.append("virtual time")
        for entry in sorted(
            vt, key=lambda e: tuple(sorted(e["labels"].items()))
        ):
            labels = entry["labels"]
            value = entry["value"]
            shown = "∞" if isinstance(value, float) and math.isinf(value) \
                else f"{value:g}"
            lines.append(
                f"  space {labels.get('space', '-')} "
                f"{str(labels.get('thread', '?')):<24} vt={shown}"
            )
    if not lines:
        return "stmtop: no metrics recorded yet"
    return "\n".join(lines)
