"""The distributed telemetry plane: harvest, clock-align, and merge.

The PR 5 observability layer is strictly in-process: each address space owns
its recorder rings and its :data:`~repro.obs.metrics.REGISTRY`, and in the
process runtime those die with the child.  This module is the collection
side of the telemetry plane:

* :func:`snapshot_local` packages the calling process's rings + registry
  into one picklable :class:`ProcessTelemetry` — this is what a
  ``TelemetryHarvestReq`` handler returns over the control RPC;
* :func:`estimate_clock_offset` maps a child's monotonic clock onto the
  collector's using the request/response midpoint (both sides read
  ``time.perf_counter_ns``, i.e. ``CLOCK_MONOTONIC`` — same origin per
  boot on one host, but the estimate also absorbs genuinely different
  origins, e.g. containers or a future cross-machine harvest);
* :class:`ClusterTelemetry` merges many per-process snapshots into **one**
  Chrome trace document on a common timeline — with cross-process flow
  arrows stitched from the CLF flow ids — and one metrics dump where every
  series carries a ``space`` label.

The merged document passes :func:`~repro.obs.export.validate_chrome_trace`
and loads in Perfetto exactly like a single-process export; the merged
metrics dump feeds :mod:`repro.obs.promtext` for Prometheus exposition.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.export import _cname, add_flow_events
from repro.obs.metrics import dump_as_snapshot, merge_dumps

__all__ = [
    "ProcessTelemetry",
    "ClusterTelemetry",
    "snapshot_local",
    "estimate_clock_offset",
]


def estimate_clock_offset(
    t_request_ns: int, t_response_ns: int, remote_clock_ns: int
) -> int:
    """Offset to add to remote timestamps to land on the collector clock.

    The remote side read its clock somewhere inside the RPC round trip;
    the midpoint is the minimum-error estimate of *when* (on the collector
    clock) that reading was taken, so the error is bounded by half the
    round-trip time — tens of microseconds for an on-host control RPC,
    far below the span durations being aligned.
    """
    midpoint = (t_request_ns + t_response_ns) // 2
    return midpoint - remote_clock_ns


@dataclass
class ProcessTelemetry:
    """One process's harvested telemetry, ready to ship over the control RPC.

    ``rings`` preserves the recorder's per-thread structure as plain dicts
    (``{"tid", "thread_name", "events"}``) so the merged document keeps one
    track per OS thread; event timestamps are on the *local* clock, and
    ``clock_offset_ns`` (filled in by the collector, zero for the local
    process) maps them onto the collector's timeline.  ``metrics`` is a
    mergeable :meth:`~repro.obs.metrics.MetricsRegistry.dump`.  Everything
    is picklable.
    """

    space: int
    clock_ns: int
    rings: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    wall_t0: float = 0.0
    overwritten: int = 0
    clock_offset_ns: int = 0


def snapshot_local(
    space: int = -1,
    registry: _metrics.MetricsRegistry | None = None,
    recorder: _events.Recorder | None = None,
) -> ProcessTelemetry:
    """Snapshot this process's recorder rings and metrics registry.

    Works with tracing disarmed (``recorder`` None): the registry half of
    the telemetry plane — counters feed unconditionally — still ships, and
    ``rings`` comes back empty.
    """
    if registry is None:
        registry = _metrics.REGISTRY
    if recorder is None:
        recorder = _events.recorder
    if recorder is None:
        return ProcessTelemetry(
            space=space,
            clock_ns=time.perf_counter_ns(),
            metrics=registry.dump(),
        )
    rings = [
        {"tid": ring.tid, "thread_name": ring.thread_name,
         "events": ring.events()}
        for ring in recorder.rings()
    ]
    return ProcessTelemetry(
        space=space,
        clock_ns=recorder.clock(),
        rings=rings,
        metrics=registry.dump(),
        wall_t0=recorder.wall_t0,
        overwritten=recorder.overwritten(),
    )


@dataclass
class ClusterTelemetry:
    """Telemetry harvested from every process of a cluster run."""

    processes: list[ProcessTelemetry] = field(default_factory=list)

    def spaces(self) -> list[int]:
        return sorted(p.space for p in self.processes)

    # ------------------------------------------------------------------
    # clock alignment
    # ------------------------------------------------------------------
    def clock_offsets(self) -> dict[int, int]:
        """Per-space clock offsets, causally refined from the flow pairs.

        The probe-based ``clock_offset_ns`` estimates carry an error of up
        to half the probe round trip — and a systematic bias, because the
        reply path includes the collector thread's wakeup latency while the
        request path does not.  But the harvest itself carries ground
        truth: every cross-process CLF flow pair is a happens-before edge,
        ``send_ts + off(sender) <= recv_ts + off(receiver)``.  This method
        relaxes the probe estimates against those difference constraints
        (clamping each space into its feasible interval, Gauss–Seidel
        style, with the lowest space as the fixed reference) so the merged
        timeline never shows a message arriving before it was sent.
        """
        offsets = {p.space: p.clock_offset_ns for p in self.processes}
        sends: dict[str, tuple[int, int]] = {}
        recvs: dict[str, tuple[int, int]] = {}
        for proc in self.processes:
            for ring in proc.rings:
                for ev in ring["events"]:
                    ph, cat, name, ts_ns, _dur, _pid, args = ev
                    if ph != "i" or cat != "clf" or not args:
                        continue
                    flow = args.get("flow")
                    if flow is None:
                        continue
                    if name == "clf.send":
                        sends.setdefault(str(flow), (proc.space, ts_ns))
                    elif name == "clf.recv":
                        recvs.setdefault(str(flow), (proc.space, ts_ns))
        pairs = []
        for fid, (s_space, s_ts) in sends.items():
            hit = recvs.get(fid)
            if hit is None or hit[0] == s_space:
                continue
            pairs.append((s_space, s_ts, hit[0], hit[1]))
        if not pairs or not offsets:
            return offsets
        reference = min(offsets)
        for _ in range(4):
            moved = False
            for space in offsets:
                if space == reference:
                    continue
                lo: int | None = None  # from messages received by `space`
                hi: int | None = None  # from messages sent by `space`
                for s_space, s_ts, r_space, r_ts in pairs:
                    if s_space == space and r_space in offsets:
                        bound = r_ts + offsets[r_space] - s_ts
                        hi = bound if hi is None else min(hi, bound)
                    elif r_space == space and s_space in offsets:
                        bound = s_ts + offsets[s_space] - r_ts
                        lo = bound if lo is None else max(lo, bound)
                new = off = offsets[space]
                if lo is not None and hi is not None and lo > hi:
                    new = (lo + hi) // 2  # inconsistent: split the difference
                elif hi is not None and off > hi:
                    new = hi
                elif lo is not None and off < lo:
                    new = lo
                if new != off:
                    offsets[space] = new
                    moved = True
            if not moved:
                break
        return offsets

    # ------------------------------------------------------------------
    # merged trace
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """One Chrome ``trace_event`` doc spanning every harvested process.

        Child timestamps are shifted by their (causally refined, see
        :meth:`clock_offsets`) clock offsets onto the collector clock; the
        merged origin is the earliest mapped event, so exported ``ts``
        stay non-negative.  CLF send/recv instants that crossed process
        boundaries get flow arrows — the cross-process stitch the
        single-process exporter cannot draw.
        """
        overwritten = sum(p.overwritten for p in self.processes)
        offsets = self.clock_offsets()
        wall_t0s = [
            p.wall_t0 - offsets[p.space] / 1e9
            for p in self.processes if p.wall_t0
        ]
        # Pass 1: the merged origin, so exported ts stay non-negative.
        origin: int | None = None
        for proc in self.processes:
            for ring in proc.rings:
                for ev in ring["events"]:
                    ts = ev[3] + offsets[proc.space]
                    if origin is None or ts < origin:
                        origin = ts
        trace_events: list[dict] = []
        seen_tracks: set[tuple[int, int]] = set()
        thread_names: dict[tuple[int, int], str] = {}
        for proc in self.processes:
            default_pid = proc.space if proc.space >= 0 else 0
            for ring in proc.rings:
                tid = ring["tid"]
                for ev in ring["events"]:
                    ph, cat, name, ts_ns, dur_ns, pid, args = ev
                    if pid < 0:
                        pid = default_pid
                    seen_tracks.add((pid, tid))
                    thread_names.setdefault((pid, tid), ring["thread_name"])
                    out = {
                        "name": name,
                        "cat": cat,
                        "ph": ph,
                        "ts": (ts_ns + offsets[proc.space] - origin) / 1000.0,
                        "pid": pid,
                        "tid": tid,
                    }
                    if ph == "X":
                        out["dur"] = dur_ns / 1000.0
                        cname = _cname(cat, name)
                        if cname is not None:
                            out["cname"] = cname
                    elif ph == "i":
                        out["s"] = "t"
                    if args:
                        out["args"] = dict(args)
                    trace_events.append(out)
        add_flow_events(trace_events)
        trace_events.sort(key=lambda ev: ev["ts"])
        meta: list[dict] = []
        for pid in sorted({pid for pid, _tid in seen_tracks}):
            meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"address space {pid}"},
            })
        for (pid, tid), tname in sorted(thread_names.items()):
            meta.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
        return {
            "traceEvents": meta + trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.collect",
                "processes": len(self.processes),
                "wall_t0": min(wall_t0s) if wall_t0s else None,
                "overwritten_events": overwritten,
            },
        }

    def write_chrome_trace(self, path: str | os.PathLike) -> dict:
        doc = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1, default=str)
        return doc

    # ------------------------------------------------------------------
    # merged metrics
    # ------------------------------------------------------------------
    def metrics_dump(self) -> dict:
        """One mergeable dump pooling every process, ``space``-labelled.

        Series that do not already carry a ``space`` label (per-channel STM
        latency, GC timings) gain one naming the harvested process, so
        per-space distributions stay distinguishable after the merge;
        series that do (wire-byte counters) pass through unchanged.
        """
        labelled: list[dict] = []
        for proc in self.processes:
            relabelled: dict[str, list] = {}
            for name, entries in proc.metrics.items():
                out_entries = []
                for entry in entries:
                    labels = dict(entry["labels"])
                    if "space" not in labels and proc.space >= 0:
                        labels["space"] = proc.space
                    out_entries.append({**entry, "labels": labels})
                relabelled[name] = out_entries
            labelled.append(relabelled)
        return merge_dumps(labelled)

    def metrics_snapshot(self) -> dict:
        """The merged metrics in the human ``snapshot()`` shape."""
        return dump_as_snapshot(self.metrics_dump())
