"""The metrics registry: counters, gauges, and fixed-bucket histograms.

This module supersedes the ad-hoc counter scattering the runtime grew over
time: :func:`repro.runtime.stats.cluster_report` and the benchmark harness
are now views over one :class:`MetricsRegistry` (the process-wide default is
:data:`REGISTRY`).  Metrics are keyed by name plus free-form labels
(``channel=...``, ``space=...``, ``connection=...``), so per-channel latency
distributions — the thing that separates STM protocol behaviours, per the
Synchrobench comparison (PAPERS.md) — fall out of the same instrumentation
points the tracer uses.

Histograms use fixed log-spaced buckets (a 1-2-5 series) so a million-sample
run costs O(#buckets) memory and percentile estimates (p50/p95/p99) are
computed by linear interpolation inside the bucket — accurate to the bucket
resolution, which is what latency reporting needs.

The streaming-statistics helpers (:class:`OnlineStats`, :func:`percentile`,
:func:`summarize`) moved here from ``repro.util.stats``; the deprecation
shim that bridged the move has since been removed.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "OnlineStats",
    "percentile",
    "summarize",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_SECONDS_BUCKETS",
    "merge_dumps",
    "dump_as_snapshot",
]


# ======================================================================
# streaming statistics (canonical home)
# ======================================================================
def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``q`` in [0, 100]).

    Mirrors ``numpy.percentile(..., method="linear")`` but avoids pulling
    numpy into the hot measurement path for tiny sample sets.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass
class OnlineStats:
    """Welford online accumulator with optional sample retention.

    Parameters
    ----------
    keep_samples:
        When true, raw samples are retained so percentiles can be computed.
    """

    keep_samples: bool = False
    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    samples: list[float] = field(default_factory=list)

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if self.keep_samples:
            self.samples.append(x)

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected); 0.0 for fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def pctl(self, q: float) -> float:
        if not self.keep_samples:
            raise ValueError("OnlineStats was created with keep_samples=False")
        return percentile(self.samples, q)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator combining both (Chan parallel merge)."""
        merged = OnlineStats(keep_samples=self.keep_samples and other.keep_samples)
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        if merged.keep_samples:
            merged.samples = self.samples + other.samples
        return merged

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


def summarize(samples) -> OnlineStats:
    """Build an :class:`OnlineStats` (with retained samples) from an iterable."""
    stats = OnlineStats(keep_samples=True)
    stats.extend(samples)
    return stats


# ======================================================================
# registry metrics
# ======================================================================
def _bucket_series(lo: float, hi: float) -> list[float]:
    """A 1-2-5 log series of bucket upper bounds covering [lo, hi]."""
    out: list[float] = []
    decade = 10.0 ** math.floor(math.log10(lo))
    while decade <= hi:
        for mult in (1.0, 2.0, 5.0):
            bound = decade * mult
            if lo <= bound <= hi:
                out.append(bound)
        decade *= 10.0
    return out


#: Default latency buckets: 1 µs to 10 s, in nanoseconds (1-2-5 series).
DEFAULT_LATENCY_BUCKETS_NS: tuple[float, ...] = tuple(_bucket_series(1e3, 1e10))

#: Duration buckets for slow-path timings kept in seconds (e.g. GC epochs).
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = tuple(_bucket_series(1e-6, 1e2))


class Counter:
    """A monotonically increasing count (ops, bytes, packets, ...)."""

    __slots__ = ("name", "labels", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def as_dict(self) -> dict:
        return {"value": self._value}

    def dump(self) -> dict:
        """Complete, mergeable state (see :func:`merge_dumps`)."""
        return {"value": self._value}

    def merge(self, other: "Counter") -> "Counter":
        """A new counter carrying both counts (cross-process aggregation)."""
        merged = Counter(self.name, self.labels)
        merged._value = self._value + other._value
        return merged


class Gauge:
    """A value that goes up and down (occupancy, virtual time, lag)."""

    __slots__ = ("name", "labels", "_value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...] = ()):
        self.name = name
        self.labels = labels
        self._value: float | int | None = None
        self._lock = threading.Lock()

    def set(self, value: float | int) -> None:
        self._value = value

    def inc(self, n: float | int = 1) -> None:
        with self._lock:
            self._value = (self._value or 0) + n

    @property
    def value(self) -> float | int | None:
        return self._value

    def as_dict(self) -> dict:
        return {"value": self._value}

    def dump(self) -> dict:
        return {"value": self._value}

    def merge(self, other: "Gauge") -> "Gauge":
        """A new gauge; the other side's sample wins when it has one.

        Gauges are point-in-time readings, so "merge" can only pick one —
        harvest order puts the most recently snapshotted process last, and
        that reading is the freshest available.
        """
        merged = Gauge(self.name, self.labels)
        merged._value = other._value if other._value is not None else self._value
        return merged


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimates.

    ``buckets`` are the upper bounds of the finite buckets (sorted); one
    overflow bucket catches everything above the last bound.  Exact min,
    max, count, and sum are tracked alongside, so ``percentile`` clamps its
    interpolation to the observed range (a single sample reports itself,
    not its bucket's midpoint).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum",
                 "min", "max", "_lock")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, object], ...] = (),
        buckets: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.labels = labels
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS_NS
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile by interpolating inside the bucket."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError("percentile of an empty histogram")
        rank = (q / 100.0) * self.count
        cumulative = 0
        for idx, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.buckets[idx - 1] if idx > 0 else self.min
                hi = self.buckets[idx] if idx < len(self.buckets) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * frac
            cumulative += n
        return self.max  # pragma: no cover - rank <= count always hits above

    def as_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def dump(self) -> dict:
        """Complete, mergeable state: bucket bounds *and* per-bucket counts.

        ``as_dict`` is the human stats view (percentiles only); merging
        histograms across processes needs the raw bucket occupancy, which
        is what the telemetry harvest ships.
        """
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dump(
        cls,
        entry: dict,
        name: str = "",
        labels: tuple[tuple[str, object], ...] = (),
    ) -> "Histogram":
        """Reconstruct a histogram from :meth:`dump` output (no locking state)."""
        hist = cls(name, labels, buckets=tuple(entry["buckets"]))
        hist.counts = list(entry["bucket_counts"])
        hist.count = entry["count"]
        hist.sum = entry["sum"]
        hist.min = entry["min"] if entry.get("min") is not None else math.inf
        hist.max = entry["max"] if entry.get("max") is not None else -math.inf
        return hist

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram pooling both sides' samples (exact, not approximate).

        Fixed-bucket histograms over the *same* bounds merge losslessly:
        per-bucket counts, count, sum, min, and max all add/extremize
        exactly, so percentile estimates of the merged histogram equal the
        estimates a single histogram fed the pooled sample stream would
        give.  Mismatched bucket bounds raise — resolution cannot be
        invented after the fact.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{len(self.buckets)} vs {len(other.buckets)} bounds"
            )
        merged = Histogram(self.name, self.labels, buckets=self.buckets)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts,
                                               strict=True)]
        merged.count = self.count + other.count
        merged.sum = self.sum + other.sum
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged


class MetricsRegistry:
    """Get-or-create registry of metrics keyed by (name, labels)."""

    def __init__(self):
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = self._key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} {labels!r} already registered as "
                    f"{metric.kind}, requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def find(self, name: str, **labels):
        """The metric registered under (name, labels), or None."""
        with self._lock:
            return self._metrics.get(self._key(name, labels))

    def collect(self, name: str | None = None) -> list:
        """All metrics (optionally filtered by name), creation-ordered."""
        with self._lock:
            return [
                m for m in self._metrics.values()
                if name is None or m.name == name
            ]

    def snapshot(self) -> dict:
        """JSON-ready dump: name -> list of {labels, kind, ...stats}."""
        out: dict[str, list] = {}
        for metric in self.collect():
            out.setdefault(metric.name, []).append(
                {"labels": dict(metric.labels), "kind": metric.kind,
                 **metric.as_dict()}
            )
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def dump(self) -> dict:
        """Mergeable dump: name -> list of {labels, kind, ...full state}.

        Same outer shape as :meth:`snapshot`, but each entry carries the
        *complete* metric state (raw bucket counts, not percentiles), so
        dumps harvested from different processes can be pooled with
        :func:`merge_dumps` and only then rendered with
        :func:`dump_as_snapshot`.  Everything inside is picklable and
        JSON-ready.
        """
        out: dict[str, list] = {}
        for metric in self.collect():
            out.setdefault(metric.name, []).append(
                {"labels": dict(metric.labels), "kind": metric.kind,
                 **metric.dump()}
            )
        return out


def _merge_dump_entries(kind: str, a: dict, b: dict) -> dict:
    """Merge two same-kind dump entries (labels already known equal)."""
    if kind == "counter":
        return {**a, "value": a["value"] + b["value"]}
    if kind == "gauge":
        return {**a, "value": b["value"] if b["value"] is not None
                else a["value"]}
    if kind == "histogram":
        merged = Histogram.from_dump(a).merge(Histogram.from_dump(b))
        return {"labels": a["labels"], "kind": kind, **merged.dump()}
    raise ValueError(f"unknown metric kind {kind!r}")


def merge_dumps(dumps: list[dict]) -> dict:
    """Pool several :meth:`MetricsRegistry.dump` documents into one.

    Entries sharing (name, labels, kind) are combined — counters add,
    gauges keep the last non-None reading, histograms merge their bucket
    counts exactly.  Entries unique to one dump pass through unchanged.
    The result is itself a valid dump (mergeable again, renderable with
    :func:`dump_as_snapshot`).
    """
    merged: dict[str, dict[tuple, dict]] = {}
    for dump in dumps:
        for name, entries in dump.items():
            per_name = merged.setdefault(name, {})
            for entry in entries:
                key = (tuple(sorted(entry["labels"].items())), entry["kind"])
                prior = per_name.get(key)
                if prior is None:
                    per_name[key] = dict(entry)
                else:
                    per_name[key] = _merge_dump_entries(
                        entry["kind"], prior, entry)
    return {name: list(per_name.values())
            for name, per_name in merged.items()}


def dump_as_snapshot(dump: dict) -> dict:
    """Render a dump in the human :meth:`MetricsRegistry.snapshot` shape.

    Histogram entries are reconstructed so p50/p95/p99 come from the
    (possibly merged) bucket counts, exactly as a live registry would
    report them.
    """
    out: dict[str, list] = {}
    for name, entries in dump.items():
        for entry in entries:
            if entry["kind"] == "histogram":
                stats = Histogram.from_dump(entry, name=name).as_dict()
            else:
                stats = {"value": entry["value"]}
            out.setdefault(name, []).append(
                {"labels": entry["labels"], "kind": entry["kind"], **stats}
            )
    return out


#: The process-wide default registry (instrumentation points feed this one).
REGISTRY = MetricsRegistry()
