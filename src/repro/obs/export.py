"""Exporters: Chrome ``trace_event`` JSON, lag reports, and text dumps.

The Chrome export follows the `trace_event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
and loads directly in Perfetto or ``chrome://tracing``: one process ("pid")
per STM address space, one track ("tid") per OS thread, complete spans
("X") for put/get/consume/block/GC work colored by operation, instants
("i") for wakeups and CLF packets, and counter tracks ("C") for per-thread
virtual time.

The **space-time lag report** is the paper-§8 view: how each thread's
virtual time advances against the wall clock.  A digitizer pacing at 30
fps should tick its virtual time at 30 Hz; the report shows the measured
rate and — given the intended rate — how far behind real time the thread
ended.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from repro.obs.events import Recorder, TraceEvent
from repro.obs.metrics import percentile

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "add_flow_events",
    "validate_chrome_trace",
    "lag_report",
    "lag_report_from_doc",
    "render_lag_report",
    "summarize_trace",
    "render_trace_summary",
]

#: Stable Chrome reserved color names per operation, so put/get/consume/GC
#: spans are visually distinct without per-viewer configuration.
_CNAME_BY_NAME = {
    "put": "thread_state_running",
    "get": "rail_response",
    "consume": "thread_state_iowait",
    "block(put)": "thread_state_sleeping",
    "block(get)": "thread_state_sleeping",
    "wakeup": "rail_animation",
    "gc.epoch": "cq_build_running",
    "gc.scatter": "rail_load",
    "gc.collect": "cq_build_passed",
    "gc.apply": "cq_build_attempt_running",
}
_CNAME_BY_CAT = {
    "stm": "thread_state_runnable",
    "gc": "cq_build_running",
    "clf": "rail_idle",
}


def _cname(cat: str, name: str) -> str | None:
    return _CNAME_BY_NAME.get(name) or _CNAME_BY_CAT.get(cat)


def to_chrome_trace(recorder: Recorder) -> dict:
    """Render the recorder's events as a Chrome ``trace_event`` document."""
    t0 = recorder.t0_ns
    trace_events: list[dict] = []
    seen_tracks: set[tuple[int, int]] = set()
    thread_names: dict[int, str] = {}
    for ring in recorder.rings():
        thread_names[ring.tid] = ring.thread_name
        for ev in ring.events():
            ph, cat, name, ts_ns, dur_ns, pid, args = ev
            if pid < 0:
                pid = 0
            seen_tracks.add((pid, ring.tid))
            out: dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ph": ph,
                "ts": (ts_ns - t0) / 1000.0,
                "pid": pid,
                "tid": ring.tid,
            }
            if ph == "X":
                out["dur"] = dur_ns / 1000.0
                cname = _cname(cat, name)
                if cname is not None:
                    out["cname"] = cname
            elif ph == "i":
                out["s"] = "t"  # thread-scoped instant
            if args:
                out["args"] = dict(args)
            trace_events.append(out)
    add_flow_events(trace_events)
    trace_events.sort(key=lambda ev: ev["ts"])
    meta: list[dict] = []
    for pid in sorted({pid for pid, _ in seen_tracks}):
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"address space {pid}"},
        })
    for pid, tid in sorted(seen_tracks):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": thread_names.get(tid, f"thread-{tid}")},
        })
    return {
        "traceEvents": meta + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "wall_t0": recorder.wall_t0,
            "overwritten_events": recorder.overwritten(),
        },
    }


def add_flow_events(trace_events: list[dict]) -> int:
    """Stitch ``clf.send``/``clf.recv`` pairs with Chrome flow arrows.

    CLF endpoints stamp both sides of every message with the same ``flow``
    id (the msgid in the thread runtime, ``"src>dst#seq"`` in the socket
    runtime).  For every id seen on exactly one send and one receive this
    appends a flow-start (``ph: "s"``) at the send instant and a binding
    flow-finish (``ph: "f"``, ``bp: "e"``) at the receive — Perfetto then
    draws the arrow across thread (and, in a merged cluster doc, process)
    tracks.  Returns the number of flows stitched; unmatched ids (message
    still in flight at harvest) are skipped, never half-drawn.
    """
    sends: dict[str, dict] = {}
    recvs: dict[str, dict] = {}
    for ev in trace_events:
        if ev.get("ph") != "i" or ev.get("cat") != "clf":
            continue
        flow = (ev.get("args") or {}).get("flow")
        if flow is None:
            continue
        if ev.get("name") == "clf.send":
            sends.setdefault(str(flow), ev)
        elif ev.get("name") == "clf.recv":
            recvs.setdefault(str(flow), ev)
    stitched = 0
    for flow_id, send_ev in sends.items():
        recv_ev = recvs.get(flow_id)
        if recv_ev is None:
            continue
        common = {"name": "clf.flow", "cat": "clf", "id": flow_id}
        trace_events.append({
            **common, "ph": "s", "ts": send_ev["ts"],
            "pid": send_ev["pid"], "tid": send_ev["tid"],
        })
        trace_events.append({
            **common, "ph": "f", "bp": "e", "ts": recv_ev["ts"],
            "pid": recv_ev["pid"], "tid": recv_ev["tid"],
        })
        stitched += 1
    return stitched


def write_chrome_trace(path: str | os.PathLike, recorder: Recorder) -> dict:
    """Export ``recorder`` to ``path`` as Chrome trace JSON; returns the doc."""
    doc = to_chrome_trace(recorder)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, default=str)
    return doc


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
_PHASES = {"X", "i", "C", "M", "B", "E", "s", "t", "f"}
_FLOW_PHASES = {"s", "t", "f"}
_META_NAMES = {"process_name", "thread_name", "process_labels",
               "process_sort_index", "thread_sort_index"}


def validate_chrome_trace(doc: Any) -> list[str]:
    """Check ``doc`` against the ``trace_event`` schema; [] means valid."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document must carry a 'traceEvents' array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: 'name' must be a string")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: 'pid' must be an integer")
        if ph == "M":
            if ev["name"] not in _META_NAMES:
                problems.append(f"{where}: unknown metadata {ev['name']!r}")
            args = ev.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: metadata needs an 'args' object")
            continue
        if not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: 'tid' must be an integer")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'dur' must be a non-negative number")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter needs a non-empty 'args'")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: counter args must be numeric")
        if ph in _FLOW_PHASES:
            if not isinstance(ev.get("id"), (str, int)):
                problems.append(f"{where}: flow event needs an 'id'")
            if ph == "f" and ev.get("bp") not in (None, "e"):
                problems.append(f"{where}: flow finish 'bp' must be 'e'")
    return problems


# ----------------------------------------------------------------------
# space-time lag report (paper §8)
# ----------------------------------------------------------------------
def lag_report(recorder: Recorder, fps: float | None = None) -> list[dict]:
    """Per-thread virtual-time progression vs. the wall clock.

    Scans the ``vt`` counter samples the runtime emits on every
    ``set_virtual_time`` call.  For each thread with at least one finite
    tick: the first/last virtual time, the wall-clock span between them,
    the measured tick rate, and — when the intended ``fps`` is given — the
    end-of-run lag in items and seconds (positive = behind real time).
    """
    series: dict[tuple[int, str], list[tuple[int, float]]] = {}
    for ring in recorder.rings():
        for ev in ring.events():
            ph, cat, _name, ts_ns, _dur, pid, args = ev
            if ph != "C" or cat != "vt" or not args:
                continue
            value = args.get("virtual_time")
            if value is None:
                continue
            series.setdefault((pid, ring.thread_name), []).append(
                (ts_ns, float(value))
            )
    report: list[dict] = []
    for (pid, thread_name), ticks in sorted(series.items()):
        ticks.sort(key=lambda t: t[0])
        (t_first, v_first), (t_last, v_last) = ticks[0], ticks[-1]
        wall_s = (t_last - t_first) / 1e9
        dvt = v_last - v_first
        entry = {
            "space": max(pid, 0),
            "thread": thread_name,
            "ticks": len(ticks),
            "first_vt": v_first,
            "last_vt": v_last,
            "wall_seconds": wall_s,
            "rate_hz": (dvt / wall_s) if wall_s > 0 else None,
        }
        if fps is not None and fps > 0:
            # items the wall clock "owes" the thread minus items delivered
            entry["lag_items"] = fps * wall_s - dvt
            entry["lag_seconds"] = wall_s - dvt / fps
        report.append(entry)
    return report


def lag_report_from_doc(doc: dict, fps: float | None = None) -> list[dict]:
    """:func:`lag_report`, reconstructed from an exported Chrome trace."""
    thread_names: dict[tuple[int, int], str] = {}
    series: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            thread_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]
        elif ph == "C" and ev.get("cat") == "vt":
            value = (ev.get("args") or {}).get("virtual_time")
            if value is None:
                continue
            key = (ev.get("pid", 0), ev.get("tid", 0))
            series.setdefault(key, []).append((float(ev["ts"]), float(value)))
    report: list[dict] = []
    for key, ticks in series.items():
        ticks.sort(key=lambda t: t[0])
        (t_first, v_first), (t_last, v_last) = ticks[0], ticks[-1]
        wall_s = (t_last - t_first) / 1e6  # exported ts are microseconds
        dvt = v_last - v_first
        entry = {
            "space": key[0],
            "thread": thread_names.get(key, f"thread-{key[1]}"),
            "ticks": len(ticks),
            "first_vt": v_first,
            "last_vt": v_last,
            "wall_seconds": wall_s,
            "rate_hz": (dvt / wall_s) if wall_s > 0 else None,
        }
        if fps is not None and fps > 0:
            entry["lag_items"] = fps * wall_s - dvt
            entry["lag_seconds"] = wall_s - dvt / fps
        report.append(entry)
    report.sort(key=lambda e: (e["space"], e["thread"]))
    return report


def render_lag_report(report: list[dict]) -> str:
    if not report:
        return "space-time lag: no virtual-time ticks recorded"
    lines = ["space-time lag (virtual time vs. wall clock)",
             "--------------------------------------------"]
    for entry in report:
        rate = entry["rate_hz"]
        rate_s = f"{rate:8.1f} Hz" if rate is not None else "    n/a   "
        line = (
            f"space {entry['space']} {entry['thread'][:24]:<24} "
            f"vt {entry['first_vt']:.0f} -> {entry['last_vt']:.0f} "
            f"over {entry['wall_seconds']:7.3f} s  ({rate_s}"
        )
        if "lag_seconds" in entry:
            line += f", lag {entry['lag_seconds']:+.3f} s"
        lines.append(line + ")")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace summaries (the text/JSON dump)
# ----------------------------------------------------------------------
def summarize_trace(doc: dict) -> dict:
    """Aggregate a Chrome trace doc: per-op span statistics, event counts."""
    spans: dict[str, list[float]] = {}
    instants: dict[str, int] = {}
    counters: dict[str, int] = {}
    n_tracks: set[tuple[int, int]] = set()
    flows = 0
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "M":
            continue
        n_tracks.add((ev.get("pid", 0), ev.get("tid", 0)))
        name = ev.get("name", "?")
        if ph == "X":
            spans.setdefault(name, []).append(float(ev.get("dur", 0.0)))
        elif ph == "i":
            instants[name] = instants.get(name, 0) + 1
        elif ph == "C":
            counters[name] = counters.get(name, 0) + 1
        elif ph == "s":
            flows += 1
    span_stats = {
        name: {
            "count": len(durs),
            "total_us": sum(durs),
            "mean_us": sum(durs) / len(durs),
            "p95_us": percentile(durs, 95),
            "max_us": max(durs),
        }
        for name, durs in sorted(spans.items())
    }
    return {
        "tracks": len(n_tracks),
        "spans": span_stats,
        "instants": dict(sorted(instants.items())),
        "counters": dict(sorted(counters.items())),
        "flows": flows,
    }


def render_trace_summary(summary: dict) -> str:
    lines = [f"trace summary: {summary['tracks']} thread tracks",
             "op spans (microseconds):"]
    for name, st in summary["spans"].items():
        lines.append(
            f"  {name:<14} x{st['count']:<6} mean {st['mean_us']:9.1f}  "
            f"p95 {st['p95_us']:9.1f}  max {st['max_us']:9.1f}  "
            f"total {st['total_us']:11.1f}"
        )
    if summary["instants"]:
        lines.append("instants:")
        for name, count in summary["instants"].items():
            lines.append(f"  {name:<14} x{count}")
    if summary["counters"]:
        lines.append("counter samples:")
        for name, count in summary["counters"].items():
            lines.append(f"  {name:<14} x{count}")
    if summary.get("flows"):
        lines.append(f"cross-track flows: {summary['flows']}")
    return "\n".join(lines)


def events_of(events: Iterable[TraceEvent], ph: str, cat: str | None = None):
    """Filter raw recorder events by phase (and optionally category)."""
    return [
        ev for ev in events if ev[0] == ph and (cat is None or ev[1] == cat)
    ]
