"""The event-tracing layer: thread-local ring buffers of structured events.

Design constraints (in priority order):

1. **Near-zero cost when off.**  Every instrumentation point in the runtime
   reads one module global (``events.recorder``) and tests it against
   ``None``; nothing else happens in the disabled path.  The overhead guard
   in ``tests/obs/test_overhead.py`` and the CI bench smoke keep this
   honest (<5% on the micro-op put/get cycle).
2. **No cross-thread contention when on.**  Each emitting thread writes to
   its own fixed-capacity ring buffer; the only lock is taken once per
   thread, at ring creation.  A full ring overwrites its oldest events and
   counts them (``Ring.overwritten``) — tracing never blocks the traced.
3. **Structured, exportable events.**  Events are plain tuples in the
   Chrome ``trace_event`` spirit: complete spans (``"X"``), instants
   (``"i"``), and counter samples (``"C"``), each carrying a category, a
   name, perf-counter nanoseconds, an address-space id (the trace "pid"),
   and a small args dict.  :mod:`repro.obs.export` turns them into
   Perfetto-loadable JSON, lag reports, and text dumps.

Arming: set ``STMOBS=1`` in the environment (read at import, like
``STMSAN``), call :func:`enable`/:func:`disable`, or use the :func:`trace`
context manager, which also writes the Chrome trace on exit::

    from repro.obs import trace
    with trace("out.json"):
        run_pipeline(cluster)
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "TraceEvent",
    "Ring",
    "Recorder",
    "recorder",
    "get_recorder",
    "armed",
    "enable",
    "disable",
    "trace",
    "DEFAULT_CAPACITY",
]

#: A recorded event: (phase, category, name, ts_ns, dur_ns, pid, args).
#: ``phase`` is "X" (complete span), "i" (instant), or "C" (counter sample);
#: ``ts_ns``/``dur_ns`` are perf-counter nanoseconds; ``pid`` is the address
#: space id (or -1 when unknown); ``args`` is a small dict or None.
TraceEvent = tuple

#: Events retained per thread before the ring wraps.
DEFAULT_CAPACITY = 1 << 16


class Ring:
    """Fixed-capacity per-thread event buffer (oldest overwritten first)."""

    __slots__ = ("capacity", "tid", "thread_name", "_buf", "_next",
                 "overwritten")

    def __init__(self, capacity: int, tid: int, thread_name: str):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.tid = tid
        self.thread_name = thread_name
        self._buf: list[TraceEvent] = []
        self._next = 0
        self.overwritten = 0

    def append(self, event: TraceEvent) -> None:
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
        else:
            buf[self._next] = event
            self._next += 1
            if self._next == self.capacity:
                self._next = 0
            self.overwritten += 1

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> list[TraceEvent]:
        """Buffered events in emission order."""
        if len(self._buf) < self.capacity or self._next == 0:
            return list(self._buf)
        return self._buf[self._next:] + self._buf[: self._next]


class Recorder:
    """Collects events from all threads into per-thread rings.

    ``clock`` returns nanoseconds (``time.perf_counter_ns`` by default);
    tests inject a deterministic counter to produce golden traces.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], int] = time.perf_counter_ns,
    ):
        self.capacity = capacity
        self.clock = clock
        #: perf-counter origin: exported timestamps are relative to this.
        self.t0_ns = clock()
        #: wall-clock epoch seconds at the origin (for human-readable dumps).
        self.wall_t0 = time.time()
        self._tls = threading.local()
        self._rings: list[Ring] = []
        self._lock = threading.Lock()

    # -- hot path -----------------------------------------------------------
    def _ring(self) -> Ring:
        ring = getattr(self._tls, "ring", None)
        if ring is None:
            os_thread = threading.current_thread()
            ring = Ring(self.capacity, os_thread.ident or 0, os_thread.name)
            with self._lock:
                self._rings.append(ring)
            self._tls.ring = ring
        return ring

    def now(self) -> int:
        """Nanosecond timestamp for a span start (pair with :meth:`complete`)."""
        return self.clock()

    def complete(self, cat: str, name: str, t0_ns: int, pid: int = -1,
                 **args: Any) -> int:
        """Record a complete span started at ``t0_ns``; returns its ns duration."""
        dur = self.clock() - t0_ns
        self._ring().append(("X", cat, name, t0_ns, dur, pid, args or None))
        return dur

    def instant(self, cat: str, name: str, pid: int = -1, **args: Any) -> None:
        self._ring().append(
            ("i", cat, name, self.clock(), 0, pid, args or None)
        )

    def counter(self, cat: str, name: str, value: float, pid: int = -1,
                series: str = "value") -> None:
        """Record one sample of a per-thread counter track."""
        self._ring().append(
            ("C", cat, name, self.clock(), 0, pid, {series: value})
        )

    # -- inspection ---------------------------------------------------------
    def rings(self) -> list[Ring]:
        with self._lock:
            return list(self._rings)

    def events(self) -> list[TraceEvent]:
        """All buffered events, globally ordered by timestamp."""
        merged: list[TraceEvent] = []
        for ring in self.rings():
            merged.extend(ring.events())
        merged.sort(key=lambda ev: ev[3])
        return merged

    def spans(self, name: str | None = None, cat: str | None = None) -> list:
        return [
            ev for ev in self.events()
            if ev[0] == "X"
            and (name is None or ev[2] == name)
            and (cat is None or ev[1] == cat)
        ]

    def overwritten(self) -> int:
        return sum(ring.overwritten for ring in self.rings())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Recorder {len(self.rings())} threads, "
            f"{sum(len(r) for r in self.rings())} events>"
        )


#: The armed recorder, or None when tracing is off.  Instrumentation points
#: read this exact global: ``rec = events.recorder`` / ``if rec is not None``.
recorder: Recorder | None = None

_arm_lock = threading.Lock()


def armed() -> bool:
    return recorder is not None


def get_recorder() -> Recorder | None:
    """The currently armed recorder (None when tracing is off)."""
    return recorder


def enable(
    capacity: int = DEFAULT_CAPACITY,
    clock: Callable[[], int] = time.perf_counter_ns,
) -> Recorder:
    """Arm tracing; returns the (new or already-armed) recorder."""
    global recorder
    with _arm_lock:
        if recorder is None:
            recorder = Recorder(capacity=capacity, clock=clock)
        return recorder


def disable() -> Recorder | None:
    """Disarm tracing; returns the recorder so its events can be exported."""
    global recorder
    with _arm_lock:
        rec, recorder = recorder, None
        return rec


@contextmanager
def trace(
    path: str | os.PathLike | None = None,
    capacity: int = DEFAULT_CAPACITY,
) -> Iterator[Recorder]:
    """Arm tracing for a block; write a Chrome trace to ``path`` on exit.

    Yields the recorder, which stays readable after the block (e.g. to
    build a lag report from the same run).  Nested use shares the outer
    recorder and leaves it armed.
    """
    nested = recorder is not None
    rec = enable(capacity=capacity)
    try:
        yield rec
    finally:
        if not nested:
            disable()
        if path is not None:
            from repro.obs.export import write_chrome_trace

            write_chrome_trace(path, rec)


def _env_armed(value: str | None) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no", "off")


if _env_armed(os.environ.get("STMOBS")):  # pragma: no cover - env-dependent
    enable()
