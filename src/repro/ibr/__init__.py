"""Image-based rendering: the second Stampede application (paper §5)."""

from repro.ibr.pipeline import IbrConfig, IbrResult, run_ibr
from repro.ibr.renderer import ViewSynthesizer, psnr, render_view

__all__ = ["IbrConfig", "IbrResult", "ViewSynthesizer", "psnr", "render_view", "run_ibr"]
