"""Image-based rendering: view synthesis from reference images.

The paper names image-based rendering as the second application built on
Stampede (§5, §8.1, refs [10, 18]).  The CRL system synthesized novel views
of a scene from a set of captured reference images; we reproduce the
computational structure with a synthetic light-field:

* a procedural "scene" rendered from any camera angle (:func:`render_view`),
  standing in for the capture rig;
* a sparse set of **reference views** at known angles;
* :class:`ViewSynthesizer`, which renders a novel angle by warping and
  blending the two nearest reference views — the classic view-interpolation
  kernel, dominated by per-pixel resampling exactly like the original.

Rendering quality is measured as PSNR against the directly rendered ground
truth, so tests can assert that interpolation beats nearest-reference
snapping and degrades gracefully with reference spacing.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["render_view", "psnr", "ViewSynthesizer"]

_VIEW_SIZE = 128


def _scene_texture(seed: int = 7, size: int = 256) -> np.ndarray:
    """Procedural scene texture: smooth blobs + gradient, deterministic."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    img = 40.0 + 30.0 * np.sin(xx / 17.0) + 25.0 * np.cos(yy / 23.0)
    for _ in range(12):
        cx, cy = rng.uniform(0, size, 2)
        r = rng.uniform(8, 40)
        amp = rng.uniform(30, 90)
        img += amp * np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * r * r))
    img -= img.min()
    img *= 255.0 / max(img.max(), 1e-9)
    return img


_TEXTURE = _scene_texture()


def render_view(angle_deg: float, size: int = _VIEW_SIZE) -> np.ndarray:
    """Render the scene from camera ``angle_deg`` (grayscale uint8).

    The "camera" rotates about the texture centre and shifts with parallax
    proportional to the angle — enough geometric structure that blending
    two nearby views approximates an intermediate one, while distant views
    do not.
    """
    tex = _TEXTURE
    th, tw = tex.shape
    theta = math.radians(angle_deg)
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    cy, cx = (th - 1) / 2.0, (tw - 1) / 2.0
    parallax = angle_deg * 0.8
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    # Normalize view coords to texture space around the centre.
    u = (xx - size / 2.0) * (tw / size / 1.6)
    v = (yy - size / 2.0) * (th / size / 1.6)
    sx = cos_t * u - sin_t * v + cx + parallax
    sy = sin_t * u + cos_t * v + cy
    sxi = np.clip(np.round(sx).astype(np.int64), 0, tw - 1)
    syi = np.clip(np.round(sy).astype(np.int64), 0, th - 1)
    return tex[syi, sxi].astype(np.uint8)


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two uint8 images (dB)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    mse = float(np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2))
    if mse == 0:
        return math.inf
    return 10.0 * math.log10(255.0 * 255.0 / mse)


class ViewSynthesizer:
    """Synthesize novel views from a sparse set of reference views.

    Parameters
    ----------
    reference_angles:
        Camera angles (degrees) at which reference views are captured.
    size:
        Output resolution (square).
    """

    def __init__(self, reference_angles: list[float], size: int = _VIEW_SIZE):
        if len(reference_angles) < 2:
            raise ValueError("need at least two reference views")
        self.angles = sorted(float(a) for a in reference_angles)
        self.size = size
        self.references = {a: render_view(a, size) for a in self.angles}
        self.views_synthesized = 0

    def nearest_references(self, angle: float) -> tuple[float, float]:
        """The two reference angles bracketing ``angle`` (clamped at ends)."""
        if angle <= self.angles[0]:
            return self.angles[0], self.angles[1]
        if angle >= self.angles[-1]:
            return self.angles[-2], self.angles[-1]
        for lo, hi in zip(self.angles, self.angles[1:], strict=False):
            if lo <= angle <= hi:
                return lo, hi
        raise AssertionError("unreachable")  # pragma: no cover

    def synthesize(self, angle: float) -> np.ndarray:
        """Blend the bracketing reference views with parallax correction."""
        lo, hi = self.nearest_references(angle)
        span = hi - lo
        w_hi = 0.0 if span == 0 else (angle - lo) / span
        w_hi = min(max(w_hi, 0.0), 1.0)
        img_lo = self._shift(self.references[lo], (angle - lo) * 0.8)
        img_hi = self._shift(self.references[hi], (angle - hi) * 0.8)
        blend = (1.0 - w_hi) * img_lo + w_hi * img_hi
        self.views_synthesized += 1
        return np.clip(np.round(blend), 0, 255).astype(np.uint8)

    @staticmethod
    def _shift(image: np.ndarray, dx: float) -> np.ndarray:
        """Horizontal parallax reprojection of a reference view."""
        shift = int(round(dx))
        if shift == 0:
            return image.astype(np.float64)
        out = np.empty_like(image, dtype=np.float64)
        if shift > 0:
            out[:, shift:] = image[:, :-shift]
            out[:, :shift] = image[:, :1]
        else:
            out[:, :shift] = image[:, -shift:]
            out[:, shift:] = image[:, -1:]
        return out

    def quality(self, angle: float) -> float:
        """PSNR of the synthesized view against direct rendering."""
        return psnr(self.synthesize(angle), render_view(angle, self.size))
