"""Image-based rendering on STM with *replicated worker threads* (§4.1).

This pipeline exercises the STM scenario the kiosk does not:

    "to increase throughput, a module may contain replicated threads that
    pull items from a common input channel, process them, and put items
    into a common output channel.  Depending on the relative speed of the
    threads ... items may be placed into the output channel out of order."

Structure:

* a **request thread** puts view requests (camera angles) into a request
  channel, timestamped by request id;
* ``n_workers`` **replicated renderers** share the request channel and the
  result channel.  Worker *i* handles the timestamps congruent to *i*
  modulo ``n_workers`` (specific-timestamp gets) and uses ``consume_until``
  to release the columns that belong to its siblings — the STM discipline
  for partitioned consumption that keeps GC advancing;
* a **display thread** reads results with ``STM_OLDEST``, observing that
  STM's timestamp indexing reassembles the out-of-order completions into
  the request order with no extra sequencing code.

Returns per-view PSNR against ground truth so tests can assert quality.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core import INFINITY, STM_OLDEST
from repro.ibr.renderer import ViewSynthesizer, psnr, render_view
from repro.runtime import Cluster, current_thread
from repro.stm import STM

__all__ = ["IbrConfig", "IbrResult", "run_ibr"]


@dataclass
class IbrConfig:
    n_requests: int = 24
    n_workers: int = 3
    reference_angles: tuple[float, ...] = (-10.0, -5.0, 0.0, 5.0, 10.0)
    #: angle swept by the requests across the run.
    sweep: tuple[float, float] = (-9.0, 9.0)
    view_size: int = 96
    #: address spaces for the stages.
    request_space: int = 0
    worker_space: int = 0
    display_space: int = 0


@dataclass
class IbrResult:
    views: dict[int, float] = field(default_factory=dict)  # ts -> psnr
    completion_order: list[int] = field(default_factory=list)
    per_worker: dict[int, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def out_of_order_completions(self) -> int:
        """How many results were produced out of request order."""
        return sum(
            1
            for earlier, later in zip(
                self.completion_order, self.completion_order[1:], strict=False
            )
            if later < earlier
        )

    @property
    def mean_psnr(self) -> float:
        vals = list(self.views.values())
        return sum(vals) / len(vals) if vals else 0.0


def run_ibr(cluster: Cluster, config: IbrConfig | None = None) -> IbrResult:
    """Run the IBR pipeline to completion; returns quality/order stats."""
    config = config or IbrConfig()
    result = IbrResult()
    lock = threading.Lock()
    n = config.n_requests
    lo, hi = config.sweep
    angles = [lo + (hi - lo) * i / max(n - 1, 1) for i in range(n)]

    space0 = cluster.space(config.request_space)
    creator = space0.adopt_current_thread(virtual_time=0)
    stm0 = STM(space0)
    requests_chan = stm0.create_channel("ibr.requests", home=config.request_space)
    results_chan = stm0.create_channel("ibr.results", home=config.display_space)

    def requester() -> None:
        me = current_thread()
        out = STM(cluster.space(config.request_space)).lookup("ibr.requests").attach_output()
        for ts, angle in enumerate(angles):
            me.set_virtual_time(ts)
            out.put(ts, angle)
        me.set_virtual_time(n)
        out.put(n, None)  # end-of-stream for every worker's final consume
        out.detach()
        me.set_virtual_time(INFINITY)

    def worker(index: int) -> None:
        me = current_thread()
        stm = STM(cluster.space(config.worker_space))
        inp = stm.lookup("ibr.requests").attach_input()
        out = stm.lookup("ibr.results").attach_output()
        me.set_virtual_time(INFINITY)
        synth = ViewSynthesizer(list(config.reference_angles), config.view_size)
        handled = 0
        # Partitioned consumption: this worker owns ts ≡ index (mod n_workers).
        for ts in range(index, n, config.n_workers):
            item = inp.get(ts)  # blocks until the request arrives
            view = synth.synthesize(item.value)
            quality = psnr(view, render_view(item.value, config.view_size))
            out.put(ts, (item.value, quality))
            # Release every column up to ts — including siblings' columns,
            # which this connection will never read (§4.2 consume-until).
            inp.consume_until(ts)
            handled += 1
            with lock:
                result.completion_order.append(ts)
                result.views[ts] = quality
        inp.consume_until(n)  # also release the sentinel column
        inp.detach()
        out.detach()
        with lock:
            result.per_worker[index] = handled

    def display() -> None:
        stm = STM(cluster.space(config.display_space))
        inp = stm.lookup("ibr.results").attach_input()
        current_thread().set_virtual_time(INFINITY)
        # In-order reassembly of out-of-order completions: blocking
        # specific-timestamp gets — STM's timestamp indexing *is* the
        # resequencing buffer, no extra code needed.
        for ts in range(n):
            item = inp.get(ts)
            inp.consume(ts)
        inp.detach()

    start = time.monotonic()
    threads = [
        cluster.space(config.display_space).spawn(
            display, name="ibr-display", virtual_time=0),
        *[
            cluster.space(config.worker_space).spawn(
                worker, (i,), name=f"ibr-worker-{i}", virtual_time=0)
            for i in range(config.n_workers)
        ],
        cluster.space(config.request_space).spawn(
            requester, name="ibr-requester", virtual_time=0),
    ]
    creator.set_virtual_time(INFINITY)
    for thread in threads:
        thread.join(120.0)
    result.wall_seconds = time.monotonic() - start
    creator.exit()
    return result
