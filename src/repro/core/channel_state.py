"""The STM channel kernel: a pure, runtime-agnostic state machine.

This module implements the *semantics* of an STM channel (paper §4.1-4.2)
with no threads, locks, clocks, or I/O.  Every operation is synchronous and
total: it either succeeds, raises a semantic error, or reports
``Status.BLOCKED`` with a machine-readable reason.  The two runtimes
(:mod:`repro.runtime.thread_runtime` for real threads,
:mod:`repro.sim` for the discrete-event simulator) wrap the kernel with
their own waiting/wakeup machinery, so blocking behaviour is implemented
once per runtime while the semantics are implemented — and property-tested —
exactly once, here.

Concurrency contract: callers must serialize calls per kernel instance (the
thread runtime holds a per-channel lock; simulator tasks are non-preemptive).
In exchange, the paper's atomicity guarantee — puts and gets "appear to all
threads as if they occur in a particular serial order" (§4.1) — holds by
construction: the serial order is the order of kernel calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.flags import GetWildcard, UNKNOWN_REFCOUNT
from repro.core.item import InputConnState, ItemRecord, ItemState
from repro.core.time import INFINITY, VirtualTime, validate_timestamp, vt_min
from repro.errors import (
    AlreadyConsumedError,
    ChannelDestroyedError,
    ConnectionClosedError,
    DuplicateTimestampError,
    ItemGarbageCollectedError,
    NoSuchItemError,
    NotOpenError,
)
from repro.util.sortedmap import SortedIntMap

__all__ = [
    "Status",
    "BlockReason",
    "GetResult",
    "PutResult",
    "ChannelKernel",
    "set_reclaim_hook",
]

#: Optional observer called as ``hook(kernel, timestamp, record)`` whenever
#: the kernel reclaims an item (refcount zero, GC sweep, or destroy).  Used
#: by the STMSAN sanitizer to tombstone reclaimed payloads; None (the
#: default) costs one identity check per reclaim.
_reclaim_hook = None


def set_reclaim_hook(hook) -> None:
    """Install (or clear, with None) the item-reclaim observer."""
    global _reclaim_hook
    _reclaim_hook = hook


class Status(enum.Enum):
    """Outcome of a kernel put/get."""

    OK = "ok"
    BLOCKED = "blocked"


class BlockReason(enum.Enum):
    """Why a kernel operation could not complete right now.

    The runtimes use this to decide which event should retry the operation:
    a CHANNEL_FULL put retries after any item leaves the channel; a
    NO_MATCHING_ITEM get retries after any put.
    """

    CHANNEL_FULL = "channel_full"
    NO_MATCHING_ITEM = "no_matching_item"


@dataclass
class GetResult:
    status: Status
    payload: Any = None
    timestamp: int | None = None
    size: int = 0
    #: when the get misses a *specific* timestamp: the neighbouring available
    #: timestamps ``(prev, next)`` — the paper's ``timestamp_range``.
    timestamp_range: tuple[int | None, int | None] | None = None
    reason: BlockReason | None = None


@dataclass
class PutResult:
    status: Status
    reason: BlockReason | None = None


class ChannelKernel:
    """State of one STM channel: items plus per-input-connection views.

    Parameters
    ----------
    channel_id:
        System-wide unique id (allocated by the runtime's registry).
    capacity:
        Maximum number of items the channel holds simultaneously, or None
        for an unbounded channel (paper §4.1: "channels can be created to
        hold a bounded or unbounded number of items").
    """

    def __init__(self, channel_id: int, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"channel capacity must be >= 1, got {capacity}")
        self.channel_id = channel_id
        self.capacity = capacity
        self.items: SortedIntMap = SortedIntMap()
        self.inputs: dict[int, InputConnState] = {}
        self.outputs: set[int] = set()
        #: every timestamp < gc_horizon has been garbage collected.
        self.gc_horizon: int = 0
        self.destroyed = False
        #: monotone counter bumped on every state change that could unblock a
        #: waiter; runtimes compare it across waits to detect progress.
        self.version: int = 0
        # -- statistics (exposed through ChannelStats in the facade) --------
        self.total_puts = 0
        self.total_gets = 0
        self.total_consumes = 0
        self.total_collected = 0
        self.total_refcount_collected = 0
        self.bytes_put = 0
        self.bytes_got = 0
        #: running sum of stored item sizes (keeps stored_bytes() O(1)).
        self._stored_bytes = 0
        #: item visits made by unconsumed-min recomputation scans; stays flat
        #: across GC epochs while the per-connection min caches are warm.
        self.min_scan_steps = 0

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def attach_input(self, conn_id: int, visibility: VirtualTime) -> None:
        """Attach an input connection for a thread with the given visibility.

        Per §4.2: "When a thread creates a new input connection to a channel,
        it implicitly marks as consumed on that connection all items < its
        current visibility."  Items at or above the visibility remain UNSEEN
        and therefore pin the GC minimum until this connection consumes them.
        """
        self._check_alive()
        if conn_id in self.inputs or conn_id in self.outputs:
            raise ValueError(f"connection id {conn_id} already attached")
        state = InputConnState(conn_id=conn_id)
        if isinstance(visibility, int):
            state.consumed_below = max(visibility, self.gc_horizon)
        else:  # INFINITY visibility: everything currently conceivable is consumed
            latest = self.items.max_key()
            state.consumed_below = (latest + 1) if latest is not None else self.gc_horizon
        # Refcount accounting: the implicit consumption does NOT decrement
        # refcounts — declared counts refer to the consumers the producer
        # planned for, and an attach that skips items is not one of them.
        self.inputs[conn_id] = state
        self.version += 1

    def attach_output(self, conn_id: int) -> None:
        self._check_alive()
        if conn_id in self.inputs or conn_id in self.outputs:
            raise ValueError(f"connection id {conn_id} already attached")
        self.outputs.add(conn_id)
        self.version += 1

    def detach(self, conn_id: int) -> None:
        """Detach a connection.

        Detaching an input connection releases its claim on every unconsumed
        item (equivalent to consuming everything), which may advance the GC
        minimum — the runtime triggers a GC pass after detaches.
        """
        if conn_id in self.inputs:
            del self.inputs[conn_id]
        elif conn_id in self.outputs:
            self.outputs.discard(conn_id)
        else:
            raise ConnectionClosedError(
                f"connection {conn_id} is not attached to channel {self.channel_id}"
            )
        self.version += 1

    def has_connection(self, conn_id: int) -> bool:
        return conn_id in self.inputs or conn_id in self.outputs

    def _input(self, conn_id: int) -> InputConnState:
        try:
            return self.inputs[conn_id]
        except KeyError:
            raise ConnectionClosedError(
                f"connection {conn_id} is not an attached input connection "
                f"of channel {self.channel_id}"
            ) from None

    def _check_alive(self) -> None:
        if self.destroyed:
            raise ChannelDestroyedError(f"channel {self.channel_id} is destroyed")

    # ------------------------------------------------------------------
    # put
    # ------------------------------------------------------------------
    def put(
        self,
        conn_id: int,
        timestamp: int,
        payload: Any,
        size: int,
        refcount: int = UNKNOWN_REFCOUNT,
    ) -> PutResult:
        """Insert an item; Status.BLOCKED when a bounded channel is full.

        Out-of-order timestamps are allowed (§4.1: replicated worker threads
        may complete out of order); duplicate timestamps are not.
        """
        self._check_alive()
        if conn_id not in self.outputs:
            raise ConnectionClosedError(
                f"connection {conn_id} is not an attached output connection "
                f"of channel {self.channel_id}"
            )
        validate_timestamp(timestamp)
        if refcount != UNKNOWN_REFCOUNT and refcount < 0:
            raise ValueError(f"refcount must be >= 0 or UNKNOWN_REFCOUNT, got {refcount}")
        if timestamp < self.gc_horizon:
            raise ItemGarbageCollectedError(
                f"put of timestamp {timestamp} below GC horizon {self.gc_horizon} "
                f"on channel {self.channel_id} (visibility rules should make "
                f"this impossible; check virtual-time management)"
            )
        if timestamp in self.items:
            raise DuplicateTimestampError(
                f"channel {self.channel_id} already holds timestamp {timestamp}"
            )
        if self.capacity is not None and len(self.items) >= self.capacity:
            return PutResult(Status.BLOCKED, BlockReason.CHANNEL_FULL)
        record = ItemRecord(
            timestamp=timestamp,
            payload=payload,
            size=size,
            refcount=refcount,
            producer_conn=conn_id,
        )
        # A refcounted item with zero declared consumers is dead on arrival —
        # but putting it must still be legal (a producer may publish an item
        # purely for *future* connections when refcount is unknown; with a
        # declared count of 0 it is immediately collectable).
        if refcount == 0:
            self.total_puts += 1
            self.bytes_put += size
            self.total_refcount_collected += 1
            self.total_collected += 1
            self.version += 1
            return PutResult(Status.OK)
        self.items[timestamp] = record
        self.total_puts += 1
        self.bytes_put += size
        self._stored_bytes += size
        # A new item can only *lower* a connection's unconsumed minimum, so
        # the caches update in place — no invalidation, no rescan.
        for view in self.inputs.values():
            cache = view.min_cache
            if (
                cache is not None
                and (cache is INFINITY or timestamp < cache)
                and view.is_unconsumed(timestamp)
            ):
                view.min_cache = timestamp
        self.version += 1
        return PutResult(Status.OK)

    # ------------------------------------------------------------------
    # get
    # ------------------------------------------------------------------
    def get(self, conn_id: int, request: int | GetWildcard) -> GetResult:
        """Resolve a get request against this connection's view.

        Specific timestamps below the GC horizon or already consumed raise
        immediately (blocking would never succeed).  A missing specific
        timestamp *blocks* — it may still be put (§4.1 allows out-of-order
        production) — and the result carries the neighbouring available
        timestamps so a non-blocking caller can adapt.
        """
        self._check_alive()
        view = self._input(conn_id)
        if isinstance(request, GetWildcard):
            ts = self._resolve_wildcard(view, request)
            if ts is None:
                return GetResult(Status.BLOCKED, reason=BlockReason.NO_MATCHING_ITEM)
        else:
            ts = validate_timestamp(request)
            if ts < self.gc_horizon:
                raise ItemGarbageCollectedError(
                    f"timestamp {ts} on channel {self.channel_id} has been "
                    f"garbage collected (horizon {self.gc_horizon})",
                    timestamp_range=self._visible_neighbours(view, ts),
                )
            if view.is_consumed(ts):
                raise AlreadyConsumedError(
                    f"timestamp {ts} was already consumed on connection {conn_id}",
                    timestamp_range=self._visible_neighbours(view, ts),
                )
            if ts not in self.items:
                return GetResult(
                    Status.BLOCKED,
                    timestamp_range=self._visible_neighbours(view, ts),
                    reason=BlockReason.NO_MATCHING_ITEM,
                )
        record: ItemRecord = self.items[ts]
        view.note_get(ts)
        record.get_count += 1
        self.total_gets += 1
        self.bytes_got += record.size
        self.version += 1
        return GetResult(
            Status.OK, payload=record.payload, timestamp=ts, size=record.size
        )

    def _resolve_wildcard(self, view: InputConnState, wc: GetWildcard) -> int | None:
        """Greatest/least unconsumed timestamp matching the wildcard, or None."""
        if wc is GetWildcard.LATEST or wc is GetWildcard.LATEST_UNSEEN:
            floor = None
            if wc is GetWildcard.LATEST_UNSEEN and view.last_gotten is not None:
                floor = view.last_gotten
            # Scan downward from the newest item; consumed prefixes are dense
            # so the first unconsumed hit is nearly always the newest item.
            key = self.items.max_key()
            while key is not None:
                if floor is not None and key <= floor:
                    return None
                if view.is_unconsumed(key):
                    return key
                key = self.items.lower_key(key)
            return None
        if wc is GetWildcard.OLDEST or wc is GetWildcard.OLDEST_UNSEEN:
            # Everything below the consumption watermark is consumed; start there.
            key = self.items.ceil_key(view.consumed_below)
            while key is not None:
                if wc is GetWildcard.OLDEST_UNSEEN:
                    if view.state_of(key) is ItemState.UNSEEN:
                        return key
                elif view.is_unconsumed(key):
                    return key
                key = self.items.higher_key(key)
            return None
        raise TypeError(f"unknown wildcard {wc!r}")  # pragma: no cover

    def _visible_neighbours(
        self, view: InputConnState, ts: int
    ) -> tuple[int | None, int | None]:
        """Nearest unconsumed timestamps on either side of ``ts`` for ``view``."""
        lo = self.items.lower_key(ts)
        while lo is not None and view.is_consumed(lo):
            lo = self.items.lower_key(lo)
        hi = self.items.higher_key(ts)
        while hi is not None and view.is_consumed(hi):
            hi = self.items.higher_key(hi)
        return (lo, hi)

    # ------------------------------------------------------------------
    # consume
    # ------------------------------------------------------------------
    def consume(self, conn_id: int, timestamp: int, *, strict: bool = False) -> None:
        """Mark one timestamp consumed on this connection.

        ``strict=True`` additionally requires the item to be OPEN (the
        canonical get/use/consume discipline of Fig. 7); the default follows
        the paper in also allowing UNSEEN items to be consumed directly.
        Consuming an absent timestamp is permitted — the item may have been
        reclaimed already, or may never be put; the marking is what matters
        for GC progress.
        """
        self._check_alive()
        view = self._input(conn_id)
        validate_timestamp(timestamp)
        state = view.state_of(timestamp)
        if state is ItemState.CONSUMED:
            return  # idempotent
        if strict and state is not ItemState.OPEN:
            raise NotOpenError(
                f"timestamp {timestamp} is {state.value}, not open, on "
                f"connection {conn_id} (strict consume)"
            )
        view.consume_one(timestamp)
        if view.min_cache == timestamp:
            view.min_cache = None  # the minimum advanced; recompute lazily
        self.total_consumes += 1
        self._after_consume([timestamp])

    def consume_until(self, conn_id: int, timestamp: int) -> None:
        """Mark every timestamp <= ``timestamp`` consumed on this connection.

        Per §4.2 this may move items straight from UNSEEN to CONSUMED.
        """
        self._check_alive()
        view = self._input(conn_id)
        validate_timestamp(timestamp)
        bound = timestamp + 1
        affected = [
            ts
            for ts in self.items.keys_below(bound)
            if view.is_unconsumed(ts) or ts in view.open_ts
        ]
        view.consume_upto(timestamp)
        cache = view.min_cache
        if cache is not None and cache is not INFINITY and cache < bound:
            view.min_cache = None  # the cached minimum was just consumed
        # One consume_until may retire many timestamps; count what it
        # actually consumed so batched consumes don't under-report.
        self.total_consumes += len(affected)
        self._after_consume(affected)

    def _after_consume(self, timestamps: list[int]) -> None:
        """Eagerly reclaim refcounted items whose count reached zero (§6)."""
        for ts in timestamps:
            record = self.items.get(ts)
            if record is None:
                continue
            if record.dec_refcount():
                # Only reclaim when no connection still has it open or unseen
                # *and* wants it — the declared count reaching zero is the
                # producer's signal that all planned consumers are done.
                del self.items[ts]
                self._stored_bytes -= record.size
                self.total_collected += 1
                self.total_refcount_collected += 1
                for view in self.inputs.values():
                    if view.min_cache == ts:
                        view.min_cache = None  # cached minimum reclaimed
                if _reclaim_hook is not None:
                    _reclaim_hook(self, ts, record)
        self.version += 1

    # ------------------------------------------------------------------
    # garbage collection (reachability algorithm)
    # ------------------------------------------------------------------
    def unconsumed_min(self) -> VirtualTime:
        """Smallest timestamp unconsumed on any input connection, or INFINITY.

        This is the channel's contribution to the global GC minimum (§4.2):
        "timestamps of all unconsumed items on all input connections of all
        channels".  A channel with no input connections contributes INFINITY
        — its items are protected only by thread visibilities, exactly as the
        paper's rule prescribes (a future connection can only reach items >=
        its creating thread's visibility).

        Each connection's minimum is cached on its view and invalidated by
        exactly the operations that can move it (consume of the minimum,
        reclaim of the minimum, collection below it), so the steady-state
        cost is a dict-min over the inputs — the per-epoch skip-scan over
        items only runs for views whose cache was invalidated.
        """
        mins: list[VirtualTime] = []
        for view in self.inputs.values():
            cached = view.min_cache
            if cached is None:
                cached = view.min_cache = self._recompute_min(view)
            if cached is not INFINITY:
                mins.append(cached)
        return vt_min(mins)

    def _recompute_min(self, view) -> VirtualTime:
        """Skip-scan for a view's smallest stored-and-unconsumed timestamp."""
        key = self.items.ceil_key(view.consumed_below)
        self.min_scan_steps += 1
        while key is not None and view.is_consumed(key):
            key = self.items.higher_key(key)
            self.min_scan_steps += 1
        return key if key is not None else INFINITY

    def collect_below(self, horizon: VirtualTime) -> list[int]:
        """Reclaim every item with timestamp < ``horizon``; return their ts.

        Called by the GC daemon with the global minimum.  Also raises the
        channel's local horizon so stale gets fail fast with
        :class:`ItemGarbageCollectedError` instead of blocking forever.
        """
        if horizon is INFINITY:
            bound = (self.items.max_key() or 0) + 1 if len(self.items) else self.gc_horizon
        else:
            bound = int(horizon)
        if bound <= self.gc_horizon and not self.items.keys_below(bound):
            self.gc_horizon = max(self.gc_horizon, bound)
            return []
        dead = self.items.pop_below(bound)
        self.gc_horizon = max(self.gc_horizon, bound)
        if dead:
            self.total_collected += len(dead)
            self._stored_bytes -= sum(rec.size for _, rec in dead)
            for view in self.inputs.values():
                cache = view.min_cache
                if cache is not None and cache is not INFINITY and cache < bound:
                    view.min_cache = None  # cached minimum was collected
            if _reclaim_hook is not None:
                for ts, rec in dead:
                    _reclaim_hook(self, ts, rec)
            self.version += 1
        return [ts for ts, _ in dead]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def timestamps(self) -> list[int]:
        """Sorted timestamps currently stored (diagnostics and tests)."""
        return self.items.keys()

    def oldest(self) -> int | None:
        return self.items.min_key()

    def latest(self) -> int | None:
        return self.items.max_key()

    def item_state(self, conn_id: int, ts: int) -> ItemState:
        """State of ``ts`` relative to input connection ``conn_id``."""
        return self._input(conn_id).state_of(ts)

    def stored_bytes(self) -> int:
        """Bytes currently stored, from the running counter (O(1))."""
        return self._stored_bytes

    def destroy(self) -> None:
        """Tear the channel down; subsequent operations raise."""
        self.destroyed = True
        if _reclaim_hook is not None:
            for ts in self.items.keys():
                _reclaim_hook(self, ts, self.items.get(ts))
        self.items = SortedIntMap()
        self.inputs.clear()
        self.outputs.clear()
        self._stored_bytes = 0
        self.version += 1
