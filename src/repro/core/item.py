"""Item records and the per-connection item state machine (paper §4.2).

An object X in a channel is, *with respect to each input connection*, in one
of three states::

    UNSEEN --get--> OPEN --consume--> CONSUMED
       \\________________consume________^

(the direct UNSEEN -> CONSUMED edge is taken by ``consume_until`` and by the
implicit consumption performed when a new input connection attaches).  An
item is **unconsumed** w.r.t. a connection when it is UNSEEN or OPEN; the
timestamps of unconsumed items feed the global GC minimum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.flags import UNKNOWN_REFCOUNT

__all__ = ["ItemState", "ItemRecord", "InputConnState"]


class ItemState(enum.Enum):
    """State of an item relative to one input connection."""

    UNSEEN = "unseen"
    OPEN = "open"
    CONSUMED = "consumed"


@dataclass
class ItemRecord:
    """One timestamped item stored in a channel.

    Attributes
    ----------
    timestamp:
        The item's column in the space-time table (application-derived int).
    payload:
        Opaque stored representation.  The channel facade above the kernel
        enforces copy-in/copy-out semantics (it hands the kernel an already
        private copy / serialized bytes), so the kernel never copies.
    size:
        Size in bytes of the stored representation, used for bandwidth
        accounting and the bounded-channel byte budget.
    refcount:
        Remaining consume operations before the item may be eagerly
        reclaimed, or :data:`UNKNOWN_REFCOUNT` when the producer could not
        predict its consumer count (paper §6) — such items wait for the
        reachability GC.
    producer_conn:
        Id of the output connection that put the item (used by the
        connection-hint push optimisation and by debug tooling).
    """

    timestamp: int
    payload: Any
    size: int
    refcount: int = UNKNOWN_REFCOUNT
    producer_conn: int | None = None
    #: number of get operations ever performed on this item (any connection).
    get_count: int = field(default=0, compare=False)
    #: address spaces this item's payload was eagerly pushed to (§9
    #: connection-hint optimization); None until the first push.
    pushed_to: set | None = field(default=None, compare=False)

    @property
    def refcounted(self) -> bool:
        """True when the producer declared a consumer count for this item."""
        return self.refcount != UNKNOWN_REFCOUNT

    def dec_refcount(self) -> bool:
        """Decrement a declared refcount; return True when it reaches zero.

        Items with UNKNOWN_REFCOUNT are never eagerly collected, so this is
        a no-op returning False for them.  The count is clamped at zero:
        over-consumption (a late-attaching connection consuming an item whose
        declared consumers already finished) must not wrap around.
        """
        if not self.refcounted:
            return False
        if self.refcount > 0:
            self.refcount -= 1
        return self.refcount == 0


@dataclass
class InputConnState:
    """Mutable per-input-connection bookkeeping held by the channel kernel.

    The kernel stores consumption state *sparsely*: a ``consumed_below``
    watermark captures the (usually huge) implicitly-consumed prefix, and an
    explicit set records out-of-order consumes above the watermark.  This is
    what lets ``consume_until`` and attach-time implicit consumption run in
    O(1) amortized instead of touching every item.
    """

    conn_id: int
    #: every timestamp < consumed_below is CONSUMED on this connection.
    consumed_below: int = 0
    #: timestamps >= consumed_below that were consumed individually.
    consumed_explicit: set[int] = field(default_factory=set)
    #: timestamps currently in the OPEN state (gotten, not yet consumed).
    open_ts: set[int] = field(default_factory=set)
    #: greatest timestamp ever returned by a get on this connection, used to
    #: resolve the LATEST_UNSEEN wildcard; None before the first get.
    last_gotten: int | None = None
    #: cached smallest stored-and-unconsumed timestamp for this connection
    #: (INFINITY when fully consumed), or None when it must be recomputed.
    #: Maintained by the channel kernel so the per-epoch GC minimum is a
    #: dict-min instead of a skip-scan over the items.
    min_cache: Any = None

    def state_of(self, ts: int) -> ItemState:
        """State of timestamp ``ts`` relative to this connection."""
        if ts in self.open_ts:
            return ItemState.OPEN
        if ts < self.consumed_below or ts in self.consumed_explicit:
            return ItemState.CONSUMED
        return ItemState.UNSEEN

    def is_consumed(self, ts: int) -> bool:
        return ts < self.consumed_below or ts in self.consumed_explicit

    def is_unconsumed(self, ts: int) -> bool:
        return not self.is_consumed(ts)

    def note_get(self, ts: int) -> None:
        """Record a successful get: item becomes OPEN, LATEST_UNSEEN advances."""
        self.open_ts.add(ts)
        if self.last_gotten is None or ts > self.last_gotten:
            self.last_gotten = ts

    def consume_one(self, ts: int) -> None:
        """Move ``ts`` to CONSUMED (from OPEN or UNSEEN)."""
        self.open_ts.discard(ts)
        if ts >= self.consumed_below:
            self.consumed_explicit.add(ts)
        self._compact()

    def consume_upto(self, ts: int) -> None:
        """Move every timestamp <= ``ts`` to CONSUMED."""
        bound = ts + 1
        if bound <= self.consumed_below:
            return
        self.consumed_below = bound
        self.consumed_explicit = {t for t in self.consumed_explicit if t >= bound}
        self.open_ts = {t for t in self.open_ts if t >= bound}
        self._compact()

    def _compact(self) -> None:
        """Fold a contiguous run of explicit consumes into the watermark.

        Keeps ``consumed_explicit`` small when a connection consumes items
        one by one in timestamp order (the common pipeline pattern).
        """
        while self.consumed_below in self.consumed_explicit:
            self.consumed_explicit.discard(self.consumed_below)
            self.consumed_below += 1
