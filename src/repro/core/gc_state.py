"""Global-minimum computation for timestamp-based garbage collection (§4.2).

The paper's reachability rule:

    global_min = min( virtual times of all threads,
                      timestamps of all unconsumed items on all input
                      connections of all channels )

    "This is the smallest timestamp value that can possibly be associated
    with an item produced by any thread in the system. ... all objects in
    all channels with lower timestamps can safely be garbage collected."

One refinement: we fold each thread's *visibility* (min of its virtual time
and its open items' timestamps) rather than its raw virtual time.  Open items
are unconsumed on some input connection, so they already hold the minimum
down via the channel term — the result is identical, but folding visibilities
makes each address space's local summary self-contained (it does not need to
know which channels its threads' open items live in, which matters when the
channel is homed on another address space).

This module is pure arithmetic; the *distributed* recomputation protocol that
gathers the terms across address spaces lives in
:mod:`repro.runtime.gc_daemon`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.time import INFINITY, VirtualTime, vt_min

__all__ = ["LocalGCSummary", "compute_global_min", "merge_summaries"]


@dataclass
class LocalGCSummary:
    """One address space's contribution to the global minimum.

    Attributes
    ----------
    space_id:
        The reporting address space.
    thread_visibilities:
        Visibility of every live STM thread in the space.
    channel_mins:
        ``channel_id -> unconsumed_min`` for every channel homed here.
    epoch:
        GC round this summary answers; the daemon discards stale replies.
    """

    space_id: int
    thread_visibilities: list[VirtualTime] = field(default_factory=list)
    channel_mins: dict[int, VirtualTime] = field(default_factory=dict)
    epoch: int = 0

    def local_min(self) -> VirtualTime:
        return vt_min(
            list(self.thread_visibilities) + list(self.channel_mins.values())
        )


def compute_global_min(
    thread_visibilities: Iterable[VirtualTime],
    channel_mins: Iterable[VirtualTime],
) -> VirtualTime:
    """The paper's global minimum over thread and channel terms.

    INFINITY means no thread and no unconsumed item constrains collection:
    every stored item may be reclaimed.
    """
    return vt_min(list(thread_visibilities) + list(channel_mins))


def merge_summaries(summaries: Iterable[LocalGCSummary]) -> VirtualTime:
    """Global minimum across per-space summaries (the coordinator's step)."""
    best: VirtualTime = INFINITY
    for summary in summaries:
        local = summary.local_min()
        if local is not INFINITY and (best is INFINITY or local < best):
            best = local
    return best
