"""Copy-in / copy-out payload handling (paper §4.1).

STM semantics: "after a put, a thread may immediately safely re-use its
buffer.  Similarly, after a successful get, a client can safely modify the
copy of the object that it received."  The kernel stores opaque payloads and
never copies; this module decides *what* gets stored, under three policies:

``SERIALIZE``
    The payload is pickled at put and unpickled at get.  This is the only
    policy usable across address spaces (the representation is exactly what
    CLF ships over the wire), and it is the default because it makes local
    and remote channels behave identically.  Numpy arrays take the
    buffer-protocol fast path (``pickle`` protocol 5 keeps frame-sized copies
    to a single memcpy each way).

``DEEPCOPY``
    The payload is deep-copied at put *and* at get.  Local-only; useful when
    payloads are unpicklable or when pickling is slower than copying.

``REFERENCE``
    The payload object itself is stored and returned; no copies.  This is
    the paper's explicit escape hatch ("an application can still pass a
    datum by reference — it merely passes a reference to the object through
    STM").  Local-only; the application takes over aliasing discipline.

The reported ``size`` feeds bandwidth accounting and the simulator's
transport cost model, so it must be faithful: serialized length for
SERIALIZE, a recursive estimate otherwise.
"""

from __future__ import annotations

import copy
import enum
import pickle
import sys
from typing import Any

__all__ = ["CopyPolicy", "encode", "decode", "estimate_size"]


class CopyPolicy(enum.Enum):
    SERIALIZE = "serialize"
    DEEPCOPY = "deepcopy"
    REFERENCE = "reference"


def estimate_size(obj: Any, _seen: set[int] | None = None) -> int:
    """Approximate in-memory size in bytes of ``obj``.

    Exact for bytes-like and numpy payloads (the cases that matter for the
    paper's tables, whose payloads are byte buffers and video frames); a
    shallow ``sys.getsizeof`` plus one level of container recursion elsewhere
    — cost accounting needs the right magnitude, not byte-exactness.

    Self-referential containers (REFERENCE/DEEPCOPY payloads are arbitrary
    object graphs) are counted once: a container already on the current
    recursion path contributes 0 instead of recursing forever.
    """
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    nbytes = getattr(obj, "nbytes", None)  # numpy arrays and friends
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(obj, (list, tuple, set, frozenset, dict)):
        if _seen is None:
            _seen = set()
        if id(obj) in _seen:
            return 0  # cycle: this container is already being counted
        _seen.add(id(obj))
        try:
            if isinstance(obj, dict):
                return sys.getsizeof(obj) + sum(
                    estimate_size(k, _seen) + estimate_size(v, _seen)
                    for k, v in obj.items()
                )
            return sys.getsizeof(obj) + sum(estimate_size(x, _seen) for x in obj)
        finally:
            _seen.discard(id(obj))
    return sys.getsizeof(obj)


def encode(payload: Any, policy: CopyPolicy) -> tuple[Any, int]:
    """Copy-in: produce the stored representation and its size in bytes."""
    if policy is CopyPolicy.SERIALIZE:
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return data, len(data)
    if policy is CopyPolicy.DEEPCOPY:
        stored = copy.deepcopy(payload)
        return stored, estimate_size(stored)
    if policy is CopyPolicy.REFERENCE:
        return payload, estimate_size(payload)
    raise TypeError(f"unknown copy policy {policy!r}")  # pragma: no cover


def decode(stored: Any, policy: CopyPolicy) -> Any:
    """Copy-out: produce the caller's private copy from the stored form."""
    if policy is CopyPolicy.SERIALIZE:
        return pickle.loads(stored)
    if policy is CopyPolicy.DEEPCOPY:
        return copy.deepcopy(stored)
    if policy is CopyPolicy.REFERENCE:
        return stored
    raise TypeError(f"unknown copy policy {policy!r}")  # pragma: no cover
