"""Operation flags and wildcard timestamps for STM puts and gets (paper §4.1).

The paper's ``spd_channel_get_item`` accepts either a concrete timestamp or a
wildcard: "the newest/oldest value currently in the channel, or the newest
value not previously gotten over any connection".  Both put and get take a
flag selecting blocking vs. non-blocking behaviour.
"""

from __future__ import annotations

import enum

__all__ = [
    "GetWildcard",
    "STM_LATEST",
    "STM_OLDEST",
    "STM_LATEST_UNSEEN",
    "STM_OLDEST_UNSEEN",
    "BlockMode",
    "UNKNOWN_REFCOUNT",
]


class GetWildcard(enum.Enum):
    """Wildcard timestamp selectors for get operations.

    LATEST
        The item with the greatest timestamp currently in the channel.
    OLDEST
        The item with the smallest timestamp currently in the channel
        (that is still visible to the requesting connection).
    LATEST_UNSEEN
        The item with the greatest timestamp that has not previously been
        gotten over *this* connection.  This is the workhorse of interactive
        pipelines: a tracker asks for the most recent frame and transparently
        skips stale ones (paper §3 bullet 1 and Fig. 7).  (The paper's §4.1
        phrasing — "not previously gotten over any connection" — is read
        per-connection here: Fig. 7's replicated trackers each need their
        own skipping cursor, and a global cursor would make independent
        consumers steal items from each other.)
    OLDEST_UNSEEN
        The item with the smallest timestamp still in the UNSEEN state on
        this connection (never gotten, never consumed).  The in-order dual
        of LATEST_UNSEEN: repeated gets walk the stream front-to-back while
        earlier items may stay open/unconsumed — the access pattern of a
        sliding-window analyzer (§1) that must *retain* its window.
    """

    LATEST = "latest"
    OLDEST = "oldest"
    LATEST_UNSEEN = "latest_unseen"
    OLDEST_UNSEEN = "oldest_unseen"

    def __repr__(self) -> str:
        return f"STM_{self.name}"


#: Module-level aliases matching the paper's constant names.
STM_LATEST = GetWildcard.LATEST
STM_OLDEST = GetWildcard.OLDEST
STM_LATEST_UNSEEN = GetWildcard.LATEST_UNSEEN
STM_OLDEST_UNSEEN = GetWildcard.OLDEST_UNSEEN


class BlockMode(enum.Enum):
    """Blocking behaviour of a put or get (the paper's flag parameter).

    BLOCK
        Wait until the operation can complete (bounded channel has room /
        a suitable item arrives).
    NONBLOCK
        Return immediately with an error code if the operation cannot
        complete right now.
    """

    BLOCK = "block"
    NONBLOCK = "nonblock"


#: Sentinel reference count for a put whose producer does not know how many
#: consumers the item will have (paper §6): such items are garbage collected
#: by the reachability algorithm rather than by eager reference counting.
UNKNOWN_REFCOUNT: int = -1
