"""Virtual time: the timestamp discipline at the heart of STM (paper §4.2).

Timestamps in STM are *application-derived* integers — e.g. camera frame
numbers — deliberately decoupled from real time (§6, "Virtual versus Real
timestamps").  Real time enters only through the pacing API
(:mod:`repro.runtime.realtime`).

Two kinds of values live on the virtual-time axis:

* **Timestamps** attached to items: plain non-negative integers.  Application
  code may do arithmetic on them (§4.2), so we keep them as ``int``.
* **Virtual times** of threads: an integer *or* the special value
  :data:`INFINITY`.  Most interior threads set their virtual time to
  INFINITY because the timestamps of items they put are inherited from the
  items they get (§4.2, Fig. 7).

:data:`INFINITY` is a singleton that compares greater than every integer, so
``min()`` over mixed collections of timestamps and virtual times does the
right thing when computing visibilities and the global GC minimum.
"""

from __future__ import annotations

from typing import Iterable, Union

__all__ = [
    "INFINITY",
    "Infinity",
    "VirtualTime",
    "Timestamp",
    "is_timestamp",
    "validate_timestamp",
    "vt_min",
    "vt_le",
    "vt_lt",
]

Timestamp = int


class Infinity:
    """The unique greatest element of the virtual-time order.

    A thread whose puts always inherit timestamps from its gets sets its
    virtual time to INFINITY so it never constrains garbage collection
    (paper §4.2).  ``Infinity()`` always returns the same singleton; it is
    pickle-stable so it can cross (simulated) address spaces.
    """

    _instance: "Infinity | None" = None

    def __new__(cls) -> "Infinity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (Infinity, ())

    # Rich comparisons: INFINITY is strictly greater than every int and
    # equal only to itself.
    def __lt__(self, other) -> bool:
        if isinstance(other, (int, Infinity)):
            return False
        return NotImplemented

    def __le__(self, other) -> bool:
        if isinstance(other, Infinity):
            return True
        if isinstance(other, int):
            return False
        return NotImplemented

    def __gt__(self, other) -> bool:
        if isinstance(other, Infinity):
            return False
        if isinstance(other, int):
            return True
        return NotImplemented

    def __ge__(self, other) -> bool:
        if isinstance(other, (int, Infinity)):
            return True
        return NotImplemented

    def __eq__(self, other) -> bool:
        return isinstance(other, Infinity)

    def __hash__(self) -> int:
        return hash("repro.core.time.INFINITY")

    def __repr__(self) -> str:
        return "INFINITY"

    def __add__(self, other):
        if isinstance(other, (int, Infinity)):
            return self
        return NotImplemented

    __radd__ = __add__


INFINITY = Infinity()

VirtualTime = Union[int, Infinity]


def is_timestamp(value) -> bool:
    """True when ``value`` is a legal item timestamp (non-negative int)."""
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_timestamp(value) -> int:
    """Return ``value`` if it is a legal timestamp, else raise TypeError/ValueError."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"timestamp must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"timestamp must be >= 0, got {value}")
    return value


def vt_lt(a: VirtualTime, b: VirtualTime) -> bool:
    """a < b in the virtual-time order."""
    if isinstance(a, Infinity):
        return False
    if isinstance(b, Infinity):
        return True
    return a < b


def vt_le(a: VirtualTime, b: VirtualTime) -> bool:
    """a <= b in the virtual-time order."""
    return not vt_lt(b, a)


def vt_min(values: Iterable[VirtualTime]) -> VirtualTime:
    """Minimum of virtual-time values; INFINITY for an empty iterable.

    The empty case matters: the global GC minimum over a system with no
    threads and no unconsumed items is INFINITY, meaning *everything* may be
    collected (paper §4.2).
    """
    best: VirtualTime = INFINITY
    for v in values:
        if vt_lt(v, best):
            best = v
    return best
