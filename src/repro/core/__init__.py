"""STM semantic kernel: pure, runtime-agnostic channel and time semantics.

Everything in this package is synchronous, lock-free, and I/O-free; the
runtimes in :mod:`repro.runtime` and :mod:`repro.sim` supply threads,
blocking, distribution, and clocks around it.
"""

from repro.core.channel_state import (
    BlockReason,
    ChannelKernel,
    GetResult,
    PutResult,
    Status,
)
from repro.core.flags import (
    BlockMode,
    GetWildcard,
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    STM_OLDEST_UNSEEN,
    UNKNOWN_REFCOUNT,
)
from repro.core.gc_state import LocalGCSummary, compute_global_min, merge_summaries
from repro.core.item import InputConnState, ItemRecord, ItemState
from repro.core.payload import CopyPolicy, decode, encode, estimate_size
from repro.core.time import (
    INFINITY,
    Infinity,
    Timestamp,
    VirtualTime,
    is_timestamp,
    validate_timestamp,
    vt_le,
    vt_lt,
    vt_min,
)

__all__ = [
    "BlockMode",
    "BlockReason",
    "ChannelKernel",
    "CopyPolicy",
    "GetResult",
    "GetWildcard",
    "INFINITY",
    "Infinity",
    "InputConnState",
    "ItemRecord",
    "ItemState",
    "LocalGCSummary",
    "PutResult",
    "STM_LATEST",
    "STM_LATEST_UNSEEN",
    "STM_OLDEST",
    "STM_OLDEST_UNSEEN",
    "Status",
    "Timestamp",
    "UNKNOWN_REFCOUNT",
    "VirtualTime",
    "compute_global_min",
    "decode",
    "encode",
    "estimate_size",
    "is_timestamp",
    "merge_summaries",
    "validate_timestamp",
    "vt_le",
    "vt_lt",
    "vt_min",
]
