"""Message serialization for cross-address-space traffic.

All runtime control messages (channel RPCs, GC protocol, thread spawning)
are dataclasses serialized with pickle protocol 5.  Item payloads are
*already* bytes by the time they reach a message (the channel facade encodes
them under the SERIALIZE copy policy), so a payload crosses the wire inside
the message without a second encode.

A small header byte-tags each message with its registered type so a
receiving dispatcher can route without unpickling twice, and so corrupted or
foreign traffic fails loudly.

Zero-copy payload framing
-------------------------
Wrapping a bytes-like payload in :class:`Frame` before it enters a message
makes :func:`encode_message_sg` emit it as a pickle protocol-5 *out-of-band
buffer*: the pickle stream carries only a reference, and the payload itself
travels as a separate scatter/gather segment handed to
:meth:`~repro.transport.clf.ClfEndpoint.send`.  The sender then copies the
payload exactly once (gathering segments into MTU packets) and the receiver
exactly once (reassembling packets into the message), instead of the 2-3
extra copies a re-pickle of megabyte payloads costs — the "one memcpy each
way" framing §5's Memory Channel path intends.  :data:`frame_stats` counts
those per-side copies for the benchmarks.

Wire format: an unframed message is ``tag(2) | pickle`` exactly as before.
A framed message is ``tag(2) | 0x01 | nbufs(2) | pkl_len(4) | pickle |
(buf_len(8) | buf)*`` — distinguishable because a protocol-2+ pickle always
begins with the 0x80 PROTO opcode, never 0x01.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Type

from repro.errors import TransportError

__all__ = [
    "register_message",
    "encode_message",
    "encode_message_sg",
    "decode_message",
    "message_types",
    "Frame",
    "frame_stats",
]

_BY_TAG: dict[int, Type] = {}
_BY_TYPE: dict[Type, int] = {}

#: third byte of a framed message (a pickle stream would have 0x80 here).
_FRAMED_MAGIC = 0x01
_FRAMED_HEADER = struct.Struct("<HI")  # nbufs, pickle length
_BUF_HEADER = struct.Struct("<Q")  # per-buffer length


class Frame:
    """Marks a bytes-like payload for out-of-band (zero-copy) framing.

    The runtime wraps already-encoded SERIALIZE payloads in a Frame before
    placing them in a ``PutReq``/reply/push message; the codec then ships
    the bytes as a separate wire segment instead of re-pickling them.  After
    decoding, ``data`` is a memoryview into the received message buffer —
    still zero-copy — so consumers must treat it as read-only bytes-like.
    """

    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            return (Frame, (pickle.PickleBuffer(self.data),))
        return (Frame, (bytes(self.data),))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Frame {memoryview(self.data).nbytes} bytes>"


class FrameStats:
    """Counters for the framing layer (read by the PR-1 benchmarks).

    ``payload_bytes_copied`` counts one copy per side per framed payload:
    the send-side gather into MTU packets and the receive-side reassembly
    join each touch the payload exactly once, and nothing else does.
    """

    __slots__ = (
        "frames_encoded",
        "frames_decoded",
        "payload_bytes_copied",
        "payload_bytes_framed",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.frames_encoded = 0
        self.frames_decoded = 0
        self.payload_bytes_copied = 0
        self.payload_bytes_framed = 0

    def snapshot(self) -> dict:
        return {
            "frames_encoded": self.frames_encoded,
            "frames_decoded": self.frames_decoded,
            "payload_bytes_copied": self.payload_bytes_copied,
            "payload_bytes_framed": self.payload_bytes_framed,
        }


frame_stats = FrameStats()


def register_message(tag: int):
    """Class decorator registering a message type under a unique tag."""

    def apply(cls: Type) -> Type:
        if tag in _BY_TAG and _BY_TAG[tag] is not cls:
            raise ValueError(
                f"message tag {tag} already registered for {_BY_TAG[tag].__name__}"
            )
        if not 0 <= tag <= 0xFFFF:
            raise ValueError(f"tag must fit 16 bits, got {tag}")
        _BY_TAG[tag] = cls
        _BY_TYPE[cls] = tag
        return cls

    return apply


def message_types() -> dict[int, Type]:
    """Snapshot of the registry (diagnostics and tests)."""
    return dict(_BY_TAG)


def _tag_of(msg: Any) -> int:
    tag = _BY_TYPE.get(type(msg))
    if tag is None:
        raise TransportError(
            f"cannot encode unregistered message type {type(msg).__name__}"
        )
    return tag


def encode_message_sg(msg: Any) -> list:
    """Serialize a registered message to a list of wire segments.

    Returns ``[header+pickle]`` for ordinary messages; when the message
    contains :class:`Frame`-wrapped payloads, their bytes follow as extra
    segments (each preceded by a small length segment), un-copied.  Feed
    the list to :meth:`~repro.transport.clf.ClfEndpoint.send`, which
    gathers segments directly into packets.
    """
    tag = _tag_of(msg)
    buffers: list[pickle.PickleBuffer] = []
    pkl = pickle.dumps(msg, protocol=5, buffer_callback=buffers.append)
    if not buffers:
        return [tag.to_bytes(2, "little") + pkl]
    head = (
        tag.to_bytes(2, "little")
        + bytes((_FRAMED_MAGIC,))
        + _FRAMED_HEADER.pack(len(buffers), len(pkl))
        + pkl
    )
    segments: list = [head]
    for buf in buffers:
        raw = buf.raw()
        segments.append(_BUF_HEADER.pack(raw.nbytes))
        segments.append(raw)
        frame_stats.frames_encoded += 1
        frame_stats.payload_bytes_framed += raw.nbytes
        # the send side will copy this buffer exactly once: segment -> packet
        frame_stats.payload_bytes_copied += raw.nbytes
    return segments


def encode_message(msg: Any) -> bytes:
    """Serialize a registered message to contiguous wire bytes.

    The joined form of :func:`encode_message_sg` — used where a single
    buffer is required (fault injection, tests); the runtime's hot paths
    send the segment list instead.
    """
    segments = encode_message_sg(msg)
    if len(segments) == 1:
        return segments[0]
    return b"".join(bytes(memoryview(seg)) for seg in segments)


def decode_message(data) -> Any:
    """Deserialize wire bytes produced by either encoder.

    Accepts any bytes-like object; framed payloads come back as
    :class:`Frame` objects whose ``data`` is a memoryview into ``data``
    (no copy).
    """
    view = memoryview(data)
    if view.nbytes < 2:
        raise TransportError(f"message too short: {view.nbytes} bytes")
    tag = int.from_bytes(view[:2], "little")
    cls = _BY_TAG.get(tag)
    if cls is None:
        raise TransportError(f"unknown message tag {tag}")
    if view.nbytes > 2 and view[2] == _FRAMED_MAGIC:
        msg = _decode_framed(view)
    else:
        msg = pickle.loads(view[2:])
    if not isinstance(msg, cls):
        raise TransportError(
            f"message tag {tag} ({cls.__name__}) wraps a {type(msg).__name__}"
        )
    return msg


def _decode_framed(view: memoryview) -> Any:
    try:
        nbufs, pkl_len = _FRAMED_HEADER.unpack_from(view, 3)
        offset = 3 + _FRAMED_HEADER.size
        pkl = view[offset:offset + pkl_len]
        if pkl.nbytes != pkl_len:
            raise TransportError("framed message truncated in pickle section")
        offset += pkl_len
        buffers: list[memoryview] = []
        for _ in range(nbufs):
            (buf_len,) = _BUF_HEADER.unpack_from(view, offset)
            offset += _BUF_HEADER.size
            buf = view[offset:offset + buf_len]
            if buf.nbytes != buf_len:
                raise TransportError("framed message truncated in buffer section")
            offset += buf_len
            buffers.append(buf)
            frame_stats.frames_decoded += 1
            # the receive side copied this buffer exactly once: packets ->
            # reassembled message (the buffer is a view into that message)
            frame_stats.payload_bytes_copied += buf_len
    except struct.error as exc:
        raise TransportError(f"corrupt framed message header: {exc}") from exc
    return pickle.loads(pkl, buffers=buffers)
