"""Message serialization for cross-address-space traffic.

All runtime control messages (channel RPCs, GC protocol, thread spawning)
are dataclasses serialized with pickle protocol 5.  Item payloads are
*already* bytes by the time they reach a message (the channel facade encodes
them under the SERIALIZE copy policy), so a payload crosses the wire inside
the message without a second encode.

A small header byte-tags each message with its registered type so a
receiving dispatcher can route without unpickling twice, and so corrupted or
foreign traffic fails loudly.
"""

from __future__ import annotations

import pickle
from typing import Any, Type

from repro.errors import TransportError

__all__ = ["register_message", "encode_message", "decode_message", "message_types"]

_BY_TAG: dict[int, Type] = {}
_BY_TYPE: dict[Type, int] = {}


def register_message(tag: int):
    """Class decorator registering a message type under a unique tag."""

    def apply(cls: Type) -> Type:
        if tag in _BY_TAG and _BY_TAG[tag] is not cls:
            raise ValueError(
                f"message tag {tag} already registered for {_BY_TAG[tag].__name__}"
            )
        if not 0 <= tag <= 0xFFFF:
            raise ValueError(f"tag must fit 16 bits, got {tag}")
        _BY_TAG[tag] = cls
        _BY_TYPE[cls] = tag
        return cls

    return apply


def message_types() -> dict[int, Type]:
    """Snapshot of the registry (diagnostics and tests)."""
    return dict(_BY_TAG)


def encode_message(msg: Any) -> bytes:
    """Serialize a registered message to wire bytes."""
    tag = _BY_TYPE.get(type(msg))
    if tag is None:
        raise TransportError(
            f"cannot encode unregistered message type {type(msg).__name__}"
        )
    return tag.to_bytes(2, "little") + pickle.dumps(
        msg, protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_message(data: bytes) -> Any:
    """Deserialize wire bytes produced by :func:`encode_message`."""
    if len(data) < 2:
        raise TransportError(f"message too short: {len(data)} bytes")
    tag = int.from_bytes(data[:2], "little")
    cls = _BY_TAG.get(tag)
    if cls is None:
        raise TransportError(f"unknown message tag {tag}")
    msg = pickle.loads(data[2:])
    if not isinstance(msg, cls):
        raise TransportError(
            f"message tag {tag} ({cls.__name__}) wraps a {type(msg).__name__}"
        )
    return msg
