"""Fault injection for the CLF transport (test instrumentation).

CLF promises *reliable, ordered* delivery (§8.1); the layers above it are
entitled to assume that and must fail **loudly**, not silently, if the
promise is broken.  :class:`FaultyNetwork` wraps a :class:`ClfNetwork` and
corrupts traffic on selected (src, dst) links — dropping, duplicating,
reordering, or bit-flipping packets — so tests can verify that:

* the reassembler detects every violation (CRC mismatch, fragment-stream
  violations) and raises :class:`~repro.errors.TransportError`;
* the runtime's dispatcher survives corrupt *messages* (it drops them and
  keeps serving) rather than dying.

This is deliberately not reachable from production paths: nothing in
``repro.runtime`` imports it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.transport.clf import ClfEndpoint, ClfNetwork

__all__ = ["FaultPlan", "FaultyNetwork"]


@dataclass
class FaultPlan:
    """Per-link fault probabilities (independent per packet)."""

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    #: hold a packet back and release it after the next one (pairwise swap).
    reorder: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for name in ("drop", "duplicate", "corrupt", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


class FaultyNetwork:
    """A ClfNetwork whose selected links misbehave deterministically.

    Wraps every endpoint so that sends over a faulted link pass through the
    fault plan before enqueueing at the destination.  All other behaviour
    (fragmentation, stats, close) is the wrapped network's.
    """

    def __init__(self, network: ClfNetwork):
        self.network = network
        self._plans: dict[tuple[int, int], FaultPlan] = {}
        self._rngs: dict[tuple[int, int], random.Random] = {}
        self._held: dict[tuple[int, int], bytes | None] = {}
        self.injected = {"dropped": 0, "duplicated": 0, "corrupted": 0,
                         "reordered": 0}
        self._install()

    def fault_link(self, src: int, dst: int, plan: FaultPlan) -> None:
        self._plans[(src, dst)] = plan
        self._rngs[(src, dst)] = random.Random(plan.seed)
        self._held[(src, dst)] = None

    def _install(self) -> None:
        """Monkey-wrap each endpoint's low-level packet enqueue path."""
        outer = self

        original_send = ClfEndpoint.send

        def faulty_send(endpoint, dst: int, data) -> None:
            key = (endpoint.space, dst)
            plan = outer._plans.get(key)
            if plan is None or endpoint._network is not outer.network:
                return original_send(endpoint, dst, data)
            if not isinstance(data, (bytes, bytearray)):
                # scatter/gather send: join the segments so the per-packet
                # fault machinery below sees one contiguous message
                segments = [data] if isinstance(data, memoryview) else data
                data = b"".join(bytes(memoryview(seg)) for seg in segments)
            # Re-implement the send loop with per-packet faults.
            from repro.transport.packets import fragment

            target = outer.network._endpoint(dst)
            msgid = next(endpoint._msgid)
            rng = outer._rngs[key]
            with outer.network._order_locks[key]:
                for packet in fragment(msgid, data, outer.network.mtu):
                    outer._deliver(key, target, endpoint.space, packet, rng,
                                   plan)
                held = outer._held.get(key)
                if held is not None:
                    # flush any packet still held for reordering
                    target._inbox.put((endpoint.space, held))
                    outer._held[key] = None
            endpoint.stats.messages_sent += 1
            endpoint.stats.bytes_sent += len(data)

        self._faulty_send = faulty_send
        ClfEndpoint.send = faulty_send  # type: ignore[method-assign]
        self._original_send = original_send

    def _deliver(self, key, target, src, packet: bytes, rng, plan) -> None:
        if rng.random() < plan.drop:
            self.injected["dropped"] += 1
            return
        if rng.random() < plan.corrupt:
            self.injected["corrupted"] += 1
            mutated = bytearray(packet)
            mutated[rng.randrange(len(mutated))] ^= 0xFF
            packet = bytes(mutated)
        if rng.random() < plan.reorder and self._held.get(key) is None:
            self.injected["reordered"] += 1
            self._held[key] = packet
            return
        target._inbox.put((src, packet))
        held = self._held.get(key)
        if held is not None:
            target._inbox.put((src, held))
            self._held[key] = None
        if rng.random() < plan.duplicate:
            self.injected["duplicated"] += 1
            target._inbox.put((src, packet))

    def uninstall(self) -> None:
        """Restore the pristine ClfEndpoint.send (idempotent)."""
        if getattr(self, "_original_send", None) is not None:
            ClfEndpoint.send = self._original_send  # type: ignore[method-assign]
            self._original_send = None

    def __enter__(self) -> "FaultyNetwork":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()
