"""CLF packetization: fragmentation and reassembly at the 8152-byte MTU.

CLF is a *packet* transport (paper §8.1): messages larger than the MTU are
split into packets and reassembled at the receiver.  Because CLF guarantees
reliable ordered point-to-point delivery, reassembly needs no sequence
numbers for correctness — but we carry them anyway and verify them, turning
any ordering bug in a transport implementation into a loud error instead of
silent data corruption.

Packet layout (little-endian)::

    0       8       16      24      28      32
    +-------+-------+-------+-------+-------+----------------+
    | msgid | index | count | paylen| crc32 | payload ...    |
    +-------+-------+-------+-------+-------+----------------+

``msgid`` is unique per (sender, message); ``index``/``count`` place the
fragment; ``paylen`` is the fragment payload length; ``crc32`` covers the
payload.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator

from repro.errors import PacketTooLargeError, TransportError
from repro.transport.media import CLF_MTU

__all__ = ["HEADER_BYTES", "max_payload", "fragment", "fragment_sg", "Reassembler"]

_HEADER = struct.Struct("<QQQII")
#: bytes of header per packet.
HEADER_BYTES: int = _HEADER.size  # 8+8+8+4+4 = 32


def max_payload(mtu: int = CLF_MTU) -> int:
    """Largest payload that fits one packet under the given MTU."""
    if mtu <= HEADER_BYTES:
        raise ValueError(f"mtu {mtu} leaves no room for the {HEADER_BYTES}-byte header")
    return mtu - HEADER_BYTES


def fragment(msgid: int, data: bytes, mtu: int = CLF_MTU) -> Iterator[bytes]:
    """Split ``data`` into wire packets of at most ``mtu`` bytes.

    A zero-length message still produces one (header-only) packet so the
    receiver observes it.
    """
    chunk = max_payload(mtu)
    count = max(1, -(-len(data) // chunk))  # ceil division
    for index in range(count):
        payload = data[index * chunk : (index + 1) * chunk]
        header = _HEADER.pack(msgid, index, count, len(payload), zlib.crc32(payload))
        yield header + payload


def fragment_sg(msgid: int, segments, mtu: int = CLF_MTU) -> Iterator[bytearray]:
    """Packetize a scatter/gather list of bytes-like segments.

    The message on the wire is the concatenation of ``segments``, but the
    segments are gathered *directly into the packets*: each message byte is
    copied exactly once (segment -> packet), with no intermediate joined
    buffer — this is what makes out-of-band payload framing one-memcpy on
    the send side.  Packets come out as bytearrays; receivers treat them as
    read-only.
    """
    chunk = max_payload(mtu)
    views = [memoryview(seg).cast("B") for seg in segments]
    total = sum(v.nbytes for v in views)
    count = max(1, -(-total // chunk))  # ceil division
    seg_i = 0
    offset = 0
    for index in range(count):
        paylen = min(chunk, total - index * chunk)
        packet = bytearray(HEADER_BYTES + paylen)
        pos = HEADER_BYTES
        while pos < HEADER_BYTES + paylen:
            view = views[seg_i]
            take = min(HEADER_BYTES + paylen - pos, view.nbytes - offset)
            packet[pos:pos + take] = view[offset:offset + take]
            pos += take
            offset += take
            if offset == view.nbytes:
                seg_i += 1
                offset = 0
        crc = zlib.crc32(memoryview(packet)[HEADER_BYTES:])
        _HEADER.pack_into(packet, 0, msgid, index, count, paylen, crc)
        yield packet


def parse(packet, mtu: int = CLF_MTU) -> tuple[int, int, int, memoryview]:
    """Parse one wire packet -> (msgid, index, count, payload).

    The payload comes back as a memoryview into ``packet`` (zero-copy); the
    reassembler's join is the only receive-side copy.
    """
    if len(packet) > mtu:
        raise PacketTooLargeError(
            f"packet of {len(packet)} bytes exceeds MTU {mtu}"
        )
    if len(packet) < HEADER_BYTES:
        raise TransportError(f"runt packet of {len(packet)} bytes")
    msgid, index, count, paylen, crc = _HEADER.unpack_from(packet)
    payload = memoryview(packet)[HEADER_BYTES : HEADER_BYTES + paylen]
    if payload.nbytes != paylen:
        raise TransportError(
            f"truncated packet: header claims {paylen} payload bytes, "
            f"got {payload.nbytes}"
        )
    if zlib.crc32(payload) != crc:
        raise TransportError(f"payload CRC mismatch in message {msgid} packet {index}")
    return msgid, index, count, payload


class Reassembler:
    """Rebuild messages from a reliable ordered packet stream.

    One instance per (remote sender) direction.  Because the stream is
    ordered, fragments of a message arrive contiguously and in order; the
    reassembler enforces this and raises :class:`TransportError` on any
    violation.
    """

    def __init__(self, mtu: int = CLF_MTU):
        self.mtu = mtu
        self._msgid: int | None = None
        self._expect_index = 0
        self._count = 0
        self._parts: list[memoryview] = []
        #: msgid of the most recently *completed* message (None before the
        #: first one).  The sender stamps the same id on its trace instant,
        #: so this is what lets the tracer pair a send with its receive.
        self.last_msgid: int | None = None

    def feed(self, packet) -> bytes | None:
        """Consume one packet; return the completed message or None."""
        msgid, index, count, payload = parse(packet, self.mtu)
        if self._msgid is None:
            if index != 0:
                raise TransportError(
                    f"message {msgid} began at fragment {index}, expected 0 "
                    f"(ordering violation)"
                )
            self._msgid, self._count = msgid, count
            self._parts = []
            self._expect_index = 0
        if msgid != self._msgid or index != self._expect_index or count != self._count:
            raise TransportError(
                f"fragment stream violation: got (msg={msgid}, idx={index}, "
                f"cnt={count}), expected (msg={self._msgid}, "
                f"idx={self._expect_index}, cnt={self._count})"
            )
        self._parts.append(payload)
        self._expect_index += 1
        if self._expect_index == self._count:
            data = b"".join(self._parts)
            self.last_msgid = msgid
            self._msgid = None
            self._parts = []
            return data
        return None

    @property
    def mid_message(self) -> bool:
        """True while a partially received message is pending."""
        return self._msgid is not None
