"""Cross-process SPSC byte rings over ``multiprocessing.shared_memory``.

This is the *real* shared-memory medium of the process runtime
(:mod:`repro.runtime.procs`), standing in for the paper's "CLF exploits
shared memory within an SMP" (§8.1).  One :class:`ShmRing` is a
single-producer / single-consumer ring of raw bytes in one shared-memory
segment, used for the directed traffic of one (src, dst) pair of address
spaces that the :class:`~repro.transport.clf.ClusterTopology` places on the
same node.

Data path (one memcpy per side):

* the **sender** gathers the scatter/gather segments of an encoded message
  (:func:`~repro.transport.serialization.encode_message_sg`) directly into
  the ring — each payload byte is copied exactly once, segment → ring;
* a small *doorbell* record carrying only the byte count travels over the
  pair's control socket (which also gives cross-process ordering and a
  blockable wakeup — the 1999 CLF used interrupts the same way);
* the **receiver** copies the message out of the ring into a private buffer
  exactly once — ring → message — and every later layer
  (:func:`~repro.transport.serialization.decode_message`, the channel
  kernel) works on zero-copy memoryviews of that buffer.

Synchronization: the ring head ("written", advanced only by the producer)
and tail ("read", advanced only by the consumer) are monotonically
increasing 64-bit byte counters.  Each lives in the segment at a fixed,
8-byte-aligned offset and is written by exactly one side, so there is no
write/write race; the doorbell's trip through the kernel orders the data
writes before the consumer's reads.  The producer blocks (bounded backoff
poll of "read") when the ring lacks space; messages larger than the ring
fall back to the socket inline path at the caller.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

from repro.errors import TransportError

__all__ = ["RING_HEADER_BYTES", "DEFAULT_RING_BYTES", "ShmRing"]

_COUNTER = struct.Struct("<Q")
#: segment bytes reserved for the two counters (8 "read" + 8 "written").
RING_HEADER_BYTES: int = 16
#: default data capacity of one directed ring (per same-node space pair).
DEFAULT_RING_BYTES: int = 4 * 1024 * 1024

_READ_OFF = 0
_WRITTEN_OFF = 8


class ShmRing:
    """One directed SPSC ring; create in the parent, attach everywhere else.

    Exactly one process may call :meth:`write` (the pair's sender) and
    exactly one may call :meth:`read` (the receiver).  The parent that
    created the segment is responsible for :meth:`unlink`; every attached
    process just :meth:`close`\\ s.
    """

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.capacity = shm.size - RING_HEADER_BYTES
        self._buf = shm.buf
        # Local mirrors of the side this process drives; both start from the
        # shared counters so late attachment (never happens today) stays
        # correct.
        self._written = _COUNTER.unpack_from(self._buf, _WRITTEN_OFF)[0]
        self._read = _COUNTER.unpack_from(self._buf, _READ_OFF)[0]
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, name: str, capacity: int = DEFAULT_RING_BYTES) -> "ShmRing":
        if capacity <= 0:
            raise ValueError(f"ring capacity must be > 0, got {capacity}")
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=RING_HEADER_BYTES + capacity
        )
        shm.buf[:RING_HEADER_BYTES] = bytes(RING_HEADER_BYTES)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        # Python <=3.12 registers mere attachments with the resource
        # tracker.  All our attachers are either the creating process or its
        # multiprocessing children, which share the creator's tracker — the
        # repeat registration is an idempotent set-add there, and the single
        # unregister happens in the creator's unlink().  (Unregistering here
        # instead would double-remove and leave the tracker complaining.)
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def free_bytes(self) -> int:
        buf = self._buf
        if buf is None:
            raise TransportError("shm ring closed")
        read = _COUNTER.unpack_from(buf, _READ_OFF)[0]
        return self.capacity - (self._written - read)

    def write(self, segments, nbytes: int, timeout: float = 30.0) -> None:
        """Gather ``segments`` (``nbytes`` total) into the ring.

        Blocks while the ring lacks space (bounded by ``timeout``); raises
        :class:`TransportError` when the message can never fit or the
        consumer stopped draining.
        """
        if nbytes > self.capacity:
            raise TransportError(
                f"message of {nbytes} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        if self.free_bytes() < nbytes:
            deadline = time.monotonic() + timeout
            delay = 50e-6
            while self.free_bytes() < nbytes:
                if self._closed:
                    raise TransportError("shm ring closed while blocked on space")
                if time.monotonic() > deadline:
                    raise TransportError(
                        f"shm ring full for {timeout}s "
                        f"({nbytes} B wanted, {self.free_bytes()} B free)"
                    )
                time.sleep(delay)
                delay = min(delay * 2, 0.002)
        pos = self._written % self.capacity
        # Snapshot: close() from another thread nulls the attribute; going
        # through the local name turns the race into ValueError (released
        # memoryview), which transport readers treat as orderly shutdown.
        buf = self._buf
        if buf is None:
            raise TransportError("shm ring closed")
        for seg in segments:
            view = memoryview(seg).cast("B")
            off = 0
            while off < view.nbytes:
                take = min(view.nbytes - off, self.capacity - pos)
                start = RING_HEADER_BYTES + pos
                buf[start:start + take] = view[off:off + take]
                off += take
                pos = (pos + take) % self.capacity
        self._written += nbytes
        _COUNTER.pack_into(buf, _WRITTEN_OFF, self._written)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def read(self, nbytes: int) -> bytearray:
        """Copy the next ``nbytes`` out of the ring (the receive-side memcpy).

        The caller learns ``nbytes`` from the doorbell, which arrives after
        the producer's write — the bytes are guaranteed present.
        """
        if nbytes > self.capacity:
            raise TransportError(
                f"doorbell claims {nbytes} B, ring capacity {self.capacity}"
            )
        out = bytearray(nbytes)
        pos = self._read % self.capacity
        buf = self._buf
        if buf is None:
            raise TransportError("shm ring closed")
        first = min(nbytes, self.capacity - pos)
        start = RING_HEADER_BYTES + pos
        out[:first] = buf[start:start + first]
        if first < nbytes:
            rest = nbytes - first
            out[first:] = buf[RING_HEADER_BYTES:RING_HEADER_BYTES + rest]
        self._read += nbytes
        _COUNTER.pack_into(buf, _READ_OFF, self._read)
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buf = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (creator only, after close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ShmRing {self._shm.name} cap={self.capacity} "
            f"written={self._written} read={self._read}>"
        )
