"""CLF: the reliable, ordered, point-to-point packet transport (paper §8.1).

    "STM is built on top of CLF, our homegrown low level packet transport
    layer.  CLF provides reliable, ordered point-to-point transport between
    Stampede address spaces, with the illusion of an infinite packet queue.
    It exploits shared memory within an SMP, and any available network
    between SMPs."

This module is the **thread-runtime** implementation: address spaces live in
one Python process, and CLF really serializes messages to bytes, fragments
them into MTU-sized packets, moves the packets through unbounded thread-safe
queues, and reassembles them on the far side.  Every byte is genuinely
copied, so STM's copy-in/copy-out and per-message costs are real — only the
wire-propagation delay of the 1998 hardware is absent.  The discrete-event
simulator (:mod:`repro.sim.sim_transport`) provides the complementary
implementation whose delays come from the calibrated medium models.

Topology: spaces are assigned block-wise to nodes
(``spaces_per_node``), shared memory connects spaces on one node, and the
configured inter-node medium connects the rest — mirroring the paper's
cluster of 4-way AlphaServer SMPs on Memory Channel.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.analysis.sanitizer import san_lock
from repro.errors import TransportClosedError, TransportError
from repro.obs import events as _obs
from repro.transport.media import CLF_MTU, MEMORY_CHANNEL, Medium, SHARED_MEMORY
from repro.transport.packets import (
    Reassembler,
    fragment,
    fragment_sg,
    max_payload,
)

__all__ = ["ClusterTopology", "ClfStats", "ClfEndpoint", "ClfNetwork"]

_CLOSED = object()


@dataclass(frozen=True)
class ClusterTopology:
    """Placement of address spaces onto cluster nodes.

    ``n_spaces`` address spaces are packed onto nodes of ``spaces_per_node``
    each (the paper's AlphaServer 4100s hosted one address space per SMP in
    the experiments, but Stampede allows several).  ``inter_node`` is the
    medium between nodes; within a node CLF always uses shared memory.
    """

    n_spaces: int
    spaces_per_node: int = 1
    inter_node: Medium = MEMORY_CHANNEL
    intra_node: Medium = SHARED_MEMORY

    def __post_init__(self):
        if self.n_spaces < 1:
            raise ValueError(f"n_spaces must be >= 1, got {self.n_spaces}")
        if self.spaces_per_node < 1:
            raise ValueError(
                f"spaces_per_node must be >= 1, got {self.spaces_per_node}"
            )

    def node_of(self, space: int) -> int:
        if not 0 <= space < self.n_spaces:
            raise ValueError(f"space {space} out of range [0, {self.n_spaces})")
        return space // self.spaces_per_node

    def medium(self, src: int, dst: int) -> Medium:
        """Medium used for traffic from ``src`` to ``dst``."""
        if self.node_of(src) == self.node_of(dst):
            return self.intra_node
        return self.inter_node


@dataclass
class ClfStats:
    """Per-endpoint traffic counters (sent/received)."""

    messages_sent: int = 0
    messages_received: int = 0
    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    per_peer_sent: dict[int, int] = field(default_factory=dict)
    per_peer_recv: dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "packets_sent": self.packets_sent,
            "packets_received": self.packets_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class ClfEndpoint:
    """One address space's attachment to the CLF interconnect.

    ``send`` fragments and enqueues; ``recv`` dequeues and reassembles.
    Both are thread-safe.  ``recv`` may be called concurrently by multiple
    threads only if they never interleave mid-message — in practice each
    address space dedicates one dispatcher thread to ``recv``, matching
    CLF's multi-threaded design in the paper.
    """

    def __init__(self, network: "ClfNetwork", space: int):
        self._network = network
        self.space = space
        self._inbox: queue.SimpleQueue = queue.SimpleQueue()
        self._reassemblers: dict[int, Reassembler] = {}
        self._msgid = itertools.count(space, network.topology.n_spaces)
        self._closed = False
        self.stats = ClfStats()

    # -- sending ------------------------------------------------------------
    def send(self, dst: int, data) -> None:
        """Reliably deliver ``data`` to space ``dst`` (ordered per peer).

        ``data`` is either one contiguous bytes-like message or a
        scatter/gather list of segments (the zero-copy framing path, see
        :func:`~repro.transport.serialization.encode_message_sg`); a
        segment list is gathered directly into MTU packets without an
        intermediate join.
        """
        if self._closed:
            raise TransportClosedError(f"endpoint {self.space} is closed")
        target = self._network._endpoint(dst)
        msgid = next(self._msgid)
        if isinstance(data, (bytes, bytearray)):
            nbytes = len(data)
            packets = fragment(msgid, data, self._network.mtu)
        else:
            segments = [data] if isinstance(data, memoryview) else data
            nbytes = sum(memoryview(seg).nbytes for seg in segments)
            packets = fragment_sg(msgid, segments, self._network.mtu)
        rec = _obs.recorder
        if rec is not None:
            # ``flow`` is the causal stitch: the receiver's clf.recv instant
            # carries the same id (msgids are globally unique — the counter
            # strides by n_spaces from ``space``), so the trace exporter can
            # draw a Chrome flow arrow from this send to its receive.
            # Recorded *before* the packets reach the receiver's inbox —
            # the receiving thread can stamp its clf.recv the moment the
            # last packet lands, so an instant taken afterward may postdate
            # the receive and make the flow arrow point backward in time.
            expected = max(1, -(-nbytes // max_payload(self._network.mtu)))
            rec.instant("clf", "clf.send", self.space,
                        dst=dst, bytes=nbytes, packets=expected, flow=msgid)
        npackets = 0
        with self._network._order_locks[(self.space, dst)]:
            # The per-(src,dst) lock keeps packets of concurrent sends from
            # interleaving: CLF's ordering guarantee is per point-to-point
            # stream, not per thread.
            for packet in packets:
                target._inbox.put((self.space, packet))
                npackets += 1
        self.stats.messages_sent += 1
        self.stats.packets_sent += npackets
        self.stats.bytes_sent += nbytes
        self.stats.per_peer_sent[dst] = self.stats.per_peer_sent.get(dst, 0) + 1

    # -- receiving ------------------------------------------------------------
    def recv(self, timeout: float | None = None) -> tuple[int, bytes]:
        """Block until a complete message arrives; return ``(src, data)``.

        Raises :class:`TransportClosedError` once the endpoint is closed and
        drained, and ``queue.Empty`` on timeout.
        """
        end = (time.monotonic() + timeout) if timeout is not None else None
        while True:
            remaining = None
            if end is not None:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    raise queue.Empty()
            item = self._inbox.get(timeout=remaining)
            if item is _CLOSED:
                raise TransportClosedError(f"endpoint {self.space} closed")
            src, packet = item
            reasm = self._reassemblers.get(src)
            if reasm is None:
                reasm = self._reassemblers[src] = Reassembler(self._network.mtu)
            self.stats.packets_received += 1
            message = reasm.feed(packet)
            if message is not None:
                self.stats.messages_received += 1
                self.stats.bytes_received += len(message)
                rec = _obs.recorder
                if rec is not None:
                    rec.instant("clf", "clf.recv", self.space,
                                src=src, bytes=len(message),
                                flow=reasm.last_msgid)
                return src, message

    def close(self) -> None:
        """Close the endpoint; a blocked ``recv`` wakes with an error."""
        if not self._closed:
            self._closed = True
            self._inbox.put(_CLOSED)

    @property
    def closed(self) -> bool:
        return self._closed


class ClfNetwork:
    """The in-process cluster interconnect: one endpoint per address space."""

    def __init__(self, topology: ClusterTopology, mtu: int = CLF_MTU):
        self.topology = topology
        self.mtu = mtu
        self._endpoints: dict[int, ClfEndpoint] = {}
        self._lock = san_lock("ClfNetwork.endpoints")
        self._order_locks = {
            (s, d): san_lock("ClfNetwork.order")
            for s in range(topology.n_spaces)
            for d in range(topology.n_spaces)
        }

    @classmethod
    def create(
        cls,
        n_spaces: int,
        spaces_per_node: int = 1,
        inter_node: Medium = MEMORY_CHANNEL,
        mtu: int = CLF_MTU,
    ) -> "ClfNetwork":
        return cls(ClusterTopology(n_spaces, spaces_per_node, inter_node), mtu)

    def endpoint(self, space: int) -> ClfEndpoint:
        """Create (or fetch) the endpoint of address space ``space``."""
        if not 0 <= space < self.topology.n_spaces:
            raise ValueError(
                f"space {space} out of range [0, {self.topology.n_spaces})"
            )
        with self._lock:
            ep = self._endpoints.get(space)
            if ep is None:
                ep = self._endpoints[space] = ClfEndpoint(self, space)
            return ep

    def _endpoint(self, space: int) -> ClfEndpoint:
        ep = self.endpoint(space)
        if ep.closed:
            raise TransportError(f"destination endpoint {space} is closed")
        return ep

    def medium(self, src: int, dst: int) -> Medium:
        return self.topology.medium(src, dst)

    def close(self) -> None:
        with self._lock:
            for ep in self._endpoints.values():
                ep.close()
