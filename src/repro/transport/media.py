"""Cost models for the three communication media of the paper (§8.1).

The paper's CLF runs over shared memory within an SMP, Digital Memory
Channel between SMPs, and UDP over a 100 Mbit/s FDDI LAN as the fallback.
We cannot run on that hardware, so each medium is a small analytic model
calibrated against the published cells of Figs. 8-9:

* one-way latency of a packet of ``n`` bytes::

      latency(n) = base_latency + per_byte_latency * n

* maximum pipelined throughput is limited by both the per-packet send
  overhead (CPU/synchronization cost, which dominates for small packets) and
  the wire bandwidth (which dominates for large packets)::

      throughput(n) = n / max(send_overhead, n / wire_bandwidth)

Published calibration anchors (paper Figs. 8-9):

=================  ============  ==================  ===========
medium             latency @8 B  throughput @8 B     wire limit
=================  ============  ==================  ===========
shared memory      17 µs         2.3 MB/s            SMP bus
Memory Channel     19 µs         2.3 MB/s            ~66 MB/s hw
UDP / FDDI LAN     227 µs        0.13 MB/s           12.5 MB/s
=================  ============  ==================  ===========

(2.3 MB/s at 8 bytes/packet ⇒ ≈3.5 µs per-packet overhead; 0.13 MB/s at
8 bytes ⇒ ≈62 µs per packet for the UDP stack.)  Cells the scan of the paper
does not preserve are interpolated by the model; EXPERIMENTS.md flags them.

The models are used by the simulated transport (:mod:`repro.sim`) to charge
virtual time, and by the benchmark harness to regenerate Figs. 8-11.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Medium",
    "SHARED_MEMORY",
    "MEMORY_CHANNEL",
    "UDP_LAN",
    "MEDIA",
    "CLF_MTU",
    "IMAGE_BYTES",
    "CAMERA_FPS",
    "CAMERA_BANDWIDTH_MBPS",
    "FRAME_INTERVAL_US",
]

#: CLF maximum packet size in bytes (paper §8.1).
CLF_MTU: int = 8152

#: One 320x240 pixel, 24-bit video frame (paper §8.1): 230 400 bytes.
IMAGE_BYTES: int = 320 * 240 * 3

#: Camera frame rate and the bandwidth it implies (6.912 MB/s).
CAMERA_FPS: int = 30
CAMERA_BANDWIDTH_MBPS: float = IMAGE_BYTES * CAMERA_FPS / 1e6
FRAME_INTERVAL_US: float = 1e6 / CAMERA_FPS  # 33 333 µs


@dataclass(frozen=True)
class Medium:
    """Analytic cost model of one communication medium.

    All times in microseconds, bandwidths in MB/s (decimal, as the paper's
    tables use).
    """

    name: str
    #: fixed one-way latency of a minimal packet (includes CLF's internal
    #: synchronizations and context switches — the paper notes truly raw
    #: latencies would be under 5 µs).
    base_latency_us: float
    #: incremental one-way latency per byte (µs/B) — the store-and-forward
    #: cost of pushing the payload through the wire once.
    per_byte_latency_us: float
    #: per-packet CPU/sync cost at the sender that bounds the packet rate of
    #: a pipelined stream.
    send_overhead_us: float
    #: sustained wire bandwidth in MB/s for back-to-back packets.
    wire_bandwidth_mbps: float
    #: True when src and dst share physical memory (paper: CLF "exploits
    #: shared memory within an SMP").
    intra_node: bool = False

    def one_way_latency_us(self, nbytes: int) -> float:
        """Minimum one-way end-to-end latency of one packet of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.base_latency_us + self.per_byte_latency_us * nbytes

    def packet_service_us(self, nbytes: int) -> float:
        """Time the sender's pipeline is occupied by one packet.

        The reciprocal of the achievable packet rate: per-packet overhead or
        wire occupancy, whichever binds.
        """
        wire_us = nbytes / self.wire_bandwidth_mbps  # MB/s == B/µs
        return max(self.send_overhead_us, wire_us)

    def max_bandwidth_mbps(self, packet_bytes: int) -> float:
        """Maximum pipelined throughput with packets of the given size (MB/s)."""
        if packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be > 0, got {packet_bytes}")
        return packet_bytes / self.packet_service_us(packet_bytes)

    def message_latency_us(self, nbytes: int, mtu: int = CLF_MTU) -> float:
        """One-way latency of a message fragmented into MTU-sized packets.

        Packets of one message are pipelined: the message completes when the
        last packet lands, i.e. first-packet latency plus the service time of
        the remaining packets.
        """
        if nbytes <= mtu:
            return self.one_way_latency_us(nbytes)
        n_full, rest = divmod(nbytes, mtu)
        tail = self.one_way_latency_us(rest if rest else mtu)
        lead_packets = n_full - (0 if rest else 1)
        return lead_packets * self.packet_service_us(mtu) + tail

    def acked_stream_bandwidth_mbps(
        self,
        message_bytes: int,
        ack_every_bytes: int,
        mtu: int = CLF_MTU,
    ) -> float:
        """Bandwidth when the sender awaits an ack after ``ack_every_bytes``.

        Models the rightmost column of Fig. 9 (ack after every image-worth,
        230 400 B): each window costs its pipelined transmission plus one
        round trip of stall.
        """
        if ack_every_bytes <= 0:
            raise ValueError("ack_every_bytes must be > 0")
        window_us = self.message_latency_us(ack_every_bytes, mtu)
        ack_us = self.one_way_latency_us(8)
        per_window = window_us + ack_us
        windows = max(message_bytes / ack_every_bytes, 1.0)
        return (windows * ack_every_bytes) / (windows * per_window)


#: Shared memory within one SMP.  2.3 MB/s @ 8 B ⇒ 3.5 µs/packet overhead;
#: bus bandwidth chosen so an 8152 B packet moves at SMP copy speed.
SHARED_MEMORY = Medium(
    name="Shared Memory (within an SMP)",
    base_latency_us=16.5,
    per_byte_latency_us=1.0 / 180.0,  # ~180 MB/s memcpy on a 1998 Alpha SMP
    send_overhead_us=3.5,
    wire_bandwidth_mbps=180.0,
    intra_node=True,
)

#: Digital Memory Channel between SMPs.  19 µs @ 8 B; ~66 MB/s hardware limit.
MEMORY_CHANNEL = Medium(
    name="Memory Channel (between SMPs)",
    base_latency_us=18.5,
    per_byte_latency_us=1.0 / 66.0,
    send_overhead_us=3.5,
    wire_bandwidth_mbps=66.0,
)

#: UDP over a 100 Mbit/s FDDI LAN (max 12.5 MB/s).  227 µs @ 8 B;
#: 0.13 MB/s @ 8 B ⇒ ~62 µs per packet through the UDP stack.  The
#: effective per-byte cost (~0.22 µs/B, i.e. ~4.5 MB/s through the kernel
#: UDP path) is fitted to the paper's Fig. 10 UDP row: 449/487/691/1357/2075
#: µs at 8/128/1024/4096/8112 B ≈ one CLF one-way of the payload plus one
#: 8-byte ack, which this model reproduces within a few percent.
UDP_LAN = Medium(
    name="UDP/LAN (between SMPs)",
    base_latency_us=226.0,
    per_byte_latency_us=1.0 / 4.5,
    send_overhead_us=61.5,
    wire_bandwidth_mbps=4.5,
)

#: The three media of Figs. 8-9, in the paper's row order.
MEDIA: dict[str, Medium] = {
    "shm": SHARED_MEMORY,
    "memory_channel": MEMORY_CHANNEL,
    "udp": UDP_LAN,
}
