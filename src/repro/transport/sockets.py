"""Real CLF media for the process runtime: TCP sockets + shared-memory rings.

The thread runtime's :class:`~repro.transport.clf.ClfEndpoint` moves packets
through in-process queues; this module provides the same endpoint contract
(``send(dst, segments)`` / ``recv() -> (src, message)`` / ``close()`` /
``stats``) over *real* operating-system media, so address spaces can live in
separate processes (paper §8.1: "CLF ... exploits shared memory within an
SMP, and any available network between SMPs"):

* **intra-node** pairs (as placed by :class:`~repro.transport.clf
  .ClusterTopology`) move message bytes through a
  :class:`~repro.transport.shm_ring.ShmRing` — one memcpy into the ring on
  send, one out on receive, with a tiny doorbell frame on the pair's socket
  for ordering and wakeup;
* **inter-node** pairs send the bytes inline over the TCP connection
  (loopback here; the same code would cross machines).

Every ordered (src, dst) stream maps onto exactly one duplex TCP connection
(the lower space id connects, the higher accepts) plus, when the topology
says shared memory, one directed ring per direction.  A per-destination
send lock serializes frames of concurrent senders, and TCP's ordering does
the rest — CLF's reliable ordered point-to-point guarantee for free.

Wire framing (little-endian)::

    kind(1) | length(8) | payload[length if kind==DATA]

``DATA`` carries an encoded message inline; ``SHMD`` is a doorbell whose
``length`` bytes are read from the sender's ring; ``HBT`` is a transport
heartbeat consumed by process supervision without entering the inbox.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
import time
from typing import Callable

from repro.errors import TransportClosedError, TransportError
from repro.obs import events as _obs
from repro.obs.metrics import REGISTRY
from repro.transport.clf import ClfStats, ClusterTopology
from repro.transport.shm_ring import ShmRing

__all__ = ["FRAME_HEADER", "SocketEndpoint", "ring_name"]

FRAME_HEADER = struct.Struct("<BQ")
_HELLO = struct.Struct("<I")

_DATA = 0
_SHMD = 1
_HBT = 2

_CLOSED = object()


def ring_name(session: str, src: int, dst: int) -> str:
    """Shared-memory segment name of the directed ``src -> dst`` ring."""
    return f"stm-{session}-r{src}-{dst}"


def _recv_exact(sock: socket.socket, nbytes: int) -> bytearray:
    buf = bytearray(nbytes)
    view = memoryview(buf)
    got = 0
    while got < nbytes:
        n = sock.recv_into(view[got:], nbytes - got)
        if n == 0:
            raise ConnectionError("peer closed the connection")
        got += n
    return buf


def _sendall_sg(sock: socket.socket, segments: list) -> None:
    """sendmsg the scatter/gather list without joining it first."""
    views = [memoryview(seg).cast("B") for seg in segments]
    while views:
        sent = sock.sendmsg(views)
        # Fast path: everything went out in one call.
        remaining = sum(v.nbytes for v in views) - sent
        if remaining == 0:
            return
        # Partial send: drop fully-sent views, slice the straddler.
        rebuilt: list[memoryview] = []
        for view in views:
            if sent >= view.nbytes:
                sent -= view.nbytes
                continue
            rebuilt.append(view[sent:] if sent else view)
            sent = 0
        views = rebuilt


class _Peer:
    """One established duplex connection to another address space."""

    __slots__ = ("space", "sock", "reader")

    def __init__(self, space: int, sock: socket.socket):
        self.space = space
        self.sock = sock
        self.reader: threading.Thread | None = None


class SocketEndpoint:
    """One address space's attachment to the socket/shared-memory media.

    Lifecycle: construct (binds the listener; ``port`` is then known),
    distribute the full directory through the name service, then
    :meth:`connect_mesh` — after which :meth:`send`/:meth:`recv` behave
    exactly like the thread runtime's CLF endpoint.
    """

    def __init__(
        self,
        space: int,
        topology: ClusterTopology,
        *,
        session: str,
        heartbeat_to: int | None = None,
        heartbeat_interval: float = 0.5,
    ):
        self.space = space
        self.topology = topology
        self.session = session
        self.stats = ClfStats()
        self.failure: BaseException | None = None
        #: invoked (peer_space, exc) from a reader thread when a live
        #: connection drops outside an orderly close; the supervisor installs
        #: its crash-propagation hook here.  Default: fail the endpoint.
        self.on_peer_lost: Callable[[int, BaseException], None] | None = None
        self._inbox: queue.SimpleQueue = queue.SimpleQueue()
        self._peers: dict[int, _Peer] = {}
        self._send_locks: dict[int, threading.Lock] = {}
        self._send_rings: dict[int, ShmRing] = {}
        self._recv_rings: dict[int, ShmRing] = {}
        self._mesh_ready = threading.Event()
        self._lock = threading.Lock()
        self._closed = False
        self._heartbeat_to = heartbeat_to
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_thread: threading.Thread | None = None
        self.last_heartbeat: dict[int, float] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(max(topology.n_spaces, 4))
        self.port: int = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"stm-accept-{space}",
            daemon=True,
        )
        self._accept_thread.start()

    # ==================================================================
    # bootstrap
    # ==================================================================
    def connect_mesh(
        self, directory: dict[int, int], timeout: float = 30.0
    ) -> None:
        """Establish the full peer mesh from ``{space: port}``.

        This endpoint dials every peer with a *higher* space id and waits for
        every lower-id peer to dial in; rings for intra-node pairs are
        attached on both sides.  Blocks until the mesh is complete.
        """
        for peer in sorted(directory):
            if peer == self.space:
                continue
            if self.topology.medium(self.space, peer).intra_node:
                self._send_rings[peer] = ShmRing.attach(
                    ring_name(self.session, self.space, peer)
                )
            if self.topology.medium(peer, self.space).intra_node:
                self._recv_rings[peer] = ShmRing.attach(
                    ring_name(self.session, peer, self.space)
                )
            if peer > self.space:
                self._dial(peer, directory[peer], timeout)
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if len(self._peers) == len(directory) - 1:
                    break
            if time.monotonic() > deadline:
                with self._lock:
                    have = sorted(self._peers)
                raise TransportError(
                    f"space {self.space}: mesh incomplete after {timeout}s "
                    f"(connected to {have} of {sorted(directory)})"
                )
            time.sleep(0.005)
        self._mesh_ready.set()
        if self._heartbeat_to is not None and self._heartbeat_to != self.space:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"stm-heartbeat-{self.space}",
                daemon=True,
            )
            self._heartbeat_thread.start()

    def _dial(self, peer: int, port: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            try:
                sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise TransportError(
                        f"space {self.space} could not reach space {peer} "
                        f"on port {port}"
                    ) from None
                time.sleep(0.02)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(_HELLO.pack(self.space))
        self._register_peer(peer, sock)

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                (peer,) = _HELLO.unpack(bytes(_recv_exact(sock, _HELLO.size)))
            except Exception:
                sock.close()
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._register_peer(peer, sock)

    def _register_peer(self, peer: int, sock: socket.socket) -> None:
        entry = _Peer(peer, sock)
        with self._lock:
            if self._closed or peer in self._peers:
                sock.close()
                return
            self._peers[peer] = entry
            self._send_locks.setdefault(peer, threading.Lock())
        entry.reader = threading.Thread(
            target=self._reader_loop,
            args=(entry,),
            name=f"stm-reader-{self.space}<-{peer}",
            daemon=True,
        )
        entry.reader.start()

    # ==================================================================
    # data path
    # ==================================================================
    def send(self, dst: int, data) -> None:
        """Reliably deliver ``data`` (bytes or scatter/gather list) to ``dst``."""
        if self._closed:
            raise TransportClosedError(
                f"endpoint {self.space} is closed"
                + (f" ({self.failure})" if self.failure else "")
            )
        if isinstance(data, (bytes, bytearray, memoryview)):
            segments: list = [data]
        else:
            segments = list(data)
        nbytes = sum(memoryview(seg).nbytes for seg in segments)
        if dst == self.space:
            # Loopback: no medium in the paper's sense; deliver directly.
            joined = segments[0] if len(segments) == 1 else b"".join(
                bytes(memoryview(seg)) for seg in segments
            )
            self._inbox.put((self.space, joined))
            return
        peer = self._peers.get(dst)
        if peer is None:
            raise TransportError(
                f"space {self.space} has no connection to space {dst}"
            )
        ring = self._send_rings.get(dst)
        use_ring = ring is not None and nbytes <= ring.capacity
        medium = "shm" if use_ring else "tcp"
        try:
            with self._send_locks[dst]:
                # The flow sequence number is the position of this message in
                # the ordered (src, dst) stream; assigned *inside* the send
                # lock so it matches wire order even under concurrent
                # senders.  The receiver counts the same stream, so
                # "src>dst#seq" names one message identically on both sides
                # of the process boundary — no wire-format change needed.
                seq = self.stats.per_peer_sent.get(dst, 0)
                self.stats.per_peer_sent[dst] = seq + 1
                rec = _obs.recorder
                if rec is not None:
                    # Recorded *before* the wire write: the receiver can
                    # pick the message up (and stamp its clf.recv) the
                    # moment the doorbell lands, so an instant taken after
                    # the write may postdate the receive — and a flow
                    # arrow pointing backward in time breaks the causal
                    # ordering the merged cluster trace is aligned by.
                    rec.instant("clf", "clf.send", self.space,
                                dst=dst, bytes=nbytes, medium=medium,
                                flow=f"{self.space}>{dst}#{seq}")
                if use_ring:
                    ring.write(segments, nbytes)
                    peer.sock.sendall(FRAME_HEADER.pack(_SHMD, nbytes))
                else:
                    _sendall_sg(
                        peer.sock,
                        [FRAME_HEADER.pack(_DATA, nbytes), *segments],
                    )
        except (OSError, ValueError) as exc:
            raise TransportClosedError(
                f"send from space {self.space} to space {dst} failed: {exc}"
            ) from exc
        self.stats.messages_sent += 1
        self.stats.packets_sent += 1
        self.stats.bytes_sent += nbytes
        REGISTRY.counter(
            "clf_wire_bytes_total", space=self.space, medium=medium,
            direction="tx",
        ).inc(nbytes)

    def recv(self, timeout: float | None = None):
        """Block for the next complete message; return ``(src, message)``."""
        item = self._inbox.get(timeout=timeout)
        if item is _CLOSED:
            raise TransportClosedError(
                f"endpoint {self.space} closed"
                + (f": {self.failure}" if self.failure else "")
            )
        return item

    def _reader_loop(self, peer: _Peer) -> None:
        sock = peer.sock
        src = peer.space
        try:
            while True:
                header = _recv_exact(sock, FRAME_HEADER.size)
                kind, length = FRAME_HEADER.unpack(bytes(header))
                if kind == _HBT:
                    self.last_heartbeat[src] = time.monotonic()
                    continue
                if kind == _SHMD:
                    ring = self._recv_rings.get(src)
                    if ring is None:
                        # Startup race: a fast peer can finish its mesh and
                        # send before this process has attached its rings in
                        # connect_mesh (readers serve accepted connections
                        # from the moment the listener exists).  The bytes
                        # sit in the ring; wait for our own bootstrap.
                        self._mesh_ready.wait(timeout=30.0)
                        ring = self._recv_rings.get(src)
                    if ring is None:
                        raise TransportError(
                            f"shm doorbell from space {src} but no ring"
                        )
                    message: bytearray = ring.read(length)
                    medium = "shm"
                elif kind == _DATA:
                    message = _recv_exact(sock, length)
                    medium = "tcp"
                else:
                    raise TransportError(f"unknown frame kind {kind} from {src}")
                # Mirror of the sender's flow numbering: this reader is the
                # only consumer of the (src -> self) stream, so counting
                # completed messages here reproduces the sender's seq.
                seq = self.stats.per_peer_recv.get(src, 0)
                self.stats.per_peer_recv[src] = seq + 1
                self.stats.messages_received += 1
                self.stats.packets_received += 1
                self.stats.bytes_received += length
                REGISTRY.counter(
                    "clf_wire_bytes_total", space=self.space, medium=medium,
                    direction="rx",
                ).inc(length)
                rec = _obs.recorder
                if rec is not None:
                    rec.instant("clf", "clf.recv", self.space,
                                src=src, bytes=length, medium=medium,
                                flow=f"{src}>{self.space}#{seq}")
                self._inbox.put((src, message))
        except (OSError, ConnectionError, TransportError, ValueError) as exc:
            if self._closed:
                return  # orderly shutdown
            hook = self.on_peer_lost
            lost = TransportClosedError(
                f"connection to space {src} lost: {exc}"
            )
            if hook is not None:
                hook(src, lost)
            else:
                self.fail(lost)

    def _heartbeat_loop(self) -> None:
        target = self._heartbeat_to
        frame = FRAME_HEADER.pack(_HBT, 0)
        while not self._closed:
            peer = self._peers.get(target)
            if peer is None:
                return
            try:
                with self._send_locks[target]:
                    peer.sock.sendall(frame)
            except (OSError, ValueError):
                return  # reader thread reports the loss
            time.sleep(self._heartbeat_interval)

    def heartbeat_age(self, space: int) -> float | None:
        """Seconds since the last heartbeat from ``space`` (None = never)."""
        last = self.last_heartbeat.get(space)
        return None if last is None else time.monotonic() - last

    # ==================================================================
    # teardown
    # ==================================================================
    def fail(self, error: BaseException) -> None:
        """Poison the endpoint: ``recv``/``send`` raise, dispatcher unwinds."""
        if self.failure is None:
            self.failure = error
        self.close()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            peers = list(self._peers.values())
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for peer in peers:
            try:
                peer.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            peer.sock.close()
        for ring in (*self._send_rings.values(), *self._recv_rings.values()):
            ring.close()
        self._inbox.put(_CLOSED)

    @property
    def closed(self) -> bool:
        return self._closed
