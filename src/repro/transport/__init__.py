"""CLF transport substrate: packets, media models, reliable ordered delivery."""

from repro.transport.clf import ClfEndpoint, ClfNetwork, ClfStats, ClusterTopology
from repro.transport.media import (
    CAMERA_BANDWIDTH_MBPS,
    CAMERA_FPS,
    CLF_MTU,
    FRAME_INTERVAL_US,
    IMAGE_BYTES,
    MEDIA,
    MEMORY_CHANNEL,
    Medium,
    SHARED_MEMORY,
    UDP_LAN,
)
from repro.transport.packets import HEADER_BYTES, Reassembler, fragment, max_payload
from repro.transport.serialization import (
    decode_message,
    encode_message,
    message_types,
    register_message,
)
from repro.transport.shm_ring import DEFAULT_RING_BYTES, ShmRing
from repro.transport.sockets import SocketEndpoint

__all__ = [
    "CAMERA_BANDWIDTH_MBPS",
    "CAMERA_FPS",
    "CLF_MTU",
    "ClfEndpoint",
    "ClfNetwork",
    "ClfStats",
    "ClusterTopology",
    "DEFAULT_RING_BYTES",
    "FRAME_INTERVAL_US",
    "HEADER_BYTES",
    "IMAGE_BYTES",
    "MEDIA",
    "MEMORY_CHANNEL",
    "Medium",
    "Reassembler",
    "SHARED_MEMORY",
    "ShmRing",
    "SocketEndpoint",
    "UDP_LAN",
    "decode_message",
    "encode_message",
    "fragment",
    "max_payload",
    "message_types",
    "register_message",
]
