"""repro: a full reproduction of *Space-Time Memory: A Parallel Programming
Abstraction for Interactive Multimedia Applications* (Ramachandran, Nikhil,
Harel, Rehg, Knobe — PPoPP 1999).

Package map
-----------
``repro.core``
    The STM semantic kernel: channels × timestamps, per-connection item
    states, visibility rules, GC minimum arithmetic.  Pure and
    runtime-agnostic.
``repro.stm``
    The public API: :class:`~repro.stm.STM`, channels, connections — plus
    the paper-faithful ``spd_*`` layer in :mod:`repro.stm.spd`.
``repro.runtime``
    The Stampede runtime: address spaces, cluster-wide threads, the
    distributed GC daemon, real-time pacing.
``repro.transport``
    CLF: reliable ordered packet transport and the calibrated medium models
    (shared memory / Memory Channel / UDP-LAN).
``repro.sim``
    Deterministic discrete-event simulation of the cluster, used to
    regenerate the paper's performance tables with 1998-hardware shape.
``repro.kiosk`` / ``repro.ibr``
    The two Stampede applications: the Smart Kiosk vision pipeline and
    image-based rendering.
``repro.bench``
    Drivers that regenerate every table (Figs. 8-11) and the ablations.
``repro.obs``
    Observability: low-overhead event tracing (``STMOBS=1`` or
    ``obs.trace(...)``), the metrics registry, and Chrome-trace /
    lag-report exporters — ``python -m repro.obs`` for the CLI.

Quickstart
----------
>>> from repro import Cluster, STM, STM_LATEST_UNSEEN
>>> with Cluster(n_spaces=1) as cluster:
...     space = cluster.space(0)
...     me = space.adopt_current_thread()
...     stm = STM(space)
...     chan = stm.create_channel("frames")
...     out = chan.attach_output()
...     inp = chan.attach_input()
...     out.put(0, b"frame-0")
...     item = inp.get(STM_LATEST_UNSEEN)
...     inp.consume(item.timestamp)
...     me.exit()  # release the adopted thread's GC claims
...     item.value
b'frame-0'
"""

from repro.core import (
    INFINITY,
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    STM_OLDEST_UNSEEN,
    UNKNOWN_REFCOUNT,
    CopyPolicy,
    GetWildcard,
)
from repro.errors import StampedeError, STMError
from repro.runtime import Cluster, Pacer, ProcCluster, StampedeThread, current_thread
from repro.stm import STM, Channel, InputConnection, Item, OutputConnection
from repro.transport import MEMORY_CHANNEL, SHARED_MEMORY, UDP_LAN

__version__ = "1.0.0"

__all__ = [
    "Channel",
    "Cluster",
    "CopyPolicy",
    "GetWildcard",
    "INFINITY",
    "InputConnection",
    "Item",
    "MEMORY_CHANNEL",
    "OutputConnection",
    "Pacer",
    "ProcCluster",
    "SHARED_MEMORY",
    "STM",
    "STMError",
    "STM_LATEST",
    "STM_LATEST_UNSEEN",
    "STM_OLDEST",
    "STM_OLDEST_UNSEEN",
    "StampedeError",
    "StampedeThread",
    "UDP_LAN",
    "UNKNOWN_REFCOUNT",
    "current_thread",
    "__version__",
]
