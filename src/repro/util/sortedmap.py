"""A sorted integer-keyed map built on ``bisect``.

STM channels index items by timestamp and constantly need ordered queries:
*latest*, *oldest*, *latest unseen*, *neighbours of a missing timestamp*, and
*range deletion below the GC horizon* (paper §4.1-4.2).  CPython has no
built-in sorted container, and the usual answer (``sortedcontainers``) is not
available offline, so this module provides the small slice of that interface
the kernel needs.

The implementation keeps a sorted list of keys next to a dict.  All lookups
are O(log n); insertion/deletion are O(n) in the worst case but the list is
append-mostly in the common case (timestamps usually arrive in order, and GC
deletes prefixes), for which both operations are amortized O(1)-ish.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator

__all__ = ["SortedIntMap"]


class SortedIntMap:
    """Mapping from int keys to values with ordered queries."""

    __slots__ = ("_keys", "_data")

    def __init__(self):
        self._keys: list[int] = []
        self._data: dict[int, Any] = {}

    # -- basic mapping protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def __getitem__(self, key: int) -> Any:
        return self._data[key]

    def get(self, key: int, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __setitem__(self, key: int, value: Any) -> None:
        if key not in self._data:
            if self._keys and key > self._keys[-1]:
                self._keys.append(key)  # fast path: in-order insertion
            else:
                insort(self._keys, key)
        self._data[key] = value

    def __delitem__(self, key: int) -> None:
        del self._data[key]
        idx = bisect_left(self._keys, key)
        # idx is exact: key was present.
        del self._keys[idx]

    def pop(self, key: int, *default: Any) -> Any:
        if key in self._data:
            value = self._data[key]
            del self[key]
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def keys(self) -> list[int]:
        """Sorted list of keys (a copy; safe to mutate)."""
        return list(self._keys)

    def values(self) -> Iterator[Any]:
        return (self._data[k] for k in self._keys)

    def items(self) -> Iterator[tuple[int, Any]]:
        return ((k, self._data[k]) for k in self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}: {self._data[k]!r}" for k in self._keys[:8])
        more = ", ..." if len(self._keys) > 8 else ""
        return f"SortedIntMap({{{inner}{more}}})"

    # -- ordered queries ----------------------------------------------------
    def min_key(self) -> int | None:
        """Smallest key, or None when empty (the channel's *oldest* item)."""
        return self._keys[0] if self._keys else None

    def max_key(self) -> int | None:
        """Largest key, or None when empty (the channel's *latest* item)."""
        return self._keys[-1] if self._keys else None

    def floor_key(self, key: int) -> int | None:
        """Largest key <= ``key``, or None."""
        idx = bisect_right(self._keys, key)
        return self._keys[idx - 1] if idx else None

    def ceil_key(self, key: int) -> int | None:
        """Smallest key >= ``key``, or None."""
        idx = bisect_left(self._keys, key)
        return self._keys[idx] if idx < len(self._keys) else None

    def lower_key(self, key: int) -> int | None:
        """Largest key strictly < ``key``, or None."""
        idx = bisect_left(self._keys, key)
        return self._keys[idx - 1] if idx else None

    def higher_key(self, key: int) -> int | None:
        """Smallest key strictly > ``key``, or None."""
        idx = bisect_right(self._keys, key)
        return self._keys[idx] if idx < len(self._keys) else None

    def neighbours(self, key: int) -> tuple[int | None, int | None]:
        """Neighbouring present keys around a *missing* ``key``.

        This backs the ``timestamp_range`` result of a failed get (§4.1): the
        caller learns the closest available timestamps on either side.
        """
        return self.lower_key(key), self.higher_key(key)

    def keys_below(self, bound: int) -> list[int]:
        """All keys strictly less than ``bound`` (ascending)."""
        return self._keys[: bisect_left(self._keys, bound)]

    def keys_at_or_above(self, bound: int) -> list[int]:
        """All keys >= ``bound`` (ascending)."""
        return self._keys[bisect_left(self._keys, bound) :]

    def pop_below(self, bound: int) -> list[tuple[int, Any]]:
        """Remove and return all ``(key, value)`` pairs with key < ``bound``.

        Used by garbage collection: everything below the GC horizon dies in
        one O(k + log n) sweep.
        """
        cut = bisect_left(self._keys, bound)
        dead_keys = self._keys[:cut]
        del self._keys[:cut]
        return [(k, self._data.pop(k)) for k in dead_keys]
