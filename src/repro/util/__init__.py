"""Small shared utilities: id allocation, statistics, sorted containers."""

from repro.obs.metrics import OnlineStats, percentile, summarize
from repro.util.ids import IdAllocator
from repro.util.sortedmap import SortedIntMap

__all__ = ["IdAllocator", "OnlineStats", "percentile", "summarize", "SortedIntMap"]
