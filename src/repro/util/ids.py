"""Thread-safe allocation of system-wide unique identifiers.

The paper requires that every STM channel carries "a system-wide unique id"
(§4).  In a real cluster Stampede partitions the id space per address space;
we do the same so that ids allocated concurrently in different address spaces
never collide and no coordination message is needed at allocation time.
"""

from __future__ import annotations

import itertools
import threading

__all__ = ["IdAllocator"]


class IdAllocator:
    """Allocate unique non-negative integer ids.

    Ids are striped: an allocator constructed with ``(space, stride)`` yields
    ``space, space + stride, space + 2 * stride, ...``.  With one allocator per
    address space (``space`` = the address-space index, ``stride`` = cluster
    size) ids are globally unique without any cross-space traffic — exactly
    the property a cluster-wide name allocator needs.

    Thread-safe: the underlying counter is an :func:`itertools.count`, whose
    ``__next__`` is atomic under CPython, but we guard it with a lock anyway
    so the class keeps its contract on any interpreter.
    """

    def __init__(self, start: int = 0, stride: int = 1):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._counter = itertools.count(start, stride)
        self._lock = threading.Lock()
        self._start = start
        self._stride = stride

    @property
    def stride(self) -> int:
        return self._stride

    def next(self) -> int:
        """Return the next unique id."""
        with self._lock:
            return next(self._counter)

    def __iter__(self):
        return self

    def __next__(self) -> int:
        return self.next()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IdAllocator(start={self._start}, stride={self._stride})"
