"""Deprecated: moved to :mod:`repro.obs.metrics`.

The streaming-statistics helpers that lived here (Welford
:class:`OnlineStats`, :func:`percentile`, :func:`summarize`) are now part of
the observability package, next to the registry metrics they feed.  This
shim re-exports them so old imports keep working; new code should import
from ``repro.obs.metrics`` (or ``repro.obs``) directly.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import OnlineStats, percentile, summarize

__all__ = ["OnlineStats", "percentile", "summarize"]

warnings.warn(
    "repro.util.stats moved to repro.obs.metrics; "
    "update imports (this shim will be removed)",
    DeprecationWarning,
    stacklevel=2,
)
