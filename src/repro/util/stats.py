"""Streaming statistics used by the benchmark harness.

The paper reports *minimum* latencies and *maximum* bandwidths (§8); the
harness additionally records mean / standard deviation / percentiles so the
regenerated tables can be sanity-checked for noise.  Statistics are computed
online (Welford's algorithm) so million-sample benchmark runs do not hold
their samples in memory unless percentiles were requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["OnlineStats", "percentile", "summarize"]


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``q`` in [0, 100]).

    Mirrors ``numpy.percentile(..., method="linear")`` but avoids pulling
    numpy into the hot measurement path for tiny sample sets.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass
class OnlineStats:
    """Welford online accumulator with optional sample retention.

    Parameters
    ----------
    keep_samples:
        When true, raw samples are retained so percentiles can be computed.
    """

    keep_samples: bool = False
    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    samples: list[float] = field(default_factory=list)

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if self.keep_samples:
            self.samples.append(x)

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected); 0.0 for fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def pctl(self, q: float) -> float:
        if not self.keep_samples:
            raise ValueError("OnlineStats was created with keep_samples=False")
        return percentile(self.samples, q)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator combining both (Chan parallel merge)."""
        merged = OnlineStats(keep_samples=self.keep_samples and other.keep_samples)
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        if merged.keep_samples:
            merged.samples = self.samples + other.samples
        return merged

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


def summarize(samples) -> OnlineStats:
    """Build an :class:`OnlineStats` (with retained samples) from an iterable."""
    stats = OnlineStats(keep_samples=True)
    stats.extend(samples)
    return stats
