"""Data-parallel stage replication over STM channels (paper §4.1 / [12]).

    "to increase throughput, a module may contain replicated threads that
    pull items from a common input channel, process them, and put items
    into a common output channel."

This module packages the replication idiom used by the image-based-rendering
application into a reusable helper: :func:`run_data_parallel` spawns ``n``
worker threads that partition a channel's timestamp axis by residue class
(worker *i* handles ``ts ≡ i (mod n)``), process items with a user function,
and put results — possibly out of order — into a shared output channel where
STM's timestamp indexing reassembles the stream for downstream consumers.

The STM discipline encapsulated here:

* each worker walks *its* columns with blocking specific-timestamp gets;
* after finishing column ``ts`` it calls ``consume_until(ts)``, releasing
  its siblings' columns (which it will never read) so the GC horizon
  advances at the pace of the slowest worker, not at all;
* output timestamps are inherited from the open input item (§4.2), so
  workers never manage virtual time.

End-of-stream: a ``None`` item at any timestamp stops every worker (each
worker sees it via its final bounded scan); the helper then forwards a
single ``None`` to the output channel at the sentinel timestamp.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import INFINITY
from repro.stm.api import Channel

__all__ = ["DataParallelResult", "run_data_parallel"]


@dataclass
class DataParallelResult:
    """Outcome of a replicated stage run."""

    items_processed: int = 0
    per_worker: dict[int, int] = field(default_factory=dict)
    completion_order: list[int] = field(default_factory=list)
    errors: list[tuple[int, str]] = field(default_factory=list)

    @property
    def out_of_order(self) -> int:
        return sum(
            1
            for a, b in zip(
                self.completion_order, self.completion_order[1:], strict=False
            )
            if b < a
        )


def run_data_parallel(
    cluster,
    in_channel: Channel,
    out_channel: Channel,
    worker_fn: Callable[[int, Any], Any],
    n_items: int,
    n_workers: int = 2,
    worker_space: int | None = None,
    sentinel_ts: int | None = None,
    join_timeout: float = 120.0,
) -> DataParallelResult:
    """Process items 0..n_items-1 of ``in_channel`` with replicated workers.

    ``worker_fn(timestamp, value) -> result`` runs in each worker thread;
    its result is put into ``out_channel`` at the same timestamp.  When
    ``sentinel_ts`` is given, a ``None`` end-of-stream item is put there
    after all workers finish (producers typically pass ``n_items``).

    Returns per-worker counts and the global completion order.  The caller
    is responsible for producing the inputs (before or concurrently) and
    for consuming the outputs.

    Visibility contract (§4.2): the calling thread's visibility must be at
    or below the first unprocessed timestamp when this is called — both so
    the workers' initial virtual time of 0 is legal and so GC cannot
    reclaim pre-produced items before the workers attach.  In practice:
    keep the producer's virtual time at 0 while pre-producing, and advance
    it only after this call returns.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    result = DataParallelResult()
    lock = threading.Lock()

    def worker(index: int) -> None:
        from repro.runtime import current_thread

        me = current_thread()
        inp = in_channel.attach_input()
        out = out_channel.attach_output()
        me.set_virtual_time(INFINITY)
        handled = 0
        try:
            for ts in range(index, n_items, n_workers):
                item = inp.get(ts)
                if item.value is None:
                    inp.consume_until(ts)
                    break
                try:
                    output = worker_fn(ts, item.value)
                    out.put(ts, output)
                except Exception as exc:  # noqa: BLE001 - recorded per item
                    with lock:
                        result.errors.append((ts, repr(exc)))
                inp.consume_until(ts)  # releases siblings' columns too
                handled += 1
                with lock:
                    result.completion_order.append(ts)
                    result.items_processed += 1
            if sentinel_ts is not None:
                inp.consume_until(sentinel_ts)
        finally:
            inp.detach()
            out.detach()
            with lock:
                result.per_worker[index] = handled

    space_id = (
        worker_space
        if worker_space is not None
        else in_channel.handle.home_space
    )
    threads = [
        cluster.space(space_id).spawn(
            worker, (i,), name=f"dp-worker-{i}-{id(result):x}", virtual_time=0
        )
        for i in range(n_workers)
    ]
    for thread in threads:
        thread.join(join_timeout)

    if sentinel_ts is not None:
        def forward_sentinel() -> None:
            from repro.runtime import current_thread

            me = current_thread()
            out = out_channel.attach_output()
            me.set_virtual_time(sentinel_ts)
            out.put(sentinel_ts, None)
            out.detach()
            me.set_virtual_time(INFINITY)

        handle = cluster.space(space_id).spawn(
            forward_sentinel, name=f"dp-sentinel-{id(result):x}",
            virtual_time=0,
        )
        handle.join(join_timeout)
    return result
