"""Monitoring and debugging support (paper §6, "Connections to Channels").

    "Such a flexibility would be valuable for instance if a thread wants to
    create a debugging or a monitoring connection to the same channel in
    addition to the one that it may need for data communication."

Two tools:

* :class:`ChannelProbe` — a read-only observer of one channel's state:
  occupancy, per-connection item states, GC horizon, traffic counters.  It
  inspects the home space's kernel under the channel lock (it does *not*
  attach an input connection, so it never pins the GC minimum — exactly
  what a monitor must not do).
* :class:`SpaceTimeView` — renders a cluster's channels × timestamps table
  as ASCII, the paper's Fig. 3 mental picture made printable.  Each cell
  shows the item's state with respect to a chosen connection (or just
  presence).  Invaluable when debugging visibility/GC interactions.

Both work on live clusters; snapshots are consistent per channel (taken
under the channel lock) but not across channels, which is the right
trade-off for a monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.channel_state import ChannelKernel
from repro.core.item import ItemState
from repro.core.time import VirtualTime
from repro.runtime.address_space import LocalChannel
from repro.runtime.cluster import Cluster

__all__ = ["ChannelSnapshot", "ChannelProbe", "SpaceTimeView"]

_STATE_GLYPH = {
    ItemState.UNSEEN: "u",
    ItemState.OPEN: "O",
    ItemState.CONSUMED: "c",
}


@dataclass
class ChannelSnapshot:
    """Point-in-time state of one channel."""

    channel_id: int
    name: str | None
    home_space: int
    timestamps: list[int]
    stored_bytes: int
    gc_horizon: int
    unconsumed_min: VirtualTime
    n_inputs: int
    n_outputs: int
    total_puts: int
    total_gets: int
    total_consumes: int
    total_collected: int
    total_refcount_collected: int
    #: conn_id -> {timestamp -> state glyph}
    states: dict[int, dict[int, str]] = field(default_factory=dict)

    @property
    def occupancy(self) -> int:
        return len(self.timestamps)

    def summary(self) -> str:
        label = self.name or f"#{self.channel_id}"
        return (
            f"channel {label}@space{self.home_space}: "
            f"{self.occupancy} items ({self.stored_bytes} B), "
            f"horizon={self.gc_horizon}, min={self.unconsumed_min!r}, "
            f"puts={self.total_puts} gets={self.total_gets} "
            f"consumed={self.total_consumes} collected={self.total_collected}"
        )


class ChannelProbe:
    """Read-only observer of a channel (never pins GC)."""

    def __init__(self, cluster: Cluster, channel_id: int):
        self.cluster = cluster
        self.channel_id = channel_id
        self._local = self._find()

    def _find(self) -> LocalChannel:
        for space in self.cluster.spaces:
            try:
                return space._channel(self.channel_id)
            except Exception:  # noqa: BLE001 - not homed here
                continue
        from repro.errors import NoSuchChannelError

        raise NoSuchChannelError(
            f"channel {self.channel_id} is not homed anywhere in this cluster"
        )

    def snapshot(self) -> ChannelSnapshot:
        """Consistent snapshot of the channel (taken under its lock)."""
        local = self._local
        with local.lock:
            kernel: ChannelKernel = local.kernel
            timestamps = kernel.timestamps()
            states = {
                conn_id: {
                    ts: _STATE_GLYPH[view.state_of(ts)] for ts in timestamps
                }
                for conn_id, view in kernel.inputs.items()
            }
            return ChannelSnapshot(
                channel_id=kernel.channel_id,
                name=local.handle.name,
                home_space=local.handle.home_space,
                timestamps=timestamps,
                stored_bytes=kernel.stored_bytes(),
                gc_horizon=kernel.gc_horizon,
                unconsumed_min=kernel.unconsumed_min(),
                n_inputs=len(kernel.inputs),
                n_outputs=len(kernel.outputs),
                total_puts=kernel.total_puts,
                total_gets=kernel.total_gets,
                total_consumes=kernel.total_consumes,
                total_collected=kernel.total_collected,
                total_refcount_collected=kernel.total_refcount_collected,
                states=states,
            )

    def watch(self, samples: int, interval_s: float) -> list[ChannelSnapshot]:
        """Take periodic snapshots (a polling monitor thread's inner loop)."""
        import time

        out = []
        for i in range(samples):
            out.append(self.snapshot())
            if i != samples - 1:
                time.sleep(interval_s)
        return out


class SpaceTimeView:
    """ASCII rendering of the cluster's space-time table (Fig. 3).

    Rows are channels, columns are timestamps; a cell shows the glyph of
    the item's state for each input connection of that channel::

        timestamps        12   13   14   15
        kiosk.video       cc   cO   uu   uu      <- 2 input connections
        kiosk.lofi        c    c    u    -       <- '-' = no item

    Glyphs: ``u`` unseen, ``O`` open, ``c`` consumed, ``-`` absent/collected.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def snapshots(self) -> list[ChannelSnapshot]:
        snaps = []
        for space in self.cluster.spaces:
            for local in space.local_channels():
                snaps.append(
                    ChannelProbe(self.cluster, local.kernel.channel_id).snapshot()
                )
        return sorted(snaps, key=lambda s: s.channel_id)

    def render(self, max_columns: int = 24) -> str:
        snaps = self.snapshots()
        all_ts = sorted({ts for snap in snaps for ts in snap.timestamps})
        if len(all_ts) > max_columns:
            all_ts = all_ts[-max_columns:]
        header = ["channel".ljust(24), *(f"{ts:>5}" for ts in all_ts)]
        lines = ["space-time table", "  ".join(header)]
        for snap in snaps:
            label = (snap.name or f"#{snap.channel_id}")[:24].ljust(24)
            cells = []
            for ts in all_ts:
                if ts not in snap.timestamps:
                    cells.append("-".rjust(5))
                    continue
                glyphs = "".join(
                    snap.states[conn].get(ts, "?")
                    for conn in sorted(snap.states)
                ) or "."
                cells.append(glyphs.rjust(5))
            lines.append("  ".join([label, *cells]))
        lines.append("glyphs: u=unseen O=open c=consumed -=absent "
                     "(one per input connection)")
        return "\n".join(lines)
