"""The asyncio Space-Time Memory facade (awaitable twin of §4.1's API).

Everything here mirrors :mod:`repro.stm.api` one-for-one — same visibility
discipline, same copy semantics, same observability spans — with every
potentially blocking operation awaitable and attachments usable as async
context managers::

    stm = AioSTM(cluster.space(0))
    chan = await stm.create_channel("frames", capacity=4)
    async with chan.attach_output() as out:
        await out.put(0, frame)
    async with chan.attach_input() as inp:
        item = await inp.get(STM_LATEST_UNSEEN)
        await inp.consume(item.timestamp)

``attach_input()``/``attach_output()`` return an object that is *both*
awaitable and an async context manager (`conn = await chan.attach_input()`
works too); `async with` detaches on exit, releasing the connection's claim
on unconsumed items so GC can advance (§4.2).

The facade drives :class:`~repro.runtime.aio.AioAddressSpace`'s async entry
points, which share the thread runtime's kernel and parking code — only the
sleeping primitive differs.
"""

from __future__ import annotations

from typing import Any, Coroutine, Generator

from repro.core.flags import (
    GetWildcard,
    STM_LATEST_UNSEEN,
    UNKNOWN_REFCOUNT,
)
from repro.core.payload import CopyPolicy, decode, encode
from repro.core.time import validate_timestamp
from repro.errors import ConnectionClosedError
from repro.obs import events as _obs
from repro.obs.metrics import REGISTRY as _METRICS
from repro.runtime.address_space import ChannelHandle
from repro.runtime.aio import AioAddressSpace
from repro.runtime.threads import StampedeThread, require_current_thread
from repro.stm.api import Item

__all__ = [
    "AioSTM",
    "AioChannel",
    "AioInputConnection",
    "AioOutputConnection",
]


class AioSTM:
    """Asyncio entry point to Space-Time Memory for one address space."""

    def __init__(self, space: AioAddressSpace):
        self.space = space

    @classmethod
    def here(cls) -> "AioSTM":
        """The facade of the calling Stampede task's own address space."""
        return cls(require_current_thread().space)

    async def create_channel(
        self,
        name: str | None = None,
        capacity: int | None = None,
        home: int | None = None,
        copy_policy: CopyPolicy = CopyPolicy.SERIALIZE,
        push: bool = False,
    ) -> "AioChannel":
        handle = await self.space.acreate_channel(
            name=name, capacity=capacity, home=home, copy_policy=copy_policy,
            push=push,
        )
        return AioChannel(self.space, handle)

    async def lookup(
        self, name: str, wait: bool = False, timeout: float | None = None
    ) -> "AioChannel":
        """Find a named channel; ``wait=True`` awaits its creation."""
        handle = await self.space.alookup_channel(
            name, wait=wait, timeout=timeout
        )
        return AioChannel(self.space, handle)

    def channel(self, handle: ChannelHandle) -> "AioChannel":
        return AioChannel(self.space, handle)


class _Attach:
    """Awaitable *and* async-context-manager attachment.

    Allows both spellings::

        conn = await chan.attach_input()
        async with chan.attach_input() as conn: ...
    """

    __slots__ = ("_conn", "_coro")

    def __init__(self, coro: Coroutine[Any, Any, "_AioConnection"]):
        self._coro = coro
        self._conn: _AioConnection | None = None

    def __await__(self) -> Generator[Any, None, "_AioConnection"]:
        return self._coro.__await__()

    async def __aenter__(self) -> "_AioConnection":
        self._conn = await self._coro
        return self._conn

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if self._conn is not None:
            await self._conn.detach()


class AioChannel:
    """A (location-transparent) reference to one STM channel."""

    def __init__(self, space: AioAddressSpace, handle: ChannelHandle):
        self.space = space
        self.handle = handle

    @property
    def channel_id(self) -> int:
        return self.handle.channel_id

    @property
    def name(self) -> str | None:
        return self.handle.name

    def attach_input(self, thread: StampedeThread | None = None) -> _Attach:
        """Attach an input connection (items below the thread's visibility
        are implicitly consumed on it, §4.2)."""
        return _Attach(self._attach(is_input=True, thread=thread))

    def attach_output(self, thread: StampedeThread | None = None) -> _Attach:
        return _Attach(self._attach(is_input=False, thread=thread))

    async def _attach(
        self, *, is_input: bool, thread: StampedeThread | None
    ) -> "_AioConnection":
        thread = thread or require_current_thread()
        conn_id = await self.space.aattach(
            self.handle, is_input=is_input, thread=thread
        )
        cls = AioInputConnection if is_input else AioOutputConnection
        return cls(self, conn_id, thread)

    async def destroy(self) -> None:
        await self.space.adestroy_channel(self.handle)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.handle.name or self.handle.channel_id
        return f"<AioChannel {label!r} home={self.handle.home_space}>"


class _AioConnection:
    """Shared plumbing of async input and output connections."""

    def __init__(self, channel: AioChannel, conn_id: int, thread: StampedeThread):
        self.channel = channel
        self.conn_id = conn_id
        self.thread = thread
        self._closed = False
        self._obs_label = channel.handle.name or f"#{channel.handle.channel_id}"

    @property
    def closed(self) -> bool:
        return self._closed

    async def detach(self) -> None:
        """Release the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.thread.note_conn_closed(self.channel.channel_id, self.conn_id)
        await self.channel.space.adetach(self.channel.handle, self.conn_id)

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError(
                f"connection {self.conn_id} to channel "
                f"{self.channel.channel_id} is detached"
            )

    async def __aenter__(self):
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.detach()


class AioOutputConnection(_AioConnection):
    """A task's attachment for producing items into a channel."""

    async def put(
        self,
        timestamp: int,
        value: Any,
        *,
        refcount: int = UNKNOWN_REFCOUNT,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Copy ``value`` into the channel at ``timestamp`` (awaitable)."""
        self._check_open()
        validate_timestamp(timestamp)
        self.thread.check_put_timestamp(timestamp)
        stored, size = encode(value, self.channel.handle.copy_policy)
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        await self.channel.space.aput(
            self.channel.handle,
            self.conn_id,
            timestamp,
            stored,
            size,
            refcount=refcount,
            block=block,
            timeout=timeout,
        )
        if rec is not None:
            dur = rec.complete(
                "stm", "put", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=timestamp, size=size,
            )
            _METRICS.histogram("stm_put_ns", channel=self._obs_label).observe(dur)


class AioInputConnection(_AioConnection):
    """A task's attachment for getting and consuming items."""

    async def get(
        self,
        request: int | GetWildcard = STM_LATEST_UNSEEN,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> Item:
        """Get an item by timestamp or wildcard; the item becomes OPEN."""
        self._check_open()
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        stored, ts, size = await self.channel.space.aget(
            self.channel.handle, self.conn_id, request, block=block,
            timeout=timeout,
        )
        self.thread.note_open(self.channel.channel_id, self.conn_id, ts)
        value = decode(stored, self.channel.handle.copy_policy)
        if rec is not None:
            dur = rec.complete(
                "stm", "get", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=ts, size=size,
            )
            _METRICS.histogram("stm_get_ns", channel=self._obs_label).observe(dur)
        return Item(value=value, timestamp=ts, size=size)

    async def consume(self, timestamp: int) -> None:
        """Declare the item garbage from this connection's perspective."""
        self._check_open()
        validate_timestamp(timestamp)
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        await self.channel.space.aconsume(
            self.channel.handle, self.conn_id, timestamp
        )
        # Order matters for GC safety (same as the sync facade): the
        # channel stops counting the item before visibility may rise.
        self.thread.note_closed(self.channel.channel_id, self.conn_id, timestamp)
        if rec is not None:
            rec.complete(
                "stm", "consume", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=timestamp,
            )

    async def consume_until(self, timestamp: int) -> None:
        """Consume every item with timestamp <= ``timestamp`` (§4.2)."""
        self._check_open()
        validate_timestamp(timestamp)
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        await self.channel.space.aconsume(
            self.channel.handle, self.conn_id, timestamp, until=True
        )
        for chan_id, conn_id, ts in self.thread.open_items():
            if conn_id == self.conn_id and ts <= timestamp:
                self.thread.note_closed(chan_id, conn_id, ts)
        if rec is not None:
            rec.complete(
                "stm", "consume", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=timestamp, until=True,
            )

    async def get_consume(
        self,
        request: int | GetWildcard = STM_LATEST_UNSEEN,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> Item:
        """Get an item and immediately consume it."""
        item = await self.get(request, block=block, timeout=timeout)
        await self.consume(item.timestamp)
        return item
