"""``spd_*``: the paper's C-style API, for line-by-line fidelity to Figs. 6-7.

The Pythonic API (:mod:`repro.stm.api`) raises exceptions; this layer
converts them into numeric status codes and out-parameter-style tuples so
the digitizer/tracker fragments of the paper transliterate directly::

    ocon = spd_attach_output_channel(video_frame_chan)
    pacer = spd_init(SPD_TO_DIGITIZE, 33)
    frame_count = 0
    while True:
        spd_await_tick(pacer)
        frame = digitize_frame()
        spd_channel_put_item(ocon, frame_count, frame)
        frame_count += 1

and::

    spd_set_virtual_time(SPD_INFINITY)
    icon = spd_attach_input_channel(video_frame_chan)
    ocon = spd_attach_output_channel(model_location_chan)
    while True:
        code, frame, ts, _rng = spd_channel_get_item(icon, SPD_LATEST_UNSEEN)
        location = detect_target(frame)
        spd_channel_put_item(ocon, ts, location)
        spd_channel_consume_item(icon, ts)
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.flags import (
    BlockMode,
    GetWildcard,
    STM_LATEST,
    STM_LATEST_UNSEEN,
    STM_OLDEST,
    STM_OLDEST_UNSEEN,
    UNKNOWN_REFCOUNT,
)
from repro.core.time import INFINITY
from repro.errors import (
    AlreadyConsumedError,
    ChannelEmptyError,
    ChannelFullError,
    ConnectionClosedError,
    DuplicateTimestampError,
    ItemGarbageCollectedError,
    NoSuchItemError,
    StampedeError,
    VisibilityError,
)
from repro.runtime.realtime import Pacer, TickReport
from repro.runtime.threads import require_current_thread
from repro.stm.api import Channel, InputConnection, Item, OutputConnection

__all__ = [
    "SPD_OK",
    "SPD_FULL",
    "SPD_EMPTY",
    "SPD_GARBAGE_COLLECTED",
    "SPD_CONSUMED",
    "SPD_DUPLICATE",
    "SPD_VISIBILITY",
    "SPD_CLOSED",
    "SPD_ERROR",
    "SPD_TIMEOUT",
    "SPD_INFINITY",
    "SPD_LATEST",
    "SPD_OLDEST",
    "SPD_LATEST_UNSEEN",
    "SPD_OLDEST_UNSEEN",
    "SPD_BLOCK",
    "SPD_NONBLOCK",
    "SPD_UNKNOWN_REFCOUNT",
    "spd_attach_input_channel",
    "spd_attach_output_channel",
    "spd_detach_channel",
    "spd_channel_put_item",
    "spd_channel_get_item",
    "spd_channel_consume_item",
    "spd_channel_consume_until_item",
    "spd_set_virtual_time",
    "spd_get_virtual_time",
    "spd_init",
    "spd_await_tick",
]

# -- status codes -----------------------------------------------------------
SPD_OK = 0
SPD_FULL = 1
SPD_EMPTY = 2
SPD_GARBAGE_COLLECTED = 3
SPD_CONSUMED = 4
SPD_DUPLICATE = 5
SPD_VISIBILITY = 6
SPD_CLOSED = 7
SPD_TIMEOUT = 8
SPD_ERROR = 99

# -- constants mirroring the paper's spellings -------------------------------
SPD_INFINITY = INFINITY
SPD_LATEST = STM_LATEST
SPD_OLDEST = STM_OLDEST
SPD_LATEST_UNSEEN = STM_LATEST_UNSEEN
SPD_OLDEST_UNSEEN = STM_OLDEST_UNSEEN
SPD_BLOCK = BlockMode.BLOCK
SPD_NONBLOCK = BlockMode.NONBLOCK
SPD_UNKNOWN_REFCOUNT = UNKNOWN_REFCOUNT


def _code_for(exc: BaseException) -> int:
    if isinstance(exc, ChannelFullError):
        return SPD_FULL
    if isinstance(exc, ChannelEmptyError):
        return SPD_EMPTY
    if isinstance(exc, ItemGarbageCollectedError):
        return SPD_GARBAGE_COLLECTED
    if isinstance(exc, AlreadyConsumedError):
        return SPD_CONSUMED
    if isinstance(exc, DuplicateTimestampError):
        return SPD_DUPLICATE
    if isinstance(exc, VisibilityError):
        return SPD_VISIBILITY
    if isinstance(exc, ConnectionClosedError):
        return SPD_CLOSED
    if isinstance(exc, TimeoutError):
        return SPD_TIMEOUT
    return SPD_ERROR


# -- attach / detach ----------------------------------------------------------
def spd_attach_input_channel(channel: Channel) -> InputConnection:
    """Create an input connection for the calling thread (Fig. 7)."""
    return channel.attach_input()


def spd_attach_output_channel(channel: Channel) -> OutputConnection:
    """Create an output connection for the calling thread (Fig. 6)."""
    return channel.attach_output()


def spd_detach_channel(connection) -> int:
    try:
        connection.detach()
        return SPD_OK
    except StampedeError as exc:
        return _code_for(exc)


# -- put / get / consume ------------------------------------------------------
def spd_channel_put_item(
    o_connection: OutputConnection,
    timestamp: int,
    buf: Any,
    flags: BlockMode = BlockMode.BLOCK,
    refcount: int = UNKNOWN_REFCOUNT,
) -> int:
    """Put ``buf`` at ``timestamp``; returns a status code (paper §4.1)."""
    try:
        o_connection.put(
            timestamp, buf, refcount=refcount, block=flags is BlockMode.BLOCK
        )
        return SPD_OK
    except StampedeError as exc:
        return _code_for(exc)


def spd_channel_get_item(
    i_connection: InputConnection,
    timestamp: int | GetWildcard,
    flags: BlockMode = BlockMode.BLOCK,
) -> tuple[int, Any, int | None, tuple[int | None, int | None] | None]:
    """Get an item; returns ``(code, buf, timestamp, timestamp_range)``.

    On success ``timestamp_range`` is None; on a miss it carries the
    neighbouring available timestamps, exactly like the paper's
    out-parameter.
    """
    try:
        item: Item = i_connection.get(timestamp, block=flags is BlockMode.BLOCK)
        return (SPD_OK, item.value, item.timestamp, None)
    except NoSuchItemError as exc:
        return (_code_for(exc), None, None, exc.timestamp_range)
    except StampedeError as exc:
        return (_code_for(exc), None, None, None)


def spd_channel_consume_item(i_connection: InputConnection, timestamp: int) -> int:
    try:
        i_connection.consume(timestamp)
        return SPD_OK
    except StampedeError as exc:
        return _code_for(exc)


def spd_channel_consume_until_item(
    i_connection: InputConnection, timestamp: int
) -> int:
    try:
        i_connection.consume_until(timestamp)
        return SPD_OK
    except StampedeError as exc:
        return _code_for(exc)


# -- virtual time --------------------------------------------------------------
def spd_set_virtual_time(value) -> int:
    """Set the calling thread's virtual time (SPD_INFINITY allowed)."""
    try:
        require_current_thread().set_virtual_time(value)
        return SPD_OK
    except StampedeError as exc:
        return _code_for(exc)


def spd_get_virtual_time():
    return require_current_thread().virtual_time


# -- real-time pacing (§4.3) -----------------------------------------------
def spd_init(
    purpose: str,
    period_ms: float,
    tolerance_ms: float | None = None,
    handler: Callable[[TickReport], int | None] | None = None,
) -> Pacer:
    """Declare the mapping between virtual-time ticks and real time.

    ``purpose`` is a free-form label (the paper writes
    ``spd_init(TO_DIGITIZE, 33)``); ``period_ms`` is milliseconds of real
    time per tick.  Returns the pacer to pass to :func:`spd_await_tick`.
    """
    del purpose  # label only; kept for call-site fidelity with Fig. 6
    return Pacer(
        period=period_ms / 1000.0,
        tolerance=None if tolerance_ms is None else tolerance_ms / 1000.0,
        handler=handler,
    )


def spd_await_tick(pacer: Pacer) -> int:
    """Synchronize with the next real-time tick; returns its index."""
    return pacer.wait_for_tick().tick
