"""Ticker channels: the §6 *alternative* virtual-time management, realized.

    "A more complex and contrived alternative would have been to let source
    threads make input connections to a 'dummy' channel whose items can be
    regarded as 'time ticks'."

The paper rejected this design in favour of explicit virtual-time
management; we implement it anyway so the design rationale can be
*demonstrated*, not just asserted: with a ticker, a source thread never
touches its virtual time — it inherits every output timestamp from the tick
item it holds open — at the price of an extra thread, an extra channel, and
an extra get/consume pair per item.  The ticker thread itself still has to
manage its virtual time explicitly, which is the §6 argument in one
sentence: the dummy channel only relocates the obligation.

Usage::

    ticker = Ticker.start(stm, "ticks", period_s=1 / 30, count=300)
    ticks = ticker.channel.attach_input()
    while True:
        tick = ticks.get(STM_OLDEST_UNSEEN)   # visibility drops to tick ts
        out.put(tick.timestamp, produce())    # timestamp inherited
        ticks.consume(tick.timestamp)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import INFINITY
from repro.runtime.realtime import Pacer
from repro.stm.api import Channel, STM

__all__ = ["Ticker"]


@dataclass
class Ticker:
    """A running tick source: a channel of empty items at a fixed period."""

    channel: Channel
    count: int
    _thread_handle: object = None

    @classmethod
    def start(
        cls,
        stm: STM,
        name: str,
        period_s: float,
        count: int,
        home: int | None = None,
        refcount: int | None = None,
    ) -> "Ticker":
        """Create the tick channel and spawn the ticker source thread.

        ``count`` ticks are produced (timestamps 0..count-1), then a final
        ``None`` sentinel at timestamp ``count``.  ``refcount`` optionally
        declares the number of consumers so ticks are reclaimed eagerly;
        otherwise the reachability GC cleans up.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        channel = stm.create_channel(name, home=home)
        ticker = cls(channel=channel, count=count)

        def tick_source() -> None:
            from repro.runtime import current_thread

            me = current_thread()
            out = channel.attach_output()
            pacer = Pacer(period=period_s, handler=lambda report: None)
            for t in range(count):
                pacer.wait_for_tick()
                me.set_virtual_time(t)  # the relocated obligation (§6)
                out.put(
                    t, t,  # the tick item carries its own index
                    refcount=-1 if refcount is None else refcount,
                )
            me.set_virtual_time(count)
            out.put(count, None)
            out.detach()
            me.set_virtual_time(INFINITY)

        ticker._thread_handle = stm.space.spawn(
            tick_source, name=f"ticker-{name}", virtual_time=0
        )
        return ticker

    def join(self, timeout: float | None = None) -> None:
        if self._thread_handle is not None:
            self._thread_handle.join(timeout)
