"""Space-Time Memory: the user-facing API (Pythonic and spd_* C-style)."""

from repro.stm.aio import (
    AioChannel,
    AioInputConnection,
    AioOutputConnection,
    AioSTM,
)
from repro.stm.api import Channel, InputConnection, Item, OutputConnection, STM
from repro.stm.dataparallel import DataParallelResult, run_data_parallel
from repro.stm.monitor import ChannelProbe, ChannelSnapshot, SpaceTimeView
from repro.stm.ticker import Ticker

__all__ = [
    "AioChannel",
    "AioInputConnection",
    "AioOutputConnection",
    "AioSTM",
    "Channel",
    "ChannelProbe",
    "ChannelSnapshot",
    "DataParallelResult",
    "InputConnection",
    "Item",
    "OutputConnection",
    "STM",
    "SpaceTimeView",
    "Ticker",
    "run_data_parallel",
]
