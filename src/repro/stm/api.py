"""The Space-Time Memory public API (paper §4.1).

This facade binds the channel kernel + runtime into the object model an
application programmer sees:

* :class:`STM` — entry point bound to one address space;
* :class:`Channel` — a handle to a (possibly remote) channel;
* :class:`OutputConnection` / :class:`InputConnection` — per-thread
  attachments carrying the put/get/consume operations.

The paper's calls map directly::

    spd_attach_output_channel(chan)      -> channel.attach_output()
    spd_attach_input_channel(chan)       -> channel.attach_input()
    spd_channel_put_item(conn, ts, buf)  -> out_conn.put(ts, value)
    spd_channel_get_item(conn, ts, ...)  -> in_conn.get(ts_or_wildcard)
    spd_channel_consume_item(conn, ts)   -> in_conn.consume(ts)

(the literal ``spd_*`` spellings live in :mod:`repro.stm.spd`).

Copy semantics: ``put`` copies the value in (the caller may immediately
reuse its buffer) and ``get`` returns a private copy (the caller may mutate
it freely) — enforced by the channel's :class:`~repro.core.payload.CopyPolicy`.

Visibility discipline (§4.2) is enforced here: every put checks the calling
thread's visibility, every get opens the item on the calling thread, every
consume closes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.flags import (
    GetWildcard,
    STM_LATEST_UNSEEN,
    UNKNOWN_REFCOUNT,
)
from repro.core.payload import CopyPolicy, decode, encode
from repro.core.time import validate_timestamp
from repro.errors import ConnectionClosedError
from repro.obs import events as _obs
from repro.obs.metrics import REGISTRY as _METRICS
from repro.runtime.address_space import AddressSpace, ChannelHandle
from repro.runtime.threads import StampedeThread, require_current_thread

__all__ = ["Item", "STM", "Channel", "InputConnection", "OutputConnection"]


@dataclass(frozen=True)
class Item:
    """A gotten item: the private copy of the value plus its coordinates."""

    value: Any
    timestamp: int
    #: stored size in bytes (serialized size under the SERIALIZE policy).
    size: int


class STM:
    """Entry point to Space-Time Memory for threads of one address space."""

    def __init__(self, space: AddressSpace):
        self.space = space

    @classmethod
    def here(cls) -> "STM":
        """The facade of the calling Stampede thread's own address space.

        The natural entry point inside a spawned thread function.  In the
        process runtime (:mod:`repro.runtime.procs`) such functions arrive
        by pickle with no cluster object in reach — they receive channel
        handles as arguments and bind to their hosting space with
        ``STM.here()``.
        """
        return cls(require_current_thread().space)

    def create_channel(
        self,
        name: str | None = None,
        capacity: int | None = None,
        home: int | None = None,
        copy_policy: CopyPolicy = CopyPolicy.SERIALIZE,
        push: bool = False,
    ) -> "Channel":
        """Create a channel (optionally named, bounded, and/or remotely homed).

        ``push=True`` enables the §9 connection-hint optimization: puts are
        eagerly forwarded to every space holding an input connection, so
        remote gets complete with a payload-free reply against the local
        push cache.
        """
        handle = self.space.create_channel(
            name=name, capacity=capacity, home=home, copy_policy=copy_policy,
            push=push,
        )
        return Channel(self.space, handle)

    def lookup(
        self, name: str, wait: bool = False, timeout: float | None = None
    ) -> "Channel":
        """Find a named channel; ``wait=True`` blocks until it is created."""
        handle = self.space.lookup_channel(name, wait=wait, timeout=timeout)
        return Channel(self.space, handle)

    def channel(self, handle: ChannelHandle) -> "Channel":
        """Wrap an existing handle (e.g. one received through a channel)."""
        return Channel(self.space, handle)


class Channel:
    """A (location-transparent) reference to one STM channel."""

    def __init__(self, space: AddressSpace, handle: ChannelHandle):
        self.space = space
        self.handle = handle

    @property
    def channel_id(self) -> int:
        return self.handle.channel_id

    @property
    def name(self) -> str | None:
        return self.handle.name

    def attach_input(self, thread: StampedeThread | None = None) -> "InputConnection":
        """Attach an input connection for the calling Stampede thread.

        Items below the thread's current visibility are implicitly consumed
        on the new connection (§4.2).
        """
        thread = thread or require_current_thread()
        conn_id = self.space.attach(self.handle, is_input=True, thread=thread)
        return InputConnection(self, conn_id, thread)

    def attach_output(self, thread: StampedeThread | None = None) -> "OutputConnection":
        thread = thread or require_current_thread()
        conn_id = self.space.attach(self.handle, is_input=False, thread=thread)
        return OutputConnection(self, conn_id, thread)

    def destroy(self) -> None:
        self.space.destroy_channel(self.handle)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.handle.name or self.handle.channel_id
        return f"<Channel {label!r} home={self.handle.home_space}>"


class _Connection:
    """Shared plumbing of input and output connections."""

    def __init__(self, channel: Channel, conn_id: int, thread: StampedeThread):
        self.channel = channel
        self.conn_id = conn_id
        self.thread = thread
        self._closed = False
        #: stable label for trace spans and metric keys.
        self._obs_label = channel.handle.name or f"#{channel.handle.channel_id}"

    @property
    def closed(self) -> bool:
        return self._closed

    def detach(self) -> None:
        """Release the connection (idempotent).

        Detaching an input connection drops its claim on all unconsumed
        items, letting GC advance past them.
        """
        if self._closed:
            return
        self._closed = True
        self.thread.note_conn_closed(self.channel.channel_id, self.conn_id)
        self.channel.space.detach(self.channel.handle, self.conn_id)

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError(
                f"connection {self.conn_id} to channel "
                f"{self.channel.channel_id} is detached"
            )

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()


class OutputConnection(_Connection):
    """A thread's attachment for producing items into a channel."""

    def put(
        self,
        timestamp: int,
        value: Any,
        *,
        refcount: int = UNKNOWN_REFCOUNT,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Copy ``value`` into the channel at ``timestamp``.

        ``refcount`` optionally declares how many consume operations the
        item expects, enabling eager reclamation (§6); leave it unknown when
        the consumer population is dynamic.  On a full bounded channel the
        call blocks (or raises :class:`ChannelFullError` with
        ``block=False`` — the paper's immediate-error flag).
        """
        self._check_open()
        validate_timestamp(timestamp)
        self.thread.check_put_timestamp(timestamp)
        stored, size = encode(value, self.channel.handle.copy_policy)
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        self.channel.space.put(
            self.channel.handle,
            self.conn_id,
            timestamp,
            stored,
            size,
            refcount=refcount,
            block=block,
            timeout=timeout,
        )
        if rec is not None:
            dur = rec.complete(
                "stm", "put", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=timestamp, size=size,
            )
            _METRICS.histogram("stm_put_ns", channel=self._obs_label).observe(dur)


class InputConnection(_Connection):
    """A thread's attachment for getting and consuming items."""

    def get(
        self,
        request: int | GetWildcard = STM_LATEST_UNSEEN,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> Item:
        """Get an item by timestamp or wildcard; the item becomes OPEN.

        While open, the item holds the thread's visibility down to its
        timestamp, licensing puts that *inherit* the timestamp (§4.2).
        Non-blocking misses raise :class:`ChannelEmptyError`; gets of
        collected or already-consumed timestamps raise immediately with the
        neighbouring available timestamps attached.
        """
        self._check_open()
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        stored, ts, size = self.channel.space.get(
            self.channel.handle, self.conn_id, request, block=block, timeout=timeout
        )
        self.thread.note_open(self.channel.channel_id, self.conn_id, ts)
        value = decode(stored, self.channel.handle.copy_policy)
        if rec is not None:
            dur = rec.complete(
                "stm", "get", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=ts, size=size,
            )
            _METRICS.histogram("stm_get_ns", channel=self._obs_label).observe(dur)
        return Item(value=value, timestamp=ts, size=size)

    def consume(self, timestamp: int) -> None:
        """Declare the item garbage from this connection's perspective."""
        self._check_open()
        validate_timestamp(timestamp)
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        self.channel.space.consume(self.channel.handle, self.conn_id, timestamp)
        # Order matters for GC safety: the channel stops counting the item
        # only once the consume is applied; only then may the thread's
        # visibility rise.
        self.thread.note_closed(self.channel.channel_id, self.conn_id, timestamp)
        if rec is not None:
            rec.complete(
                "stm", "consume", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=timestamp,
            )

    def consume_until(self, timestamp: int) -> None:
        """Consume every item with timestamp <= ``timestamp`` (§4.2)."""
        self._check_open()
        validate_timestamp(timestamp)
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        self.channel.space.consume(
            self.channel.handle, self.conn_id, timestamp, until=True
        )
        for chan_id, conn_id, ts in self.thread.open_items():
            if conn_id == self.conn_id and ts <= timestamp:
                self.thread.note_closed(chan_id, conn_id, ts)
        if rec is not None:
            rec.complete(
                "stm", "consume", t0, self.thread.space.space_id,
                channel=self._obs_label, timestamp=timestamp, until=True,
            )

    def get_consume(
        self,
        request: int | GetWildcard = STM_LATEST_UNSEEN,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> Item:
        """Convenience: get an item and immediately consume it.

        Useful for strict stream consumers that never inherit timestamps;
        note that it forfeits the right to put at the item's timestamp.
        """
        item = self.get(request, block=block, timeout=timeout)
        self.consume(item.timestamp)
        return item
