"""Discrete-event simulation of the Stampede cluster (hardware substitute).

The simulator regenerates the paper's performance tables with the cost
structure of the 1998 AlphaServer/Memory Channel platform; see
:mod:`repro.sim.engine` for the task model and :mod:`repro.sim.sim_stampede`
for the simulated runtime.
"""

from repro.sim.costs import DEFAULT_COSTS, SimCosts
from repro.sim.engine import SimEngine, SimEvent, SimTaskHandle
from repro.sim.sim_stampede import SimChannel, SimGcReport, SimStampede, SimThread
from repro.sim.trace import SimTrace, SpanRecord

__all__ = [
    "DEFAULT_COSTS",
    "SimChannel",
    "SimCosts",
    "SimEngine",
    "SimEvent",
    "SimGcReport",
    "SimStampede",
    "SimTaskHandle",
    "SimThread",
    "SimTrace",
    "SpanRecord",
]
