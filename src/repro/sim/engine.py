"""A deterministic discrete-event engine with generator-based tasks.

The simulator exists because the paper's numbers (Figs. 8-11) were measured
on a cluster of 1998 AlphaServer SMPs on Memory Channel — hardware we have
to substitute.  Tasks here are Python generators driven by a virtual clock
in microseconds; communication costs come from the calibrated medium models
(:mod:`repro.transport.media`).  Everything is deterministic: same program,
same event order, same timings, every run.

A task is a generator that yields *commands*:

``("delay", us)``
    Suspend for ``us`` microseconds of virtual time.
``("delay_until", t_us)``
    Suspend until absolute virtual time ``t_us`` (no-op if in the past).
``("wait", SimEvent)``
    Park until the event is pulsed or set.

Composition uses plain ``yield from``.  A generator's return value (via
``StopIteration``) propagates through ``yield from``, so helper operations
can return results to their caller.

The engine breaks time ties by sequence number (FIFO), which makes runs
reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimDeadlockError, SimulationError

__all__ = ["SimEvent", "SimTaskHandle", "SimEngine"]


class SimEvent:
    """A broadcast wakeup point for tasks.

    ``pulse`` wakes every currently waiting task (they re-check their
    condition and may wait again) — the virtual-time analogue of
    ``Condition.notify_all``.  ``set`` additionally makes all *future* waits
    complete immediately, like ``threading.Event``.
    """

    def __init__(self, engine: "SimEngine", name: str = ""):
        self._engine = engine
        self.name = name
        self._waiters: list[SimTaskHandle] = []
        self._set = False

    @property
    def is_set(self) -> bool:
        return self._set

    def pulse(self, delay_us: float = 0.0) -> None:
        """Wake all current waiters after ``delay_us`` (scheduling cost)."""
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            self._engine._schedule(self._engine.now + delay_us, task)

    def set(self, delay_us: float = 0.0) -> None:
        self._set = True
        self.pulse(delay_us)

    def _add_waiter(self, task: "SimTaskHandle") -> bool:
        """Register a waiter; returns False if the event is already set
        (the task should not suspend)."""
        if self._set:
            return False
        self._waiters.append(task)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimEvent {self.name!r} waiters={len(self._waiters)} set={self._set}>"


class SimTaskHandle:
    """Scheduler bookkeeping for one running task."""

    def __init__(self, engine: "SimEngine", gen: Generator, name: str):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self.waiting_on: str | None = None
        self._done_event = SimEvent(engine, f"done:{name}")

    def join(self):
        """Generator command sequence waiting for this task to finish."""
        while not self.done:
            yield ("wait", self._done_event)
        if self.error is not None:
            raise self.error
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else (self.waiting_on or "runnable")
        return f"<SimTask {self.name!r} {state}>"


class SimEngine:
    """The event loop: a heap of ``(time, seq, task)`` resumptions."""

    def __init__(self):
        self.now: float = 0.0  # microseconds
        self._heap: list[tuple[float, int, SimTaskHandle]] = []
        self._seq = 0
        self._tasks: list[SimTaskHandle] = []
        self._n_blocked = 0  # tasks parked on events

    # ------------------------------------------------------------------
    def spawn(
        self, gen_fn: Callable[..., Generator] | Generator, *args, name: str | None = None
    ) -> SimTaskHandle:
        """Add a task; ``gen_fn`` is a generator function (or generator)."""
        gen = gen_fn(*args) if callable(gen_fn) else gen_fn
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"spawn needs a generator (a function using yield), got "
                f"{type(gen).__name__} — did the task function forget to yield?"
            )
        task = SimTaskHandle(self, gen, name or getattr(gen_fn, "__name__", "task"))
        self._tasks.append(task)
        self._schedule(self.now, task)
        return task

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name)

    def _schedule(self, when: float, task: SimTaskHandle) -> None:
        if task.waiting_on is not None:
            self._n_blocked -= 1
            task.waiting_on = None
        self._seq += 1
        heapq.heappush(self._heap, (max(when, self.now), self._seq, task))

    # ------------------------------------------------------------------
    def run(self, until_us: float | None = None) -> float:
        """Run until no events remain (or the time limit); returns now.

        Raises :class:`SimDeadlockError` when every remaining task is
        parked on an event nobody can pulse.
        """
        while self._heap:
            when, _seq, task = heapq.heappop(self._heap)
            if until_us is not None and when > until_us:
                # Push back and stop at the horizon.
                self._seq += 1
                heapq.heappush(self._heap, (when, self._seq, task))
                self.now = until_us
                return self.now
            self.now = when
            self._step(task)
        if self._n_blocked:
            blocked = [t for t in self._tasks if t.waiting_on and not t.done]
            detail = ", ".join(f"{t.name} on {t.waiting_on}" for t in blocked)
            raise SimDeadlockError(
                f"simulation deadlock at t={self.now:.1f}us: "
                f"{self._n_blocked} task(s) blocked forever ({detail})"
            )
        return self.now

    def _step(self, task: SimTaskHandle) -> None:
        """Advance one task until it suspends or finishes."""
        while True:
            try:
                command = task.gen.send(None)
            except StopIteration as stop:
                task.done = True
                task.result = stop.value
                task._done_event.set()
                return
            except BaseException as exc:  # noqa: BLE001 - recorded on the task
                task.done = True
                task.error = exc
                task._done_event.set()
                raise
            if not isinstance(command, tuple) or not command:
                raise SimulationError(
                    f"task {task.name!r} yielded {command!r}; expected a "
                    f"('delay'|'delay_until'|'wait', ...) tuple"
                )
            kind = command[0]
            if kind == "delay":
                us = float(command[1])
                if us < 0:
                    raise SimulationError(f"negative delay {us} in {task.name!r}")
                if us == 0.0:
                    continue  # zero-cost steps run inline
                self._schedule(self.now + us, task)
                return
            if kind == "delay_until":
                when = float(command[1])
                if when <= self.now:
                    continue
                self._schedule(when, task)
                return
            if kind == "wait":
                event: SimEvent = command[1]
                if event._add_waiter(task):
                    task.waiting_on = event.name or "event"
                    self._n_blocked += 1
                    return
                continue  # already set: proceed immediately
            raise SimulationError(
                f"task {task.name!r} yielded unknown command {kind!r}"
            )

    # ------------------------------------------------------------------
    @property
    def pending_tasks(self) -> list[SimTaskHandle]:
        return [t for t in self._tasks if not t.done]

    def run_all(self, tasks: Iterable[SimTaskHandle], until_us: float | None = None):
        """Run until the given tasks complete (convenience for benches)."""
        tasks = list(tasks)
        self.run(until_us)
        for t in tasks:
            if not t.done:
                raise SimulationError(f"task {t.name!r} did not finish")
            if t.error is not None:
                raise t.error
        return [t.result for t in tasks]
