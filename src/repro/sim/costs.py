"""CPU-side cost constants for the simulated Stampede runtime.

These model the software overheads the paper attributes to STM on top of
raw CLF (§8.2): "these operations will involve a number of thread
synchronizations and context switches (because manipulating a channel is
done with a lock, and remote channel requests are handled by a server
thread)."

Times in microseconds, calibrated so the simulated Fig. 10/11 rows sit in
the relationship to the Fig. 8/9 rows that the paper reports: STM one-way
latency ≈ raw CLF latency of the payload plus the ack packet plus a few
tens of microseconds of synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimCosts", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class SimCosts:
    #: client-side bookkeeping of a put/get (argument marshalling, channel
    #: lock, connection lookup).
    op_cpu_us: float = 3.0
    #: consume is lighter: no payload handling.
    consume_cpu_us: float = 2.0
    #: server-side handling of one remote channel request.
    server_proc_us: float = 5.0
    #: waking a blocked thread (context switch).
    wakeup_us: float = 7.0
    #: memcpy bandwidth for local copy-in/copy-out, MB/s (= B/µs); matches
    #: the shared-memory medium's wire bandwidth.
    copy_bw_mbps: float = 180.0
    #: bytes of STM header accompanying a request on the wire.
    request_header_bytes: int = 64
    #: bytes of an ack / simple reply.
    ack_bytes: int = 32

    def copy_us(self, nbytes: int) -> float:
        """Cost of one local memcpy of ``nbytes``."""
        return nbytes / self.copy_bw_mbps


DEFAULT_COSTS = SimCosts()
