"""Timeline tracing for the discrete-event simulator.

A :class:`SimTrace` records labelled intervals ("task X did OP from t0 to
t1 µs") and renders them as a text timeline — the tool you want when a
simulated pipeline's latency doesn't decompose the way you expected.
Tracing is opt-in and purely additive: tasks call :meth:`SimTrace.span`
around the operations they want recorded.

Example output::

    simulation timeline (us)
    digitizer   |##putt....##put............|
    lofi        |....get##########put.......|
    0.0                                 5400.0

Each row is one task; glyph runs mark recorded spans (first letters of the
label), dots are idle/unrecorded time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import SimEngine

__all__ = ["SpanRecord", "SimTrace"]


@dataclass(frozen=True)
class SpanRecord:
    """One recorded interval of one task."""

    task: str
    label: str
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class SimTrace:
    """Collects spans against one engine's clock."""

    engine: SimEngine
    spans: list[SpanRecord] = field(default_factory=list)

    def span(self, task: str, label: str, inner):
        """Wrap a generator operation, recording its start/end times.

        Usage inside a task::

            yield from trace.span("producer", "put",
                                  thread.put(conn, ts, nbytes=...))
        """
        start = self.engine.now
        result = yield from inner
        self.spans.append(
            SpanRecord(task=task, label=label, start_us=start,
                       end_us=self.engine.now)
        )
        return result

    def record(self, task: str, label: str, start_us: float,
               end_us: float) -> None:
        """Record a span directly (for instantaneous or external events)."""
        if end_us < start_us:
            raise ValueError(f"span ends before it starts: {start_us}..{end_us}")
        self.spans.append(SpanRecord(task, label, start_us, end_us))

    # ------------------------------------------------------------------
    def by_task(self) -> dict[str, list[SpanRecord]]:
        out: dict[str, list[SpanRecord]] = {}
        for span in self.spans:
            out.setdefault(span.task, []).append(span)
        for spans in out.values():
            spans.sort(key=lambda s: s.start_us)
        return out

    def busy_us(self, task: str) -> float:
        """Total recorded (possibly overlapping-free) busy time of a task."""
        spans = sorted(
            (s for s in self.spans if s.task == task),
            key=lambda s: s.start_us,
        )
        total = 0.0
        cursor = float("-inf")
        for span in spans:
            start = max(span.start_us, cursor)
            if span.end_us > start:
                total += span.end_us - start
                cursor = span.end_us
        return total

    def utilization(self, task: str) -> float:
        """Busy fraction of the task over the traced horizon."""
        if not self.spans or self.engine.now == 0:
            return 0.0
        return self.busy_us(task) / self.engine.now

    # ------------------------------------------------------------------
    def render(self, width: int = 72) -> str:
        """ASCII timeline: one row per task, glyphs per recorded span."""
        if not self.spans:
            return "simulation timeline: (no spans recorded)"
        t_min = min(s.start_us for s in self.spans)
        t_max = max(s.end_us for s in self.spans)
        horizon = max(t_max - t_min, 1e-9)
        rows = ["simulation timeline (us)"]
        name_width = max(len(task) for task in self.by_task()) + 2
        for task, spans in self.by_task().items():
            cells = ["."] * width
            for span in spans:
                lo = int((span.start_us - t_min) / horizon * (width - 1))
                hi = int((span.end_us - t_min) / horizon * (width - 1))
                glyph = (span.label[:1] or "#")
                for i in range(lo, max(hi, lo) + 1):
                    cells[i] = glyph
            rows.append(f"{task.ljust(name_width)}|{''.join(cells)}|")
        rows.append(
            f"{' ' * name_width} {t_min:.1f} .. {t_max:.1f}"
        )
        return "\n".join(rows)

    def summary(self) -> str:
        """Per-task busy time and span counts."""
        lines = ["trace summary"]
        for task, spans in self.by_task().items():
            lines.append(
                f"  {task}: {len(spans)} spans, busy {self.busy_us(task):.1f}us "
                f"({100 * self.utilization(task):.0f}% of horizon)"
            )
        return "\n".join(lines)
