"""The simulated Stampede cluster: STM semantics on virtual time.

This runtime drives the *same* :class:`~repro.core.channel_state.ChannelKernel`
as the thread runtime, but tasks are discrete-event generators and every
communication/synchronization step is charged to the virtual clock using the
calibrated medium models — so the semantics of the two runtimes coincide by
construction while the simulated timings have 1998-cluster shape.

What is modeled (matching §8's description of where time goes):

* per-operation CPU costs (channel lock, marshalling) — :class:`SimCosts`;
* copy-in/copy-out memcpys at local-memory bandwidth;
* request/reply messages for operations on remotely homed channels,
  fragmented at the CLF MTU and pipelined over per-directed-link and
  per-receiver resources (a busy link queues the message);
* context-switch cost when a blocked operation is woken;
* the synchronous-RPC structure of puts/gets ("two, four or more round-trip
  communications", §8.2).

Example
-------
>>> sim = SimStampede(n_spaces=2)
>>> chan = sim.create_channel(home=1)
>>> def producer(t):
...     out = yield from t.attach_output(chan)
...     t.set_virtual_time(0)
...     yield from t.put(out, 0, nbytes=8)
>>> def consumer(t):
...     inp = yield from t.attach_input(chan)
...     payload, ts, size = yield from t.get(inp, STM_OLDEST)
...     yield from t.consume(inp, ts)
...     return ts
>>> sim.spawn(producer, space=0)
>>> h = sim.spawn(consumer, space=1, virtual_time=0)
>>> sim.run()  # doctest: +SKIP
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.core.channel_state import ChannelKernel, Status
from repro.core.flags import GetWildcard, UNKNOWN_REFCOUNT
from repro.core.gc_state import compute_global_min
from repro.core.time import INFINITY, VirtualTime, vt_lt, vt_min
from repro.errors import (
    ChannelEmptyError,
    ChannelFullError,
    SimulationError,
    VisibilityError,
    VirtualTimeError,
)
from repro.sim.costs import DEFAULT_COSTS, SimCosts
from repro.sim.engine import SimEngine, SimEvent, SimTaskHandle
from repro.transport.clf import ClusterTopology
from repro.transport.media import CLF_MTU, MEMORY_CHANNEL, Medium

__all__ = ["SimChannel", "SimThread", "SimStampede", "SimGcReport"]


class _Link:
    """Occupancy state of one directed link (and receiver NIC)."""

    __slots__ = ("busy_until",)

    def __init__(self):
        self.busy_until = 0.0


@dataclass
class SimChannel:
    """A channel in the simulated cluster.

    ``busy_until`` models the channel lock: the paper notes that
    "manipulating a channel is done with a lock", so the data-touching
    phases of concurrent operations (copy-in on put, copy-out on get)
    serialize per channel.  This serialization is what makes the 1P/1C
    bandwidth of Fig. 11 column A "move data in bursts, one item at a
    time" — much below raw CLF — while two overlapped streams (column B)
    approach the wire limit.
    """

    kernel: ChannelKernel
    home: int
    event: SimEvent
    name: str | None = None
    busy_until: float = 0.0

    @property
    def channel_id(self) -> int:
        return self.kernel.channel_id


class SimThread:
    """Per-task STM context: virtual-time state plus the operation verbs.

    All operation methods are generators — call them with ``yield from``.
    """

    def __init__(self, sim: "SimStampede", space: int, name: str,
                 virtual_time: VirtualTime):
        self.sim = sim
        self.space = space
        self.name = name
        self._virtual_time: VirtualTime = virtual_time
        self._open: set[tuple[int, int, int]] = set()  # (chan, conn, ts)
        self.handle: SimTaskHandle | None = None

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.engine.now

    @property
    def virtual_time(self) -> VirtualTime:
        return self._virtual_time

    def visibility(self) -> VirtualTime:
        return vt_min([self._virtual_time, *(ts for (_, _, ts) in self._open)])

    def set_virtual_time(self, value: VirtualTime) -> None:
        vis = self.visibility()
        if vt_lt(value, vis):
            raise VirtualTimeError(
                f"cannot set virtual time to {value!r}: below visibility {vis!r}"
            )
        self._virtual_time = value

    def delay(self, us: float):
        yield ("delay", us)

    # -- channel lifecycle -----------------------------------------------------
    def attach_output(self, channel: SimChannel):
        conn_id = self.sim._conn_ids()
        yield from self.sim._rpc_fixed(self.space, channel.home)
        channel.kernel.attach_output(conn_id)
        self.sim._conn_channel[conn_id] = channel
        return conn_id

    def attach_input(self, channel: SimChannel):
        conn_id = self.sim._conn_ids()
        yield from self.sim._rpc_fixed(self.space, channel.home)
        channel.kernel.attach_input(conn_id, self.visibility())
        self.sim._conn_channel[conn_id] = channel
        return conn_id

    def detach(self, channel: SimChannel, conn_id: int):
        yield from self.sim._rpc_fixed(self.space, channel.home)
        channel.kernel.detach(conn_id)
        self._open = {e for e in self._open if e[1] != conn_id}
        channel.event.pulse(self.sim.costs.wakeup_us)

    # -- put -------------------------------------------------------------------
    def put(
        self,
        conn_id_or_channel,
        timestamp: int,
        nbytes: int,
        payload: Any = None,
        *,
        refcount: int = UNKNOWN_REFCOUNT,
        block: bool = True,
    ):
        """Put ``nbytes`` of (virtual) data at ``timestamp``.

        ``payload`` is carried through uncopied — the simulator charges the
        copy/transfer *time* for ``nbytes`` instead of moving real bytes.
        """
        channel, conn_id = self._resolve(conn_id_or_channel)
        vis = self.visibility()
        if vt_lt(timestamp, vis):
            raise VisibilityError(
                f"sim thread {self.name!r} cannot put timestamp {timestamp}: "
                f"below visibility {vis!r}"
            )
        costs = self.sim.costs
        yield ("delay", costs.op_cpu_us)
        remote = channel.home != self.space
        if remote:
            yield from self.sim._transfer(
                self.space, channel.home, nbytes + costs.request_header_bytes
            )
        while True:
            result = channel.kernel.put(conn_id, timestamp, payload, nbytes, refcount)
            if result.status is Status.OK:
                break
            if not block:
                raise ChannelFullError(
                    f"sim channel {channel.channel_id} full "
                    f"(capacity {channel.kernel.capacity})"
                )
            yield ("wait", channel.event)
        # Copy-in under the channel lock (server-side for remote puts).
        apply_cost = costs.copy_us(nbytes) + (
            costs.server_proc_us if remote else 0.0
        )
        yield from self.sim._occupy_channel(channel, apply_cost)
        channel.event.pulse(costs.wakeup_us)
        if remote:
            yield from self.sim._transfer(channel.home, self.space, costs.ack_bytes)

    # -- get -------------------------------------------------------------------
    def get(
        self,
        conn_id_or_channel,
        request: int | GetWildcard,
        *,
        block: bool = True,
    ):
        """Get an item; returns ``(payload, timestamp, size)``."""
        channel, conn_id = self._resolve(conn_id_or_channel)
        costs = self.sim.costs
        yield ("delay", costs.op_cpu_us)
        remote = channel.home != self.space
        if remote:
            yield from self.sim._transfer(
                self.space, channel.home, costs.request_header_bytes
            )
            yield ("delay", costs.server_proc_us)
        while True:
            result = channel.kernel.get(conn_id, request)
            if result.status is Status.OK:
                break
            if not block:
                raise ChannelEmptyError(
                    f"no item matching {request!r} in sim channel "
                    f"{channel.channel_id}; neighbours {result.timestamp_range}"
                )
            yield ("wait", channel.event)
        ts = result.timestamp
        assert ts is not None
        self._open.add((channel.channel_id, conn_id, ts))
        # Copy-out happens under the channel lock; for remote gets the server
        # then ships the copy back as the reply payload.
        yield from self.sim._occupy_channel(channel, costs.copy_us(result.size))
        if remote:
            yield from self.sim._transfer(
                channel.home, self.space, result.size + costs.request_header_bytes
            )
        return result.payload, ts, result.size

    # -- consume -----------------------------------------------------------------
    def consume(self, conn_id_or_channel, timestamp: int, *, until: bool = False):
        channel, conn_id = self._resolve(conn_id_or_channel)
        costs = self.sim.costs
        yield ("delay", costs.consume_cpu_us)
        remote = channel.home != self.space
        if remote:
            yield from self.sim._transfer(
                self.space, channel.home, costs.request_header_bytes
            )
            yield ("delay", costs.server_proc_us)
        if until:
            channel.kernel.consume_until(conn_id, timestamp)
            self._open = {
                e for e in self._open
                if not (e[0] == channel.channel_id and e[1] == conn_id
                        and e[2] <= timestamp)
            }
        else:
            channel.kernel.consume(conn_id, timestamp)
            self._open.discard((channel.channel_id, conn_id, timestamp))
        channel.event.pulse(costs.wakeup_us)
        if remote:
            yield from self.sim._transfer(channel.home, self.space, costs.ack_bytes)

    def consume_until(self, conn_id_or_channel, timestamp: int):
        yield from self.consume(conn_id_or_channel, timestamp, until=True)

    # -- plumbing ------------------------------------------------------------
    def _resolve(self, conn_id_or_channel) -> tuple[SimChannel, int]:
        """Ops accept ``(channel, conn_id)`` tuples or bare conn ids."""
        if isinstance(conn_id_or_channel, tuple):
            return conn_id_or_channel
        conn_id = conn_id_or_channel
        channel = self.sim._conn_channel.get(conn_id)
        if channel is None:
            raise SimulationError(f"unknown sim connection id {conn_id}")
        return channel, conn_id


@dataclass
class SimGcReport:
    """Result of one simulated GC round."""

    epoch: int
    horizon: VirtualTime
    collected: int
    at_us: float


class SimStampede:
    """The simulated cluster: spaces, links, channels, tasks, GC."""

    def __init__(
        self,
        n_spaces: int = 2,
        spaces_per_node: int = 1,
        inter_node: Medium = MEMORY_CHANNEL,
        costs: SimCosts = DEFAULT_COSTS,
        mtu: int = CLF_MTU,
    ):
        self.engine = SimEngine()
        self.topology = ClusterTopology(n_spaces, spaces_per_node, inter_node)
        self.costs = costs
        self.mtu = mtu
        self._links: dict[tuple[int, int], _Link] = {}
        self._rx: dict[int, _Link] = {i: _Link() for i in range(n_spaces)}
        self._channel_counter = itertools.count(0)
        self._conn_counter = itertools.count(0)
        self.channels: list[SimChannel] = []
        self.threads: list[SimThread] = []
        self._conn_channel: dict[int, SimChannel] = {}
        self.gc_reports: list[SimGcReport] = []
        self._gc_epoch = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.engine.now

    def create_channel(
        self, home: int = 0, capacity: int | None = None, name: str | None = None
    ) -> SimChannel:
        """Zero-cost setup: create a channel homed at ``home``."""
        if not 0 <= home < self.topology.n_spaces:
            raise ValueError(f"home {home} out of range")
        channel_id = next(self._channel_counter)
        channel = SimChannel(
            kernel=ChannelKernel(channel_id, capacity=capacity),
            home=home,
            event=self.engine.event(f"chan{channel_id}"),
            name=name,
        )
        self.channels.append(channel)
        return channel

    def spawn(
        self,
        task_fn: Callable[[SimThread], Generator],
        space: int = 0,
        virtual_time: VirtualTime = 0,
        name: str | None = None,
    ) -> SimTaskHandle:
        """Create a simulated Stampede thread running ``task_fn(thread)``."""
        if not 0 <= space < self.topology.n_spaces:
            raise ValueError(f"space {space} out of range")
        tname = name or f"{task_fn.__name__}@{space}"
        thread = SimThread(self, space, tname, virtual_time)
        self.threads.append(thread)
        handle = self.engine.spawn(task_fn, thread, name=tname)
        thread.handle = handle
        return handle

    def run(self, until_us: float | None = None) -> float:
        return self.engine.run(until_us)

    def _conn_ids(self) -> int:
        return next(self._conn_counter)

    # ------------------------------------------------------------------
    # transport model
    # ------------------------------------------------------------------
    def _link(self, src: int, dst: int) -> _Link:
        link = self._links.get((src, dst))
        if link is None:
            link = self._links[(src, dst)] = _Link()
        return link

    def _service_us(self, medium: Medium, nbytes: int) -> float:
        """Total sender-pipeline occupancy of one message (all fragments)."""
        n_full, rest = divmod(nbytes, self.mtu)
        total = n_full * medium.packet_service_us(self.mtu)
        if rest or nbytes == 0:
            total += medium.packet_service_us(rest)
        return total

    def _transfer(self, src: int, dst: int, nbytes: int):
        """Move a message; the calling task is blocked until it lands.

        Queues on the directed link and the receiver's NIC: a transfer may
        not start until both are free (this is what lets two producers into
        one consumer space overlap sync with data movement, Fig. 11 B).
        """
        if src == dst:
            yield ("delay", self.costs.copy_us(nbytes))
            return
        medium = self.topology.medium(src, dst)
        link = self._link(src, dst)
        rx = self._rx[dst]
        start = max(self.now, link.busy_until, rx.busy_until)
        occupancy = self._service_us(medium, nbytes)
        link.busy_until = start + occupancy
        rx.busy_until = start + occupancy
        arrival = start + medium.message_latency_us(nbytes, self.mtu)
        yield ("delay_until", max(arrival, start + occupancy))

    def _occupy_channel(self, channel: SimChannel, duration_us: float):
        """Hold the channel lock for ``duration_us`` (queueing if busy)."""
        start = max(self.now, channel.busy_until)
        channel.busy_until = start + duration_us
        yield ("delay_until", channel.busy_until)

    def _rpc_fixed(self, src: int, dst: int):
        """A control-only round trip (attach/detach and friends)."""
        yield ("delay", self.costs.op_cpu_us)
        if src == dst:
            return
        yield from self._transfer(src, dst, self.costs.request_header_bytes)
        yield ("delay", self.costs.server_proc_us)
        yield from self._transfer(dst, src, self.costs.ack_bytes)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc_once_instant(self) -> SimGcReport:
        """Recompute the global minimum and collect, charging no time.

        Useful in tests; :meth:`start_gc_daemon` provides the time-charged
        periodic variant.
        """
        self._gc_epoch += 1
        horizon = compute_global_min(
            [t.visibility() for t in self.threads if not (t.handle and t.handle.done)],
            [c.kernel.unconsumed_min() for c in self.channels],
        )
        collected = 0
        for channel in self.channels:
            dead = channel.kernel.collect_below(horizon)
            if dead:
                collected += len(dead)
                channel.event.pulse(self.costs.wakeup_us)
        report = SimGcReport(self._gc_epoch, horizon, collected, self.now)
        self.gc_reports.append(report)
        return report

    def start_gc_daemon(self, period_us: float, coordinator: int = 0) -> SimTaskHandle:
        """Spawn the distributed GC daemon as a simulated task.

        Each round charges the summary-gathering round trips to every space
        and the horizon broadcast, mirroring
        :class:`repro.runtime.gc_daemon.GcDaemon`.
        """

        def gc_daemon(thread: SimThread):
            while True:
                yield ("delay", period_us)
                for space in range(self.topology.n_spaces):
                    if space != coordinator:
                        # summary request/reply (reply carries ~a cache line
                        # per channel term)
                        yield from self._transfer(
                            coordinator, space, self.costs.request_header_bytes
                        )
                        yield ("delay", self.costs.server_proc_us)
                        reply = self.costs.ack_bytes + 16 * max(len(self.channels), 1)
                        yield from self._transfer(space, coordinator, reply)
                report = self.gc_once_instant()
                for space in range(self.topology.n_spaces):
                    if space != coordinator:
                        yield from self._transfer(
                            coordinator, space, self.costs.ack_bytes
                        )
                del report

        return self.spawn(gc_daemon, space=coordinator, virtual_time=INFINITY,
                          name="sim-gc-daemon")
