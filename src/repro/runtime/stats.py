"""Cluster-wide statistics: the operator's view of a running Stampede.

Aggregates, per address space, the CLF traffic counters and the channel
kernels' operation/GC counters into one :class:`ClusterReport` — the kind
of observability the paper's "more detailed performance analysis and
tuning" (§9) needs.  Gathering is read-only and does not perturb GC (it
takes channel locks briefly but attaches no connections).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY
from repro.runtime.cluster import Cluster
from repro.stm.monitor import ChannelProbe, ChannelSnapshot

__all__ = ["SpaceReport", "ClusterReport", "cluster_report"]


@dataclass
class SpaceReport:
    """One address space's counters."""

    space_id: int
    messages_sent: int
    messages_received: int
    packets_sent: int
    bytes_sent: int
    bytes_received: int
    n_threads: int
    n_channels: int
    channels: list[ChannelSnapshot] = field(default_factory=list)


@dataclass
class ClusterReport:
    """The whole cluster at a point in time."""

    spaces: list[SpaceReport] = field(default_factory=list)
    gc_epochs: int = 0
    gc_last_horizon: object = None
    gc_total_collected: int = 0
    #: ``gc_epoch_seconds`` histogram stats from the metrics registry
    #: (count/mean/p50/p95/p99/max), or None before the first daemon round.
    gc_epoch_timing: dict | None = None

    @property
    def total_bytes_on_wire(self) -> int:
        return sum(s.bytes_sent for s in self.spaces)

    @property
    def total_puts(self) -> int:
        return sum(c.total_puts for s in self.spaces for c in s.channels)

    @property
    def total_gets(self) -> int:
        return sum(c.total_gets for s in self.spaces for c in s.channels)

    @property
    def total_collected(self) -> int:
        return sum(c.total_collected for s in self.spaces for c in s.channels)

    @property
    def stored_items(self) -> int:
        return sum(c.occupancy for s in self.spaces for c in s.channels)

    def render(self) -> str:
        lines = ["cluster report", "=============="]
        for space in self.spaces:
            lines.append(
                f"space {space.space_id}: {space.n_threads} threads, "
                f"{space.n_channels} channels, "
                f"{space.messages_sent} msgs out "
                f"({space.bytes_sent} B), "
                f"{space.messages_received} msgs in "
                f"({space.bytes_received} B), "
                f"wire={space.bytes_sent + space.bytes_received} B"
            )
            for snap in space.channels:
                lines.append(f"  {snap.summary()}")
        lines.append(
            f"totals: puts={self.total_puts} gets={self.total_gets} "
            f"collected={self.total_collected} stored={self.stored_items} "
            f"wire={self.total_bytes_on_wire} B"
        )
        if self.gc_epochs:
            lines.append(
                f"gc: {self.gc_epochs} rounds, last horizon "
                f"{self.gc_last_horizon!r}, {self.gc_total_collected} items "
                f"reclaimed by the daemon"
            )
        if self.gc_epoch_timing and self.gc_epoch_timing.get("count"):
            t = self.gc_epoch_timing
            lines.append(
                f"gc timing: {t['count']} epochs, mean {t['mean'] * 1e3:.2f} ms, "
                f"p95 {t['p95'] * 1e3:.2f} ms, max {t['max'] * 1e3:.2f} ms"
            )
        return "\n".join(lines)


def cluster_report(cluster: Cluster) -> ClusterReport:
    """Snapshot every space's counters and channels."""
    report = ClusterReport()
    for space in cluster.spaces:
        snap = space.endpoint.stats.snapshot()
        channels = [
            ChannelProbe(cluster, local.kernel.channel_id).snapshot()
            for local in space.local_channels()
        ]
        report.spaces.append(
            SpaceReport(
                space_id=space.space_id,
                messages_sent=snap["messages_sent"],
                messages_received=snap["messages_received"],
                packets_sent=snap["packets_sent"],
                bytes_sent=snap["bytes_sent"],
                bytes_received=snap["bytes_received"],
                n_threads=len(space.threads()),
                n_channels=len(space.local_channels()),
                channels=channels,
            )
        )
    if cluster.gc_daemon is not None:
        stats = cluster.gc_daemon.stats
        report.gc_epochs = stats.epochs
        report.gc_last_horizon = stats.last_horizon
        report.gc_total_collected = stats.total_collected
        timing = REGISTRY.find("gc_epoch_seconds")
        if timing is not None:
            report.gc_epoch_timing = timing.as_dict()
    return report
