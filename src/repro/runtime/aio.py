"""Asyncio runtime driver: STM threads as coroutine tasks.

The paper treats a thread blocked in ``get``/``put`` as a *scheduling*
policy, not part of the STM semantics — so the same channel kernel can be
driven by coroutines instead of OS threads.  This module provides that
driver:

* :class:`AioCluster` — a :class:`~repro.runtime.cluster.Cluster` whose
  address spaces are :class:`AioAddressSpace` instances and whose GC daemon
  is an asyncio task;
* :class:`AioAddressSpace` — an :class:`~repro.runtime.address_space
  .AddressSpace` with ``async`` variants of every blocking entry point
  (``aput``/``aget``/``acall``/``alookup_channel``/...) plus
  :meth:`~AioAddressSpace.spawn_task` to run an ``async def`` as a Stampede
  thread;
* :class:`AioEvent` — the per-space end of the PR 3 sync-factory seam: a
  dual threading/asyncio event, so one parked waiter can be slept on by an
  OS thread *or* awaited by a task, and set from either side.

Design notes
------------

**Exactly one kernel.**  The async paths reuse the thread runtime's
start/park phases (``_local_put_start``/``_local_get_start``) verbatim and
substitute an ``await`` for the blocking event wait.  Put/get/consume
semantics — §4.2 visibility rules, wildcards, GC horizons — cannot diverge
between drivers because there is no second implementation.

**Locks stay real.**  Runtime-internal locks (channel lock, registry lock,
...) are held only across short critical sections and never across an
``await``, so they remain ``threading`` locks: cheap, STMSAN-guardable, and
safe against the *other* threads that still exist in an asyncio cluster
(GC executor rounds, dispatcher threads of multi-space clusters).  Only the
*events* — the things a logical thread sleeps on — are virtualized.

**Task-local thread identity.**  All tasks share one OS thread, so the
per-OS-thread StampedeThread binding would collide; tasks bind through a
``contextvars.ContextVar`` instead (see :func:`repro.runtime.threads
.current_thread`).

**Remote operations.**  Cross-space RPCs ride the default executor (the
dispatcher reply path is unchanged); the expected asyncio regime — many
sparse connections, one space — never leaves the local fast path.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Callable, Coroutine

from repro.core.flags import GetWildcard, UNKNOWN_REFCOUNT
from repro.core.time import VirtualTime
from repro.errors import AddressSpaceError, StampedeError
from repro.obs import events as _obs
from repro.runtime.address_space import (
    _PARKED,
    AddressSpace,
    ChannelHandle,
    JoinReq,
    LocalChannel,
    _Waiter,
)
from repro.runtime.cluster import Cluster
from repro.runtime.messages import (
    GetReq,
    LookupNameReq,
    PutReq,
)
from repro.runtime.sync import factories_installed, make_event
from repro.runtime.threads import StampedeThread, current_thread
from repro.transport.serialization import Frame

__all__ = ["AioEvent", "AioAddressSpace", "AioCluster"]


class AioEvent:
    """One event, waitable from an OS thread and awaitable from a task.

    The authoritative state is the :class:`threading.Event` — it is set
    first, so a sync waiter can never observe the asyncio side ahead of it.
    The asyncio mirror is set inline when the setter already runs on the
    loop (the common case: a task's put draining a task's get) and via
    ``call_soon_threadsafe`` when a real thread (GC round, dispatcher)
    completes the waiter.
    """

    __slots__ = ("_aevent", "_loop", "_tevent")

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._tevent = threading.Event()
        self._aevent = asyncio.Event()

    def set(self) -> None:
        self._tevent.set()
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            self._aevent.set()
        elif not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._aevent.set)
            except RuntimeError:
                pass  # loop closed between the check and the call

    def is_set(self) -> bool:
        return self._tevent.is_set()

    def clear(self) -> None:
        self._tevent.clear()
        self._aevent.clear()

    def wait(self, timeout: float | None = None) -> bool:
        """Blocking wait (for OS threads sharing the cluster with tasks)."""
        return self._tevent.wait(timeout)

    async def wait_async(self, timeout: float | None = None) -> bool:
        if self._tevent.is_set():
            return True
        try:
            await asyncio.wait_for(self._aevent.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            # The threading side is authoritative: a completion that raced
            # the timeout must be honoured, exactly like Event.wait().
            return self._tevent.is_set()


class AioAddressSpace(AddressSpace):
    """An address space whose blocking entry points have ``async`` twins.

    The sync API (``put``/``get``/``spawn``/...) keeps working — threads
    and tasks can share one cluster — but threads of *this* space park on
    :class:`AioEvent` waiters so either kind of caller can sleep on them.
    """

    #: set by :class:`AioCluster` before spaces are constructed.
    loop: asyncio.AbstractEventLoop

    def __init__(self, cluster: "AioCluster", space_id: int, endpoint):
        self.loop = cluster.loop
        super().__init__(cluster, space_id, endpoint)

    # -- the event seam -------------------------------------------------
    def _make_event(self) -> Any:
        if factories_installed():  # model checker: honour its factories
            return make_event()
        return AioEvent(self.loop)

    # -- async RPC client ----------------------------------------------
    async def acall(
        self, dst_space: int, body: Any, timeout: float | None = None
    ) -> Any:
        """Awaitable twin of :meth:`AddressSpace.call`."""
        if dst_space == self.space_id:
            return await self._ahandle_blocking_locally(body, timeout)
        return await self._in_executor(self.call, dst_space, body, timeout)

    async def _in_executor(self, fn: Callable, *args: Any) -> Any:
        return await self.loop.run_in_executor(None, lambda: fn(*args))

    async def _ahandle_blocking_locally(
        self, body: Any, timeout: float | None
    ) -> Any:
        """Awaitable twin of ``_handle_blocking_locally``.

        Start phases (kernel op + park under the channel lock) are shared
        with the thread runtime; only the sleep differs.
        """
        if isinstance(body, PutReq):
            channel, waiter = self._local_put_start(body)
            if waiter is None:
                return None
            return await self._await_local_async(channel, waiter, timeout, "put")
        if isinstance(body, GetReq):
            channel, waiter, done = self._local_get_start(body)
            if waiter is None:
                return done
            return await self._await_local_async(channel, waiter, timeout, "get")
        if isinstance(body, LookupNameReq) and body.wait:
            return await self._alocal_lookup_wait(body, timeout)
        if isinstance(body, JoinReq):
            return await self._in_executor(self._local_join, body, timeout)
        result = self._handle(body, self.space_id, None)
        if result is _PARKED:  # pragma: no cover - defensive
            raise AddressSpaceError("local request parked unexpectedly")
        return result

    async def _await_local_async(
        self,
        channel: LocalChannel,
        waiter: _Waiter,
        timeout: float | None,
        op: str,
    ) -> Any:
        """Awaitable twin of ``_await_local`` (same completion contract)."""
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        wait_async = getattr(waiter.event, "wait_async", None)
        if wait_async is not None:
            woke = await wait_async(timeout)
        else:  # model-checker factories: plain event, wait off-loop
            woke = await self._in_executor(waiter.event.wait, timeout)
        if rec is not None:
            rec.complete(
                "stm", f"block({op})", t0, channel.handle.home_space,
                channel=channel.handle.name or f"#{channel.kernel.channel_id}",
                woke=woke,
            )
        if not woke:
            self._withdraw_local_waiter(channel, waiter, op)
        if waiter.error is not None:
            raise waiter.error
        return waiter.result

    async def _alocal_lookup_wait(
        self, body: LookupNameReq, timeout: float | None
    ) -> ChannelHandle:
        deadline = (
            (self.loop.time() + timeout) if timeout is not None else None
        )
        while True:
            handle, event = self._local_lookup_start(body)
            if handle is not None:
                return handle
            remaining = None
            if deadline is not None:
                remaining = deadline - self.loop.time()
                if remaining <= 0:
                    self._local_lookup_withdraw(body, event)
                    raise TimeoutError(
                        f"channel name {body.name!r} never registered"
                    )
            wait_async = getattr(event, "wait_async", None)
            if wait_async is not None:
                await wait_async(remaining)
            else:  # pragma: no cover - model-checker factories
                await self._in_executor(event.wait, remaining)
            self._local_lookup_withdraw(body, event)

    # -- async facade entry points --------------------------------------
    async def acreate_channel(self, *args: Any, **kwargs: Any) -> ChannelHandle:
        return await self._in_executor(
            lambda: self.create_channel(*args, **kwargs)
        )

    async def alookup_channel(
        self, name: str, wait: bool = False, timeout: float | None = None
    ) -> ChannelHandle:
        handle = self.cluster._named_handle(name)
        if handle is not None:
            return handle
        handle = await self.acall(
            self.cluster.registry_space, LookupNameReq(name, wait),
            timeout=timeout,
        )
        self.cluster._note_named_handle(handle)
        return handle

    async def aput(
        self,
        handle: ChannelHandle,
        conn_id: int,
        timestamp: int,
        payload: Any,
        size: int,
        refcount: int = UNKNOWN_REFCOUNT,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        """Awaitable twin of :meth:`AddressSpace.put`."""
        from repro.core.payload import CopyPolicy

        if (
            handle.home_space != self.space_id
            and handle.copy_policy is CopyPolicy.SERIALIZE
            and isinstance(payload, (bytes, bytearray, memoryview))
        ):
            payload = Frame(payload)
        await self.acall(
            handle.home_space,
            PutReq(handle.channel_id, conn_id, timestamp, payload, size,
                   refcount, block),
            timeout=timeout,
        )

    async def aget(
        self,
        handle: ChannelHandle,
        conn_id: int,
        request: int | GetWildcard,
        block: bool = True,
        timeout: float | None = None,
    ) -> tuple[Any, int, int]:
        """Awaitable twin of :meth:`AddressSpace.get`."""
        cache_ok = handle.push and handle.home_space != self.space_id
        payload, ts, size, cached = await self.acall(
            handle.home_space,
            GetReq(handle.channel_id, conn_id, request, block, cache_ok),
            timeout=timeout,
        )
        if cached:
            with self._push_cache_lock:
                entry = self._push_cache.get((handle.channel_id, ts))
            if entry is not None:
                return (entry[0], ts, size)
            payload, ts, size, _ = await self.acall(
                handle.home_space,
                GetReq(handle.channel_id, conn_id, ts, block, False),
                timeout=timeout,
            )
        if isinstance(payload, Frame):
            payload = payload.data
        return (payload, ts, size)

    async def aconsume(
        self,
        handle: ChannelHandle,
        conn_id: int,
        timestamp: int,
        until: bool = False,
    ) -> None:
        from repro.runtime.messages import ConsumeReq

        await self.acall(
            handle.home_space,
            ConsumeReq(handle.channel_id, conn_id, timestamp, until),
        )

    async def aattach(
        self, handle: ChannelHandle, *, is_input: bool, thread: StampedeThread
    ) -> int:
        return await self._in_executor(
            lambda: self.attach(handle, is_input=is_input, thread=thread)
        )

    async def adetach(self, handle: ChannelHandle, conn_id: int) -> None:
        await self._in_executor(self.detach, handle, conn_id)

    async def adestroy_channel(self, handle: ChannelHandle) -> None:
        await self._in_executor(self.destroy_channel, handle)

    # -- coroutine Stampede threads --------------------------------------
    def spawn_task(
        self,
        coro_fn: Callable[..., Coroutine[Any, Any, Any]],
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        name: str | None = None,
        virtual_time: VirtualTime | None = None,
    ) -> StampedeThread:
        """Run an ``async def`` as a Stampede thread (asyncio task).

        Mirrors :meth:`AddressSpace.spawn`: the child's initial virtual
        time defaults to the parent's current visibility (§4.2).  The
        returned StampedeThread carries the task as ``aio_task``; await
        :meth:`ajoin` (not ``join``) for completion and crash propagation.
        """
        parent = current_thread()
        if virtual_time is None:
            virtual_time = parent.visibility() if parent is not None else 0
        if name is None:
            name = f"aio-{self.space_id}-{self._thread_seq.next()}"
        with self._threads_lock:
            if name in self._threads:
                raise StampedeError(
                    f"thread name {name!r} already in use on space "
                    f"{self.space_id}"
                )
            thread = StampedeThread(self, name, virtual_time, parent=parent)
            self._threads[name] = thread
        task = self.loop.create_task(
            self._run_task(thread, coro_fn, args, kwargs or {}), name=name
        )
        thread.aio_task = task
        return thread

    async def _run_task(
        self,
        thread: StampedeThread,
        coro_fn: Callable[..., Coroutine[Any, Any, Any]],
        args: tuple,
        kwargs: dict,
    ) -> Any:
        # The task runs in its own contextvars Context (copied at
        # create_task), so this binding is invisible to sibling tasks.
        thread._bind_context()
        try:
            return await coro_fn(*args, **kwargs)
        finally:
            thread._unbind_context()
            self._thread_exited(thread)
            thread._alive = False

    async def ajoin(
        self, thread: StampedeThread, timeout: float | None = None
    ) -> Any:
        """Await a task-thread's completion; re-raises its exception."""
        task = getattr(thread, "aio_task", None)
        if task is None:
            # An OS-thread Stampede thread: join it off-loop.
            return await self._in_executor(thread.join, timeout)
        try:
            return await asyncio.wait_for(asyncio.shield(task), timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"task thread {thread.name!r} did not exit in {timeout}s"
            ) from None

    def adopt_current_task(
        self, virtual_time: VirtualTime = 0, name: str | None = None
    ) -> StampedeThread:
        """Bind STM thread state to the calling asyncio task.

        The coroutine analogue of :meth:`AddressSpace
        .adopt_current_thread` — for driver coroutines that operate on STM
        directly instead of going through :meth:`spawn_task`.
        """
        existing = current_thread()
        if existing is not None and existing.alive and existing.space is self:
            return existing
        if name is None:
            name = f"adopted-aio-{self.space_id}-{self._thread_seq.next()}"
        with self._threads_lock:
            if name in self._threads:
                raise StampedeError(
                    f"thread name {name!r} already in use on space "
                    f"{self.space_id}"
                )
            thread = StampedeThread(self, name, virtual_time)
            self._threads[name] = thread
        thread._bind_context()
        return thread


class AioCluster(Cluster):
    """A Stampede cluster driven by an asyncio event loop.

    Must be constructed while the loop is running (``async with`` it, or
    build it inside ``asyncio.run``).  The periodic GC daemon is an asyncio
    task that off-loads each scatter/gather round to the default executor,
    so GC never stalls the loop; ``gc_once()`` keeps working synchronously
    for tests.
    """

    space_factory = AioAddressSpace

    def __init__(
        self,
        n_spaces: int = 1,
        *,
        gc_period: float | None = 0.05,
        loop: asyncio.AbstractEventLoop | None = None,
        **kwargs: Any,
    ):
        if loop is None:
            loop = asyncio.get_running_loop()
        self.loop = loop
        # The thread GcDaemon stays off; the loop drives GC instead.
        super().__init__(n_spaces, gc_period=None, **kwargs)
        self._gc_task: asyncio.Task | None = None
        self._aio_gc_period = gc_period
        if gc_period is not None:
            self._gc_task = loop.create_task(
                self._gc_loop(gc_period), name="stampede-aio-gc"
            )

    async def _gc_loop(self, period: float) -> None:
        while not self._shut_down:
            await asyncio.sleep(period)
            if self._shut_down:
                return
            try:
                await self.loop.run_in_executor(None, self.gc_once)
            except concurrent.futures.CancelledError:  # pragma: no cover
                return
            except Exception:  # pragma: no cover - GC must keep trying
                if self._shut_down:
                    return

    def space(self, space_id: int) -> AioAddressSpace:
        return self._spaces[space_id]  # narrowed return type

    async def agc_once(self) -> Any:
        """One GC round without blocking the loop."""
        return await self.loop.run_in_executor(None, self.gc_once)

    async def ashutdown(self) -> None:
        if self._gc_task is not None:
            self._gc_task.cancel()
            try:
                await self._gc_task
            except asyncio.CancelledError:
                pass
            self._gc_task = None
        await self.loop.run_in_executor(None, self.shutdown)

    def shutdown(self) -> None:
        if self._gc_task is not None and not self.loop.is_closed():
            self._gc_task.cancel()
            self._gc_task = None
        super().shutdown()

    async def __aenter__(self) -> "AioCluster":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.ashutdown()
